//! Actuality (freshness) of data.
//!
//! The paper lists "actuality of data" among the evaluated QoS
//! characteristics: a client is willing to see results up to a bounded
//! age, in exchange for latency and load savings. The mediator caches
//! replies and answers from cache while they are younger than the
//! negotiated validity interval; the server-side QoS implementation
//! stamps every reply with its production time so staleness is
//! measurable end to end.

use orb::sync::{LockRank, OrderedMutex, OrderedRwLock};
use orb::{Any, MetricsRegistry, OrbError, Servant};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};
use weaver::{Call, Mediator, Next, QosImplementation};

/// Characteristic name, matching [`crate::specs::QOS_SPECS`].
pub const ACTUALITY_CHARACTERISTIC: &str = "Actuality";

/// Field name added by the server-side stamp.
pub const STAMP_FIELD: &str = "_produced_at_us";

struct CacheEntry {
    value: Any,
    fetched: Instant,
}

/// Counters exposed by the actuality mediator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ActualityStats {
    /// Calls answered from cache.
    pub hits: u64,
    /// Calls forwarded to the server.
    pub misses: u64,
}

/// Client-side bounded-staleness caching mediator.
///
/// Only operations named in the read set are cached; writes always pass
/// through and invalidate the whole cache (conservative but correct).
pub struct ActualityMediator {
    validity: OrderedRwLock<Duration>,
    read_ops: Vec<String>,
    cache: OrderedMutex<HashMap<String, CacheEntry>>,
    hits: AtomicU64,
    misses: AtomicU64,
    metrics: OrderedRwLock<Option<MetricsRegistry>>,
}

impl ActualityMediator {
    /// A mediator caching `read_ops` results for up to `validity`.
    pub fn new(validity: Duration, read_ops: impl IntoIterator<Item = String>) -> ActualityMediator {
        ActualityMediator {
            validity: OrderedRwLock::new(LockRank::QosMechConfig, validity),
            read_ops: read_ops.into_iter().collect(),
            cache: OrderedMutex::new(LockRank::QosMechState, HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            metrics: OrderedRwLock::new(LockRank::QosMechMetrics, None),
        }
    }

    /// Mirror cache activity into `registry`: counters
    /// `qos.actuality.hits` / `qos.actuality.misses` and histogram
    /// `qos.actuality.staleness_us` — the age of each cached answer at
    /// the moment it was served, i.e. the staleness the client actually
    /// experienced under the agreed validity bound.
    pub fn set_metrics(&self, registry: Option<MetricsRegistry>) {
        *self.metrics.write() = registry;
    }

    /// Change the validity interval (renegotiation).
    pub fn set_validity(&self, validity: Duration) {
        *self.validity.write() = validity;
    }

    /// The current validity interval.
    pub fn validity(&self) -> Duration {
        *self.validity.read()
    }

    /// Drop all cached entries.
    pub fn invalidate(&self) {
        self.cache.lock().clear();
    }

    /// A snapshot of the hit/miss counters.
    pub fn stats(&self) -> ActualityStats {
        ActualityStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Hit ratio in `[0, 1]` (0 when nothing was asked).
    pub fn hit_ratio(&self) -> f64 {
        let s = self.stats();
        let total = s.hits + s.misses;
        if total == 0 {
            0.0
        } else {
            s.hits as f64 / total as f64
        }
    }

    fn cache_key(call: &Call) -> String {
        use std::fmt::Write;
        let mut key = call.operation.clone();
        for a in &call.args {
            let _ = write!(key, "|{a}");
        }
        key
    }
}

impl Mediator for ActualityMediator {
    fn characteristic(&self) -> &str {
        ACTUALITY_CHARACTERISTIC
    }

    fn around(&self, call: Call, next: Next<'_>) -> Result<Any, OrbError> {
        if !self.read_ops.iter().any(|op| op == &call.operation) {
            // A write: pass through and invalidate.
            let result = next(call);
            if result.is_ok() {
                self.invalidate();
            }
            return result;
        }
        let key = Self::cache_key(&call);
        let validity = self.validity();
        if let Some(entry) = self.cache.lock().get(&key) {
            let age = entry.fetched.elapsed();
            if age <= validity {
                self.hits.fetch_add(1, Ordering::Relaxed);
                if let Some(m) = self.metrics.read().as_ref() {
                    m.incr("qos.actuality.hits");
                    m.observe_us("qos.actuality.staleness_us", age.as_micros() as u64);
                }
                return Ok(entry.value.clone());
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        if let Some(m) = self.metrics.read().as_ref() {
            m.incr("qos.actuality.misses");
            // A fresh fetch has zero staleness by construction.
            m.observe_us("qos.actuality.staleness_us", 0);
        }
        let value = next(call)?;
        self.cache
            .lock()
            .insert(key, CacheEntry { value: value.clone(), fetched: Instant::now() });
        Ok(value)
    }

    fn qos_op(&self, op: &str, args: &[Any]) -> Result<Any, OrbError> {
        match op {
            "set_validity_ms" => {
                let ms = args
                    .first()
                    .and_then(Any::as_i64)
                    .filter(|v| *v >= 0)
                    .ok_or_else(|| OrbError::BadParam("set_validity_ms(ms)".to_string()))?;
                self.set_validity(Duration::from_millis(ms as u64));
                Ok(Any::Void)
            }
            "invalidate" => {
                self.invalidate();
                Ok(Any::Void)
            }
            "hit_ratio" => Ok(Any::Double(self.hit_ratio())),
            other => Err(OrbError::BadOperation(format!("actuality op {other}"))),
        }
    }
}

/// Server-side QoS implementation: stamps every struct reply with a
/// production timestamp (µs since the implementation started) so clients
/// and monitors can measure staleness.
pub struct FreshnessStampQosImpl {
    epoch: Instant,
    stamped: AtomicU64,
}

impl Default for FreshnessStampQosImpl {
    fn default() -> FreshnessStampQosImpl {
        FreshnessStampQosImpl::new()
    }
}

impl FreshnessStampQosImpl {
    /// A stamper with its epoch at construction time.
    pub fn new() -> FreshnessStampQosImpl {
        FreshnessStampQosImpl { epoch: Instant::now(), stamped: AtomicU64::new(0) }
    }

    /// Microseconds since this implementation's epoch.
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Replies stamped so far.
    pub fn stamped(&self) -> u64 {
        self.stamped.load(Ordering::Relaxed)
    }
}

impl QosImplementation for FreshnessStampQosImpl {
    fn characteristic(&self) -> &str {
        ACTUALITY_CHARACTERISTIC
    }

    fn epilog(&self, _op: &str, _args: &[Any], result: &mut Result<Any, OrbError>) {
        if let Ok(Any::Struct(_, fields)) = result {
            fields.push((STAMP_FIELD.to_string(), Any::ULongLong(self.now_us())));
            self.stamped.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn qos_op(&self, op: &str, _args: &[Any], _server: &dyn Servant) -> Result<Any, OrbError> {
        match op {
            "now_us" => Ok(Any::ULongLong(self.now_us())),
            "stamped" => Ok(Any::ULongLong(self.stamped())),
            other => Err(OrbError::BadOperation(format!("freshness op {other}"))),
        }
    }
}

/// Extract the freshness stamp from a stamped reply, if present.
pub fn stamp_of(reply: &Any) -> Option<u64> {
    reply.field(STAMP_FIELD).and_then(Any::as_i64).map(|v| v as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::Network;
    use orb::Orb;
    use std::sync::Arc;
    use weaver::ClientStub;

    struct Source(AtomicU64);
    impl Servant for Source {
        fn interface_id(&self) -> &str {
            "IDL:Source:1.0"
        }
        fn dispatch(&self, op: &str, _args: &[Any]) -> Result<Any, OrbError> {
            match op {
                "read" => Ok(Any::ULongLong(self.0.fetch_add(1, Ordering::Relaxed))),
                "write" => {
                    self.0.store(1000, Ordering::Relaxed);
                    Ok(Any::Void)
                }
                _ => Err(OrbError::BadOperation(op.to_string())),
            }
        }
    }

    fn setup(validity: Duration) -> (Orb, Orb, ClientStub, Arc<ActualityMediator>) {
        let net = Network::new(1);
        let server = Orb::start(&net, "server");
        let client = Orb::start(&net, "client");
        let ior = server.activate("src", Box::new(Source(AtomicU64::new(0))));
        let stub = ClientStub::new(client.clone(), ior);
        let mediator = Arc::new(ActualityMediator::new(validity, vec!["read".to_string()]));
        stub.set_mediator(mediator.clone());
        (server, client, stub, mediator)
    }

    #[test]
    fn fresh_cache_answers_without_server() {
        let (server, client, stub, mediator) = setup(Duration::from_secs(10));
        let v1 = stub.invoke("read", &[]).unwrap().into_value();
        let v2 = stub.invoke("read", &[]).unwrap().into_value();
        assert_eq!(v1, v2); // second call served from cache
        assert_eq!(mediator.stats(), ActualityStats { hits: 1, misses: 1 });
        assert_eq!(server.stats().requests_handled, 1);
        assert!((mediator.hit_ratio() - 0.5).abs() < 1e-9);
        server.shutdown();
        client.shutdown();
    }

    #[test]
    fn stale_cache_refetches() {
        let (server, client, stub, mediator) = setup(Duration::from_millis(30));
        let v1 = stub.invoke("read", &[]).unwrap().into_value();
        std::thread::sleep(Duration::from_millis(60));
        let v2 = stub.invoke("read", &[]).unwrap().into_value();
        assert_ne!(v1, v2);
        assert_eq!(mediator.stats().misses, 2);
        server.shutdown();
        client.shutdown();
    }

    #[test]
    fn zero_validity_disables_caching() {
        let (server, client, stub, mediator) = setup(Duration::ZERO);
        stub.invoke("read", &[]).unwrap();
        std::thread::sleep(Duration::from_millis(2));
        stub.invoke("read", &[]).unwrap();
        assert_eq!(mediator.stats().hits, 0);
        server.shutdown();
        client.shutdown();
    }

    #[test]
    fn writes_pass_through_and_invalidate() {
        let (server, client, stub, mediator) = setup(Duration::from_secs(10));
        let v1 = stub.invoke("read", &[]).unwrap().into_value();
        stub.invoke("write", &[]).unwrap();
        let v2 = stub.invoke("read", &[]).unwrap().into_value();
        assert_ne!(v1, v2);
        assert_eq!(mediator.stats().misses, 2);
        server.shutdown();
        client.shutdown();
    }

    #[test]
    fn renegotiation_via_qos_op() {
        let (server, client, stub, mediator) = setup(Duration::from_secs(10));
        stub.qos_op(ACTUALITY_CHARACTERISTIC, "set_validity_ms", &[Any::LongLong(5)]).unwrap();
        assert_eq!(mediator.validity(), Duration::from_millis(5));
        stub.invoke("read", &[]).unwrap();
        stub.qos_op(ACTUALITY_CHARACTERISTIC, "invalidate", &[]).unwrap();
        stub.invoke("read", &[]).unwrap();
        assert_eq!(mediator.stats().misses, 2);
        assert!(stub
            .qos_op(ACTUALITY_CHARACTERISTIC, "set_validity_ms", &[Any::LongLong(-1)])
            .is_err());
        assert!(stub.qos_op(ACTUALITY_CHARACTERISTIC, "nope", &[]).is_err());
        server.shutdown();
        client.shutdown();
    }

    #[test]
    fn cache_activity_mirrors_into_metrics() {
        let (server, client, stub, mediator) = setup(Duration::from_secs(10));
        let registry = MetricsRegistry::new();
        mediator.set_metrics(Some(registry.clone()));
        stub.invoke("read", &[]).unwrap();
        stub.invoke("read", &[]).unwrap();
        let snap = registry.snapshot();
        assert_eq!(snap.counter("qos.actuality.misses"), 1);
        assert_eq!(snap.counter("qos.actuality.hits"), 1);
        let staleness = snap.histogram("qos.actuality.staleness_us").unwrap();
        assert_eq!(staleness.count, 2); // one fresh fetch, one cache hit
        server.shutdown();
        client.shutdown();
    }

    #[test]
    fn distinct_args_cache_separately() {
        let (server, client, stub, mediator) = setup(Duration::from_secs(10));
        // "read" ignores args, but cache keys include them.
        stub.invoke("read", &[Any::Long(1)]).unwrap();
        stub.invoke("read", &[Any::Long(2)]).unwrap();
        assert_eq!(mediator.stats().misses, 2);
        stub.invoke("read", &[Any::Long(1)]).unwrap();
        assert_eq!(mediator.stats().hits, 1);
        server.shutdown();
        client.shutdown();
    }

    #[test]
    fn freshness_stamping() {
        let qi = FreshnessStampQosImpl::new();
        let mut result = Ok(Any::Struct("Quote".into(), vec![("px".into(), Any::Double(1.0))]));
        qi.epilog("latest", &[], &mut result);
        let reply = result.unwrap();
        assert!(stamp_of(&reply).is_some());
        assert_eq!(qi.stamped(), 1);
        // Non-struct replies are left alone.
        let mut plain = Ok(Any::Long(1));
        qi.epilog("latest", &[], &mut plain);
        assert_eq!(plain.unwrap(), Any::Long(1));
        assert_eq!(qi.stamped(), 1);
    }

    #[test]
    fn freshness_qos_ops() {
        let qi = FreshnessStampQosImpl::new();
        struct Nothing;
        impl Servant for Nothing {
            fn interface_id(&self) -> &str {
                "IDL:N:1.0"
            }
            fn dispatch(&self, op: &str, _a: &[Any]) -> Result<Any, OrbError> {
                Err(OrbError::BadOperation(op.to_string()))
            }
        }
        assert!(qi.qos_op("now_us", &[], &Nothing).is_ok());
        assert_eq!(qi.qos_op("stamped", &[], &Nothing).unwrap(), Any::ULongLong(0));
        assert!(qi.qos_op("x", &[], &Nothing).is_err());
    }
}
