//! The mediator registry: from agreement to installed delegate.
//!
//! "For each QoS characteristic a mediator is generated" (§3.3) — and at
//! runtime, after negotiation, *the mediator of the desired QoS is set
//! in the stub as a delegate*. The registry holds a factory per
//! characteristic so that step is automatic: give it a concluded
//! agreement's characteristic and parameters, get the mediator, install
//! it.

use orb::sync::{LockRank, OrderedRwLock};
use crate::mediator::{ClientStub, Mediator};
use orb::{Any, OrbError};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Builds a mediator from negotiated parameter values.
pub type MediatorFactory =
    Arc<dyn Fn(&[(String, Any)]) -> Result<Arc<dyn Mediator>, OrbError> + Send + Sync>;

/// Maps characteristic names to mediator factories.
#[derive(Clone)]
pub struct MediatorRegistry {
    factories: Arc<OrderedRwLock<HashMap<String, MediatorFactory>>>,
}

impl Default for MediatorRegistry {
    fn default() -> MediatorRegistry {
        MediatorRegistry {
            factories: Arc::new(OrderedRwLock::new(LockRank::MediatorFactories, HashMap::new())),
        }
    }
}

impl fmt::Debug for MediatorRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MediatorRegistry")
            .field("characteristics", &self.characteristics())
            .finish()
    }
}

impl MediatorRegistry {
    /// An empty registry.
    pub fn new() -> MediatorRegistry {
        MediatorRegistry::default()
    }

    /// Register the factory for a characteristic (replacing any previous).
    pub fn register(&self, characteristic: impl Into<String>, factory: MediatorFactory) {
        self.factories.write().insert(characteristic.into(), factory);
    }

    /// Registered characteristic names, sorted.
    pub fn characteristics(&self) -> Vec<String> {
        let mut v: Vec<String> = self.factories.read().keys().cloned().collect();
        v.sort();
        v
    }

    /// Build the mediator for `characteristic` with negotiated `params`.
    ///
    /// # Errors
    ///
    /// [`OrbError::QosViolation`] if no factory is registered; the
    /// factory's own error otherwise.
    pub fn build(
        &self,
        characteristic: &str,
        params: &[(String, Any)],
    ) -> Result<Arc<dyn Mediator>, OrbError> {
        let factory = self
            .factories
            .read()
            .get(characteristic)
            .cloned()
            .ok_or_else(|| {
                OrbError::QosViolation(format!("no mediator factory for `{characteristic}`"))
            })?;
        factory(params)
    }

    /// Build the mediator and install it as the stub's delegate, also
    /// attaching the wire context — the complete §3.3 runtime step.
    ///
    /// # Errors
    ///
    /// As [`MediatorRegistry::build`].
    pub fn install(
        &self,
        stub: &ClientStub,
        characteristic: &str,
        params: &[(String, Any)],
    ) -> Result<Arc<dyn Mediator>, OrbError> {
        let mediator = self.build(characteristic, params)?;
        stub.set_mediator(Arc::clone(&mediator));
        let mut ctx = orb::giop::QosContext::new(characteristic);
        for (n, v) in params {
            ctx = ctx.with_param(n.clone(), v.clone());
        }
        stub.set_qos_context(Some(ctx));
        Ok(mediator)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mediator::{Call, Next};
    use netsim::Network;
    use orb::{Orb, Servant};

    struct Nop(&'static str);
    impl Mediator for Nop {
        fn characteristic(&self) -> &str {
            self.0
        }
        fn around(&self, call: Call, next: Next<'_>) -> Result<Any, OrbError> {
            next(call)
        }
    }

    #[test]
    fn register_and_build() {
        let reg = MediatorRegistry::new();
        reg.register(
            "Caching",
            Arc::new(|params: &[(String, Any)]| {
                // Factories see the negotiated parameters.
                assert_eq!(params.first().map(|(n, _)| n.as_str()), Some("validity_ms"));
                Ok(Arc::new(Nop("Caching")) as Arc<dyn Mediator>)
            }),
        );
        assert_eq!(reg.characteristics(), vec!["Caching"]);
        let m = reg
            .build("Caching", &[("validity_ms".to_string(), Any::ULongLong(5))])
            .unwrap();
        assert_eq!(m.characteristic(), "Caching");
        assert!(matches!(reg.build("Ghost", &[]), Err(OrbError::QosViolation(_))));
    }

    #[test]
    fn install_sets_delegate_and_context() {
        struct Echo;
        impl Servant for Echo {
            fn interface_id(&self) -> &str {
                "IDL:Echo:1.0"
            }
            fn dispatch(&self, op: &str, args: &[Any]) -> Result<Any, OrbError> {
                match op {
                    "echo" => Ok(args[0].clone()),
                    _ => Err(OrbError::BadOperation(op.to_string())),
                }
            }
        }
        let net = Network::new(1);
        let server = Orb::start(&net, "server");
        let client = Orb::start(&net, "client");
        let ior = server.activate("e", Box::new(Echo));
        let stub = ClientStub::new(client.clone(), ior);

        let reg = MediatorRegistry::new();
        reg.register("Nop", Arc::new(|_| Ok(Arc::new(Nop("Nop")) as Arc<dyn Mediator>)));
        reg.install(&stub, "Nop", &[]).unwrap();
        assert_eq!(stub.mediator_chain(), vec!["Nop"]);
        assert_eq!(stub.invoke("echo", &[Any::Long(3)]).unwrap(), Any::Long(3));
        server.shutdown();
        client.shutdown();
    }

    #[test]
    fn factory_errors_propagate() {
        let reg = MediatorRegistry::new();
        reg.register(
            "Fussy",
            Arc::new(|_| Err(OrbError::BadParam("missing required param".to_string()))),
        );
        assert!(matches!(reg.build("Fussy", &[]), Err(OrbError::BadParam(_))));
    }
}
