//! The runtime aspect-weaving layer (§3.3 of the paper).
//!
//! The QIDL compiler separates QoS from application concerns *statically*
//! (see [`qidl::codegen`]); this crate provides the *runtime* halves of
//! the weave:
//!
//! * **Client side** — the stub is extended by a **mediator**: "At runtime
//!   the mediator of the desired QoS is set in the stub as a delegate.
//!   Each call is intercepted and delegated to the mediator which can
//!   issue the QoS behaviour on the client side." [`ClientStub`] holds a
//!   replaceable [`Mediator`] chain and threads every invocation through
//!   it.
//!
//! * **Server side** (Fig. 2) — the servant is wrapped by a
//!   [`WovenServant`]: it accepts all QoS operations of the *assigned*
//!   characteristics (per the interface repository), but only those of
//!   the currently *negotiated* characteristic are processed — others
//!   raise [`OrbError::QosNotNegotiated`](orb::OrbError::QosNotNegotiated). Application requests are
//!   bracketed by the active QoS implementation's **prolog** and
//!   **epilog**. The active [`QosImplementation`] delegate can be
//!   exchanged at runtime.
//!
//! * **Binding** — [`binding::QosBindingRegistry`] records which
//!   characteristic (and which parameter values) a client/object
//!   relationship is currently bound to, with the paper's granularity
//!   rule (interfaces only) enforced by construction.
//!
//! * **Observability** — every stub invocation returns a typed
//!   [`Reply`] carrying the propagated trace context (one span per
//!   layer crossed) and the active QoS tag; the woven skeleton records
//!   `qos.prolog`/`servant`/`qos.epilog` spans and can feed a
//!   [`RequestObserver`] with measured per-request latency and success,
//!   which the deployment layer wires into QoS monitoring.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use netsim::Network;
//! use orb::prelude::*;
//! use weaver::{ClientStub, Call, Mediator, Next};
//!
//! struct Echo;
//! impl Servant for Echo {
//!     fn interface_id(&self) -> &str { "IDL:Echo:1.0" }
//!     fn dispatch(&self, op: &str, args: &[Any]) -> Result<Any, OrbError> {
//!         match op {
//!             "echo" => Ok(args[0].clone()),
//!             _ => Err(OrbError::BadOperation(op.into())),
//!         }
//!     }
//! }
//!
//! /// A mediator that counts calls — pure client-side QoS behaviour.
//! struct Counting(std::sync::atomic::AtomicU64);
//! impl Mediator for Counting {
//!     fn characteristic(&self) -> &str { "counting" }
//!     fn around(&self, call: Call, next: Next<'_>) -> Result<Any, OrbError> {
//!         self.0.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
//!         next(call)
//!     }
//! }
//!
//! let net = Network::new(1);
//! let server = Orb::start(&net, "server");
//! let client = Orb::start(&net, "client");
//! let ior = server.activate("echo", Box::new(Echo));
//!
//! let stub = ClientStub::new(client.clone(), ior);
//! let counter = Arc::new(Counting(Default::default()));
//! stub.set_mediator(counter.clone());
//! stub.invoke("echo", &[Any::from("hi")]).unwrap();
//! assert_eq!(counter.0.load(std::sync::atomic::Ordering::Relaxed), 1);
//! # server.shutdown(); client.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binding;
pub mod mediator;
pub mod registry;
pub mod reply;
pub mod resilience;
pub mod skeleton;

pub use binding::{QosBinding, QosBindingRegistry};
pub use mediator::{annotate_span, Call, ClientStub, Mediator, Next};
pub use orb::PendingCall;
pub use registry::{MediatorFactory, MediatorRegistry};
pub use reply::Reply;
pub use resilience::{
    BreakerConfig, CircuitBreaker, CircuitState, FailStaticMode, ResilienceMediator,
    ResiliencePolicy,
};
pub use skeleton::{QosImplementation, RequestObserver, WovenServant};
