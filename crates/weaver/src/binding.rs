//! QoS binding: assigning a characteristic to a client/server relation.
//!
//! §3 of the paper: "in order to attribute the interactions between
//! client and service with a distinct QoS provision an assignment of a
//! QoS characteristic to the client/server relationship has to be
//! established. This assignment can vary in time … and in granularity."
//! QIDL fixes the granularity at *interfaces only*; this registry manages
//! the time dimension: bindings are created, looked up and replaced
//! (renegotiated) at runtime.

use orb::sync::{LockRank, OrderedRwLock};
use orb::giop::QosContext;
use orb::ior::ObjectKey;
use orb::Any;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// One established QoS binding.
#[derive(Debug, Clone, PartialEq)]
pub struct QosBinding {
    /// The bound object.
    pub object: ObjectKey,
    /// The negotiated characteristic.
    pub characteristic: String,
    /// The agreed parameter values.
    pub params: Vec<(String, Any)>,
    /// Monotonically increasing version; bumped on renegotiation.
    pub version: u64,
}

impl QosBinding {
    /// The wire-level [`QosContext`] equivalent of this binding.
    pub fn to_context(&self) -> QosContext {
        let mut ctx = QosContext::new(self.characteristic.clone());
        for (name, value) in &self.params {
            ctx = ctx.with_param(name.clone(), value.clone());
        }
        ctx
    }

    /// Look up an agreed parameter value.
    pub fn param(&self, name: &str) -> Option<&Any> {
        self.params.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }
}

/// Tracks the current QoS binding per object relationship.
#[derive(Clone)]
pub struct QosBindingRegistry {
    bindings: Arc<OrderedRwLock<HashMap<ObjectKey, QosBinding>>>,
}

impl Default for QosBindingRegistry {
    fn default() -> QosBindingRegistry {
        QosBindingRegistry {
            bindings: Arc::new(OrderedRwLock::new(LockRank::BindingRegistry, HashMap::new())),
        }
    }
}

impl fmt::Debug for QosBindingRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("QosBindingRegistry").field("bindings", &self.bindings.read().len()).finish()
    }
}

impl QosBindingRegistry {
    /// An empty registry.
    pub fn new() -> QosBindingRegistry {
        QosBindingRegistry::default()
    }

    /// Establish (or renegotiate) the binding for `object`. Returns the
    /// new binding, with `version` bumped if one existed before.
    pub fn bind(
        &self,
        object: impl Into<ObjectKey>,
        characteristic: impl Into<String>,
        params: Vec<(String, Any)>,
    ) -> QosBinding {
        let object = object.into();
        let mut map = self.bindings.write();
        let version = map.get(&object).map(|b| b.version + 1).unwrap_or(1);
        let binding = QosBinding {
            object: object.clone(),
            characteristic: characteristic.into(),
            params,
            version,
        };
        map.insert(object, binding.clone());
        binding
    }

    /// Remove the binding for `object`, returning it if present.
    pub fn unbind(&self, object: &ObjectKey) -> Option<QosBinding> {
        self.bindings.write().remove(object)
    }

    /// Current binding for `object`.
    pub fn binding(&self, object: &ObjectKey) -> Option<QosBinding> {
        self.bindings.read().get(object).cloned()
    }

    /// Snapshot of all live bindings, sorted by object key (stable
    /// order for reporting and deployment linting).
    pub fn bindings(&self) -> Vec<QosBinding> {
        let mut v: Vec<QosBinding> = self.bindings.read().values().cloned().collect();
        v.sort_by(|a, b| a.object.0.cmp(&b.object.0));
        v
    }

    /// Number of live bindings.
    pub fn len(&self) -> usize {
        self.bindings.read().len()
    }

    /// Whether no bindings exist.
    pub fn is_empty(&self) -> bool {
        self.bindings.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_lookup_unbind() {
        let reg = QosBindingRegistry::new();
        let key = ObjectKey("bank".into());
        let b = reg.bind("bank", "Replication", vec![("replicas".into(), Any::ULong(3))]);
        assert_eq!(b.version, 1);
        assert_eq!(reg.binding(&key).unwrap().characteristic, "Replication");
        assert_eq!(reg.len(), 1);
        let removed = reg.unbind(&key).unwrap();
        assert_eq!(removed.version, 1);
        assert!(reg.is_empty());
        assert!(reg.binding(&key).is_none());
    }

    #[test]
    fn bindings_snapshot_is_sorted_by_key() {
        let reg = QosBindingRegistry::new();
        reg.bind("b", "Encryption", vec![]);
        reg.bind("a", "Replication", vec![]);
        reg.bind("c", "Compression", vec![]);
        let keys: Vec<String> = reg.bindings().into_iter().map(|b| b.object.0).collect();
        assert_eq!(keys, vec!["a", "b", "c"]);
        assert!(QosBindingRegistry::new().bindings().is_empty());
    }

    #[test]
    fn renegotiation_bumps_version() {
        let reg = QosBindingRegistry::new();
        reg.bind("o", "Compression", vec![("level".into(), Any::Octet(3))]);
        let b2 = reg.bind("o", "Compression", vec![("level".into(), Any::Octet(9))]);
        assert_eq!(b2.version, 2);
        assert_eq!(
            reg.binding(&ObjectKey("o".into())).unwrap().param("level"),
            Some(&Any::Octet(9))
        );
    }

    #[test]
    fn binding_converts_to_wire_context() {
        let reg = QosBindingRegistry::new();
        let b = reg.bind("o", "Encryption", vec![("seed".into(), Any::ULongLong(7))]);
        let ctx = b.to_context();
        assert_eq!(ctx.characteristic, "Encryption");
        assert_eq!(ctx.param("seed"), Some(&Any::ULongLong(7)));
    }
}
