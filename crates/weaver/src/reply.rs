//! Typed client-side invocation results.
//!
//! [`ClientStub::invoke`](crate::ClientStub::invoke) used to hand back a
//! bare [`Any`], losing everything the request path learned about itself
//! along the way. [`Reply`] keeps the value *and* the observability
//! sidecar: the propagated [`TraceContext`] (one span per Fig. 1 layer
//! the call crossed) and the QoS characteristic the call was made under.
//!
//! `Reply` derefs to its [`Any`] value and compares equal to one, so the
//! common call sites — `reply.as_str()`, `assert_eq!(reply, Any::…)`,
//! passing `&reply` to an `&Any` parameter — keep working unchanged.
//! Deliberately there is **no** `Reply == Reply`: comparing two replies
//! span-for-span is almost never what a caller means; compare `.value`.

use orb::{Any, TraceContext};
use std::fmt;
use std::ops::Deref;

/// The result of a stub invocation: the returned value plus the
/// request-path observability data that travelled with it.
#[derive(Clone)]
pub struct Reply {
    /// The operation's return value.
    pub value: Any,
    /// The propagated trace, if the call was traced end to end. `None`
    /// only when a mediator short-circuited before the ORB was reached
    /// and tracing was not re-rooted, or the peer stripped the context.
    pub trace: Option<TraceContext>,
    /// The QoS characteristic the call was made under (from the stub's
    /// applied binding), if any.
    pub qos_tag: Option<String>,
}

impl Reply {
    /// A reply carrying only a value (no trace, no QoS tag).
    pub fn untraced(value: Any) -> Reply {
        Reply { value, trace: None, qos_tag: None }
    }

    /// Consume the reply, keeping only the value.
    pub fn into_value(self) -> Any {
        self.value
    }

    /// The trace id this call travelled under, if traced.
    pub fn trace_id(&self) -> Option<u64> {
        self.trace.as_ref().map(|t| t.trace_id)
    }
}

impl Deref for Reply {
    type Target = Any;

    fn deref(&self) -> &Any {
        &self.value
    }
}

impl PartialEq<Any> for Reply {
    fn eq(&self, other: &Any) -> bool {
        self.value == *other
    }
}

impl PartialEq<Reply> for Any {
    fn eq(&self, other: &Reply) -> bool {
        *self == other.value
    }
}

/// Displays as the value alone (the observability sidecar is metadata,
/// not payload).
impl fmt::Display for Reply {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.value.fmt(f)
    }
}

impl fmt::Debug for Reply {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Reply")
            .field("value", &self.value)
            .field("trace_id", &self.trace_id())
            .field("spans", &self.trace.as_ref().map(|t| t.spans.len()).unwrap_or(0))
            .field("qos_tag", &self.qos_tag)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derefs_to_value() {
        let r = Reply::untraced(Any::Str("hi".into()));
        assert_eq!(r.as_str(), Some("hi"));
        fn wants_any(a: &Any) -> bool {
            matches!(a, Any::Str(_))
        }
        assert!(wants_any(&r));
    }

    #[test]
    fn compares_with_any_both_ways() {
        let r = Reply::untraced(Any::Long(7));
        assert_eq!(r, Any::Long(7));
        assert_eq!(Any::Long(7), r);
        assert!(r != Any::Long(8));
    }

    #[test]
    fn exposes_trace_id() {
        let mut t = TraceContext::with_id(42);
        t.push("stub", "client", 3);
        let r = Reply { value: Any::Void, trace: Some(t), qos_tag: Some("Compression".into()) };
        assert_eq!(r.trace_id(), Some(42));
        assert_eq!(r.qos_tag.as_deref(), Some("Compression"));
        assert_eq!(Reply::untraced(Any::Void).trace_id(), None);
    }
}
