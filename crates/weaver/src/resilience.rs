//! Self-healing bindings, client half: deadline budgets, bounded retry
//! and a per-binding circuit breaker, packaged as a [`Mediator`].
//!
//! A negotiated agreement is a promise; this module is what the client
//! does while the promise holds — and the moment it stops holding:
//!
//! * every call gets a **deadline budget** derived from the agreement's
//!   `deadline_ms`, and the configured [`RetryPolicy`] runs strictly
//!   *inside* that budget (a retry that cannot finish in time is not
//!   started);
//! * every binding gets a **circuit breaker** (Closed → Open → HalfOpen)
//!   tripped by consecutive errors or by the failure rate over a rolling
//!   window, so a dead replica sheds load locally instead of timing out
//!   call after call;
//! * every outcome is fed to an optional [`RequestObserver`], which the
//!   deployment layer points at the QoS monitor — closing the loop that
//!   the adaptation engine (`services::adaptation`) reacts to.
//!
//! Breaker transitions are counted in [`orb::metrics`] (the
//! `resilience.circuit.*` family) and annotated as spans on the call's
//! trace via [`annotate_span`](crate::mediator::annotate_span).

use orb::sync::{LockRank, OrderedMutex, OrderedRwLock};
use crate::mediator::{annotate_span, Call, Mediator, Next};
use crate::skeleton::RequestObserver;
use orb::retry::RetryPolicy;
use orb::{Any, FlightEventKind, FlightRecorder, Ior, MetricsRegistry, OrbError, WireEvent};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The three circuit-breaker states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CircuitState {
    /// Calls flow; outcomes are tallied.
    Closed,
    /// Calls are rejected locally until the cooldown elapses.
    Open,
    /// A limited number of trial calls decide between Closed and Open.
    HalfOpen,
}

impl CircuitState {
    /// Lower-case name, used in metrics and trace spans.
    pub fn name(self) -> &'static str {
        match self {
            CircuitState::Closed => "closed",
            CircuitState::Open => "open",
            CircuitState::HalfOpen => "half_open",
        }
    }
}

/// Thresholds and timings for a [`CircuitBreaker`].
#[derive(Debug, Clone)]
pub struct BreakerConfig {
    /// Open after this many consecutive failures (>= 1).
    pub consecutive_failures: u32,
    /// Open when the failure rate over the rolling window reaches this
    /// fraction (0.0 ..= 1.0) …
    pub failure_rate: f64,
    /// … provided at least `min_calls` outcomes are in the window.
    pub min_calls: usize,
    /// Rolling-window size, in outcomes.
    pub window: usize,
    /// How long an open circuit rejects calls before probing (HalfOpen).
    pub cooldown: Duration,
    /// Successful trial calls needed in HalfOpen to close again.
    pub half_open_successes: u32,
}

impl Default for BreakerConfig {
    /// 3 consecutive failures or 50 % of the last 16 calls (min 8),
    /// 200 ms cooldown, one successful probe to close.
    fn default() -> BreakerConfig {
        BreakerConfig {
            consecutive_failures: 3,
            failure_rate: 0.5,
            min_calls: 8,
            window: 16,
            cooldown: Duration::from_millis(200),
            half_open_successes: 1,
        }
    }
}

/// A `(from, to)` state change, reported so callers can count and log it.
pub type Transition = (CircuitState, CircuitState);

struct BreakerInner {
    state: CircuitState,
    consecutive: u32,
    outcomes: VecDeque<bool>,
    opened_at: Option<Instant>,
    trial_successes: u32,
}

/// A per-binding circuit breaker (Closed → Open → HalfOpen).
///
/// Pure state machine: it never sleeps and never invokes anything. The
/// [`ResilienceMediator`] drives it; it is public so other layers (or
/// tests) can reuse the same semantics.
pub struct CircuitBreaker {
    config: BreakerConfig,
    inner: OrderedMutex<BreakerInner>,
}

impl std::fmt::Debug for CircuitBreaker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CircuitBreaker")
            .field("state", &self.state())
            .field("config", &self.config)
            .finish()
    }
}

impl CircuitBreaker {
    /// A closed breaker with the given thresholds.
    pub fn new(config: BreakerConfig) -> CircuitBreaker {
        CircuitBreaker {
            config,
            inner: OrderedMutex::new(LockRank::BreakerInner, BreakerInner {
                state: CircuitState::Closed,
                consecutive: 0,
                outcomes: VecDeque::new(),
                opened_at: None,
                trial_successes: 0,
            }),
        }
    }

    /// The current state.
    pub fn state(&self) -> CircuitState {
        self.inner.lock().state
    }

    /// Ask to admit one call. `Ok` admits (with the Open→HalfOpen
    /// transition if the cooldown just elapsed); `Err` rejects.
    pub fn admit(&self) -> Result<Option<Transition>, ()> {
        let mut st = self.inner.lock();
        match st.state {
            CircuitState::Closed | CircuitState::HalfOpen => Ok(None),
            CircuitState::Open => {
                let cooled =
                    st.opened_at.map(|t| t.elapsed() >= self.config.cooldown).unwrap_or(true);
                if cooled {
                    st.state = CircuitState::HalfOpen;
                    st.trial_successes = 0;
                    Ok(Some((CircuitState::Open, CircuitState::HalfOpen)))
                } else {
                    Err(())
                }
            }
        }
    }

    /// Record a successful call.
    pub fn on_success(&self) -> Option<Transition> {
        let mut st = self.inner.lock();
        st.consecutive = 0;
        match st.state {
            CircuitState::Closed => {
                Self::push_outcome(&mut st, &self.config, true);
                None
            }
            CircuitState::HalfOpen => {
                st.trial_successes += 1;
                if st.trial_successes >= self.config.half_open_successes.max(1) {
                    st.state = CircuitState::Closed;
                    st.outcomes.clear();
                    st.opened_at = None;
                    Some((CircuitState::HalfOpen, CircuitState::Closed))
                } else {
                    None
                }
            }
            // A success racing an open circuit (another thread tripped it
            // mid-call) does not close it; the probe path will.
            CircuitState::Open => None,
        }
    }

    /// Record a failed call.
    pub fn on_failure(&self) -> Option<Transition> {
        let mut st = self.inner.lock();
        st.consecutive += 1;
        match st.state {
            CircuitState::Closed => {
                Self::push_outcome(&mut st, &self.config, false);
                let by_streak = st.consecutive >= self.config.consecutive_failures.max(1);
                let failures = st.outcomes.iter().filter(|ok| !**ok).count();
                let by_rate = st.outcomes.len() >= self.config.min_calls.max(1)
                    && failures as f64 / st.outcomes.len() as f64 >= self.config.failure_rate;
                if by_streak || by_rate {
                    st.state = CircuitState::Open;
                    st.opened_at = Some(Instant::now());
                    Some((CircuitState::Closed, CircuitState::Open))
                } else {
                    None
                }
            }
            CircuitState::HalfOpen => {
                st.state = CircuitState::Open;
                st.opened_at = Some(Instant::now());
                Some((CircuitState::HalfOpen, CircuitState::Open))
            }
            CircuitState::Open => None,
        }
    }

    /// Force the breaker closed (after a rebind to a fresh replica).
    pub fn force_close(&self) -> Option<Transition> {
        let mut st = self.inner.lock();
        let from = st.state;
        st.state = CircuitState::Closed;
        st.consecutive = 0;
        st.outcomes.clear();
        st.opened_at = None;
        st.trial_successes = 0;
        (from != CircuitState::Closed).then_some((from, CircuitState::Closed))
    }

    fn push_outcome(st: &mut BreakerInner, config: &BreakerConfig, ok: bool) {
        st.outcomes.push_back(ok);
        while st.outcomes.len() > config.window.max(1) {
            st.outcomes.pop_front();
        }
    }
}

/// Everything the resilience mediator enforces for one binding.
#[derive(Debug, Clone)]
pub struct ResiliencePolicy {
    /// Per-call wall-clock budget; `None` leaves calls bounded only by
    /// the ORB's request timeout.
    pub deadline: Option<Duration>,
    /// Retry policy applied *within* the deadline budget.
    pub retry: RetryPolicy,
    /// Circuit-breaker thresholds.
    pub breaker: BreakerConfig,
}

impl Default for ResiliencePolicy {
    /// No deadline, the default [`RetryPolicy`] (3 attempts, 10 ms
    /// doubling backoff), default breaker thresholds.
    fn default() -> ResiliencePolicy {
        ResiliencePolicy {
            deadline: None,
            retry: RetryPolicy::default(),
            breaker: BreakerConfig::default(),
        }
    }
}

impl ResiliencePolicy {
    /// Derive the per-call deadline from negotiated agreement parameters:
    /// `deadline_ms`, if present and numeric, becomes the budget.
    pub fn from_params(params: &[(String, Any)]) -> ResiliencePolicy {
        ResiliencePolicy { deadline: deadline_from_params(params), ..Default::default() }
    }

    /// This policy with the deadline replaced from `params` (used after a
    /// renegotiation relaxed `deadline_ms`).
    pub fn with_deadline_from(mut self, params: &[(String, Any)]) -> ResiliencePolicy {
        self.deadline = deadline_from_params(params);
        self
    }
}

/// The `deadline_ms` parameter as a [`Duration`], if present.
pub fn deadline_from_params(params: &[(String, Any)]) -> Option<Duration> {
    params.iter().find(|(name, _)| name == "deadline_ms").and_then(|(_, value)| {
        value
            .as_double()
            .or_else(|| value.as_i64().map(|v| v as f64))
            .filter(|ms| ms.is_finite() && *ms > 0.0)
            .map(|ms| Duration::from_secs_f64(ms / 1_000.0))
    })
}

/// Which operations fail-static mode may answer from cache.
#[derive(Debug, Clone, Default)]
pub struct FailStaticMode {
    read_ops: HashSet<String>,
}

impl FailStaticMode {
    /// Serve cached replies for the given read operations; everything
    /// else is rejected.
    pub fn reads<I, S>(ops: I) -> FailStaticMode
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        FailStaticMode { read_ops: ops.into_iter().map(Into::into).collect() }
    }

    /// Whether `op` may be served from the last-known-good cache.
    pub fn is_read(&self, op: &str) -> bool {
        self.read_ops.contains(op)
    }
}

/// The resilience [`Mediator`]: deadline budget + bounded retry + circuit
/// breaker, installed as the *outermost* chain link of a binding's stub
/// (see [`ClientStub::push_mediator_front`](crate::ClientStub::push_mediator_front)).
///
/// The adaptation engine keeps an `Arc` to it and steers it when the
/// monitor reports violations: [`set_target_override`]
/// (rebind to a live replica), [`set_policy`] (renegotiated deadline) and
/// [`enter_fail_static`] (serve last-known-good reads, reject writes).
///
/// [`set_target_override`]: ResilienceMediator::set_target_override
/// [`set_policy`]: ResilienceMediator::set_policy
/// [`enter_fail_static`]: ResilienceMediator::enter_fail_static
pub struct ResilienceMediator {
    policy: OrderedRwLock<ResiliencePolicy>,
    breaker: CircuitBreaker,
    metrics: Option<MetricsRegistry>,
    flight: Option<FlightRecorder>,
    observer: OrderedRwLock<Option<RequestObserver>>,
    target_override: OrderedRwLock<Option<Ior>>,
    fail_static: OrderedRwLock<Option<FailStaticMode>>,
    last_good: OrderedMutex<HashMap<String, Any>>,
}

impl std::fmt::Debug for ResilienceMediator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResilienceMediator")
            .field("policy", &*self.policy.read())
            .field("circuit", &self.breaker.state())
            .field("rebound", &self.target_override.read().is_some())
            .field("fail_static", &self.fail_static.read().is_some())
            .finish()
    }
}

impl ResilienceMediator {
    /// A mediator enforcing `policy`, with a fresh closed breaker.
    pub fn new(policy: ResiliencePolicy) -> ResilienceMediator {
        let breaker = CircuitBreaker::new(policy.breaker.clone());
        ResilienceMediator {
            policy: OrderedRwLock::new(LockRank::ResiliencePolicy, policy),
            breaker,
            metrics: None,
            flight: None,
            observer: OrderedRwLock::new(LockRank::ResilienceObserver, None),
            target_override: OrderedRwLock::new(LockRank::ResilienceTarget, None),
            fail_static: OrderedRwLock::new(LockRank::ResilienceFailStatic, None),
            last_good: OrderedMutex::new(LockRank::ResilienceLastGood, HashMap::new()),
        }
    }

    /// Count breaker transitions and outcomes into `metrics`
    /// (`resilience.*` counter family).
    pub fn with_metrics(mut self, metrics: MetricsRegistry) -> ResilienceMediator {
        self.metrics = Some(metrics);
        self
    }

    /// Record circuit transitions and deadline breaches into `flight`
    /// (the client ORB's black box). Opening the circuit and exceeding a
    /// deadline are dump triggers: each freezes the ring into a retained
    /// [`orb::FlightDump`] so the evidence survives further traffic.
    pub fn with_flight(mut self, flight: FlightRecorder) -> ResilienceMediator {
        self.flight = Some(flight);
        self
    }

    /// Feed every outcome `(operation, latency_us, ok)` to `observer` —
    /// the hook the deployment layer points at the QoS monitor.
    pub fn set_observer(&self, observer: Option<RequestObserver>) {
        *self.observer.write() = observer;
    }

    /// The current circuit state.
    pub fn circuit_state(&self) -> CircuitState {
        self.breaker.state()
    }

    /// Replace the enforced policy (e.g. after renegotiation relaxed the
    /// deadline). The breaker keeps its state; thresholds stay as
    /// constructed.
    pub fn set_policy(&self, policy: ResiliencePolicy) {
        *self.policy.write() = policy;
    }

    /// The currently enforced policy.
    pub fn policy(&self) -> ResiliencePolicy {
        self.policy.read().clone()
    }

    /// Redirect every subsequent call to `target` (rebind to a live
    /// replica), or clear the override with `None`. Closes the breaker:
    /// the new target starts with a clean slate.
    pub fn set_target_override(&self, target: Option<Ior>) {
        *self.target_override.write() = target;
        if let Some(t) = self.breaker.force_close() {
            self.note_transition(t);
        }
    }

    /// The active rebind target, if any.
    pub fn target_override(&self) -> Option<Ior> {
        self.target_override.read().clone()
    }

    /// Enter fail-static mode: operations in `mode` are answered from the
    /// last-known-good cache, everything else is rejected with
    /// [`OrbError::QosViolation`]. The ladder's last resort.
    pub fn enter_fail_static(&self, mode: FailStaticMode) {
        *self.fail_static.write() = Some(mode);
    }

    /// Leave fail-static mode (after the binding healed).
    pub fn exit_fail_static(&self) {
        *self.fail_static.write() = None;
    }

    /// Whether fail-static mode is active.
    pub fn is_fail_static(&self) -> bool {
        self.fail_static.read().is_some()
    }

    /// Note a wire lifecycle event (dial, redial, failover,
    /// backpressure-shed, conn-reset) delivered by a transport this
    /// mediator's binding rides on. Counted into the
    /// `resilience.wire.*` metric family so circuit/ladder decisions —
    /// and anyone reading a metrics snapshot — see *wire-level causes*
    /// next to request-level symptoms. The transport records the event
    /// in the flight ring itself; this only attributes it.
    pub fn note_wire_event(&self, event: &WireEvent) {
        self.incr(&format!("resilience.wire.{}", event.kind.name()));
    }

    /// An [`orb::WireObserver`] forwarding wire lifecycle events into
    /// this mediator, for [`orb::WireTransport::add_wire_observer`]:
    ///
    /// ```ignore
    /// orb.wire().add_wire_observer(mediator.wire_observer());
    /// ```
    pub fn wire_observer(self: &Arc<Self>) -> orb::WireObserver {
        let mediator = Arc::clone(self);
        Arc::new(move |event: &WireEvent| mediator.note_wire_event(event))
    }

    fn incr(&self, name: &str) {
        if let Some(m) = &self.metrics {
            m.incr(name);
        }
    }

    fn note_transition(&self, (from, to): Transition) {
        self.incr(&format!("resilience.circuit.{}", to.name()));
        annotate_span(format!("resilience.circuit:{}->{}", from.name(), to.name()), 0);
        if let Some(f) = &self.flight {
            f.record_detail(
                FlightEventKind::CircuitTransition,
                "resilience",
                None,
                format!("{}->{}", from.name(), to.name()),
            );
            if to == CircuitState::Open {
                f.dump("circuit-open");
            }
        }
    }

    fn observe(&self, op: &str, us: u64, ok: bool) {
        // Clone the hook out in its own statement: an `if let` scrutinee
        // would keep the read guard alive across the callback, which
        // re-enters the monitoring layer (lower lock rank).
        let obs = self.observer.read().clone();
        if let Some(obs) = obs {
            obs(op, us, ok);
        }
    }
}

impl Mediator for ResilienceMediator {
    fn characteristic(&self) -> &str {
        "resilience"
    }

    fn around(&self, mut call: Call, next: Next<'_>) -> Result<Any, OrbError> {
        if let Some(target) = self.target_override.read().clone() {
            call.target = target;
        }

        // Fail-static short-circuit: the binding is beyond healing for
        // now; serve stale reads, reject writes.
        if let Some(mode) = self.fail_static.read().clone() {
            if mode.is_read(&call.operation) {
                if let Some(cached) = self.last_good.lock().get(&call.operation).cloned() {
                    self.incr("resilience.fail_static.served");
                    annotate_span("resilience.fail_static", 0);
                    return Ok(cached);
                }
            }
            self.incr("resilience.fail_static.rejected");
            return Err(OrbError::QosViolation(format!(
                "binding is fail-static; `{}` has no last-known-good reply",
                call.operation
            )));
        }

        match self.breaker.admit() {
            Err(()) => {
                self.incr("resilience.circuit.rejected");
                return Err(OrbError::CircuitOpen(format!(
                    "circuit open for `{}` (cooldown {:?})",
                    call.operation,
                    self.policy.read().breaker.cooldown
                )));
            }
            Ok(Some(t)) => self.note_transition(t),
            Ok(None) => {}
        }

        let policy = self.policy.read().clone();
        let operation = call.operation.clone();
        let started = Instant::now();
        let attempt = || {
            self.incr("resilience.attempts");
            next(call.clone())
        };
        let result = match policy.deadline {
            Some(budget) => policy.retry.run_within(budget, attempt),
            None => policy.retry.run(attempt),
        };
        let us = started.elapsed().as_micros() as u64;

        // A call that outlived its budget is a deadline violation even if
        // a late reply eventually arrived; count it so dashboards see the
        // breach, and let the observer feed the true latency to the
        // monitor (which fires the adaptation ladder).
        if let Some(budget) = policy.deadline {
            if started.elapsed() >= budget {
                self.incr("resilience.deadline.exceeded");
                annotate_span("resilience.deadline_exceeded", us);
                if let Some(f) = &self.flight {
                    f.record_detail(
                        FlightEventKind::DeadlineExceeded,
                        "resilience",
                        None,
                        format!("{operation}: {us}us > {budget:?}"),
                    );
                    f.dump("deadline-exceeded");
                }
            }
        }

        match &result {
            Ok(value) => {
                if let Some(t) = self.breaker.on_success() {
                    self.note_transition(t);
                }
                self.last_good.lock().insert(operation.clone(), value.clone());
                self.observe(&operation, us, true);
            }
            Err(_) => {
                if let Some(t) = self.breaker.on_failure() {
                    self.note_transition(t);
                }
                self.observe(&operation, us, false);
            }
        }
        result
    }

    fn qos_op(&self, op: &str, _args: &[Any]) -> Result<Any, OrbError> {
        match op {
            "circuit_state" => Ok(Any::Str(self.breaker.state().name().to_string())),
            "fail_static" => Ok(Any::Bool(self.is_fail_static())),
            other => Err(OrbError::BadOperation(format!(
                "resilience mediator has no QoS operation `{other}`"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mediator::ClientStub;
    use netsim::Network;
    use orb::{Orb, Servant};
    use parking_lot::Mutex;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Arc;

    fn cfg(consecutive: u32, cooldown: Duration) -> BreakerConfig {
        BreakerConfig { consecutive_failures: consecutive, cooldown, ..Default::default() }
    }

    #[test]
    fn breaker_opens_on_consecutive_failures_and_recovers() {
        let b = CircuitBreaker::new(cfg(3, Duration::from_millis(1)));
        assert_eq!(b.state(), CircuitState::Closed);
        assert!(b.on_failure().is_none());
        assert!(b.on_failure().is_none());
        assert_eq!(b.on_failure(), Some((CircuitState::Closed, CircuitState::Open)));
        assert_eq!(b.admit(), Err(())); // still cooling
        std::thread::sleep(Duration::from_millis(2));
        assert_eq!(b.admit(), Ok(Some((CircuitState::Open, CircuitState::HalfOpen))));
        assert_eq!(b.on_success(), Some((CircuitState::HalfOpen, CircuitState::Closed)));
        assert_eq!(b.state(), CircuitState::Closed);
    }

    /// Half-open edge case, stressed with real threads: probes racing a
    /// failure settle in exactly one of {open, closed} — the breaker
    /// must never be left half-open once every admitted probe has
    /// recorded its outcome, and every emitted transition chain must be
    /// contiguous. (The exhaustive-schedule version of this property is
    /// the conccheck model in `orb/tests/loom_models.rs`.)
    #[test]
    fn half_open_probe_race_settles_in_open_or_closed() {
        for round in 0..50 {
            let b = Arc::new(CircuitBreaker::new(BreakerConfig {
                consecutive_failures: 1,
                cooldown: Duration::ZERO,
                half_open_successes: 1,
                ..Default::default()
            }));
            assert_eq!(b.on_failure(), Some((CircuitState::Closed, CircuitState::Open)));
            let transitions: Arc<Mutex<Vec<Transition>>> = Arc::new(Mutex::new(Vec::new()));
            let barrier = Arc::new(std::sync::Barrier::new(8));
            let handles: Vec<_> = (0..8)
                .map(|i| {
                    let (b, transitions, barrier) =
                        (Arc::clone(&b), Arc::clone(&transitions), Arc::clone(&barrier));
                    std::thread::spawn(move || {
                        barrier.wait();
                        let mut log = Vec::new();
                        if let Ok(t) = b.admit() {
                            log.extend(t);
                            // Even probes succeed, odd probes fail.
                            let t = if i % 2 == 0 { b.on_success() } else { b.on_failure() };
                            log.extend(t);
                        }
                        transitions.lock().extend(log);
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            let settled = b.state();
            assert!(
                matches!(settled, CircuitState::Open | CircuitState::Closed),
                "round {round}: breaker left {settled:?} after all probes settled"
            );
            // Threads log transitions after the fact, so their *order*
            // is not trustworthy here (the exhaustive chain check is the
            // conccheck model) — but the multiset must flow-balance: the
            // breaker walked some path from Open to `settled`, so every
            // entry into HalfOpen/Closed is matched by an exit or by the
            // path ending there.
            let log: Vec<Transition> = transitions.lock().clone();
            let count = |from: CircuitState, to: CircuitState| {
                log.iter().filter(|t| **t == (from, to)).count()
            };
            let flips = count(CircuitState::Open, CircuitState::HalfOpen);
            let reopens = count(CircuitState::HalfOpen, CircuitState::Open);
            let closes = count(CircuitState::HalfOpen, CircuitState::Closed);
            let retrips = count(CircuitState::Closed, CircuitState::Open);
            assert_eq!(log.len(), flips + reopens + closes + retrips, "round {round}: {log:?}");
            assert_eq!(flips, reopens + closes, "round {round}: {log:?}");
            assert_eq!(
                closes,
                retrips + usize::from(settled == CircuitState::Closed),
                "round {round}: {log:?}"
            );
            // Whatever the race produced, one clean probe closes it.
            if settled == CircuitState::Open {
                assert_eq!(b.admit(), Ok(Some((CircuitState::Open, CircuitState::HalfOpen))));
                assert_eq!(b.on_success(), Some((CircuitState::HalfOpen, CircuitState::Closed)));
            }
            assert_eq!(b.state(), CircuitState::Closed);
        }
    }

    #[test]
    fn breaker_failed_trial_reopens() {
        let b = CircuitBreaker::new(cfg(1, Duration::from_millis(1)));
        assert_eq!(b.on_failure(), Some((CircuitState::Closed, CircuitState::Open)));
        std::thread::sleep(Duration::from_millis(2));
        assert!(b.admit().is_ok());
        assert_eq!(b.on_failure(), Some((CircuitState::HalfOpen, CircuitState::Open)));
        assert_eq!(b.state(), CircuitState::Open);
    }

    #[test]
    fn breaker_opens_on_failure_rate() {
        let b = CircuitBreaker::new(BreakerConfig {
            consecutive_failures: u32::MAX, // streak path disabled
            failure_rate: 0.5,
            min_calls: 4,
            window: 8,
            ..Default::default()
        });
        // Alternate: 2 ok, 2 fail in window of 4 → 50 % ≥ threshold.
        b.on_success();
        assert!(b.on_failure().is_none()); // 1/2, under min_calls
        b.on_success();
        assert_eq!(b.on_failure(), Some((CircuitState::Closed, CircuitState::Open)));
    }

    #[test]
    fn success_interrupts_the_streak() {
        let b = CircuitBreaker::new(cfg(3, Duration::from_millis(1)));
        b.on_failure();
        b.on_failure();
        b.on_success();
        assert!(b.on_failure().is_none(), "streak restarted after success");
    }

    #[test]
    fn deadline_from_params_parses_numbers_only() {
        let params = vec![
            ("deadline_ms".to_string(), Any::ULongLong(250)),
            ("other".to_string(), Any::Str("x".into())),
        ];
        assert_eq!(deadline_from_params(&params), Some(Duration::from_millis(250)));
        let dbl = vec![("deadline_ms".to_string(), Any::Double(1.5))];
        assert_eq!(deadline_from_params(&dbl), Some(Duration::from_micros(1500)));
        let bad = vec![("deadline_ms".to_string(), Any::Str("soon".into()))];
        assert_eq!(deadline_from_params(&bad), None);
        assert_eq!(deadline_from_params(&[]), None);
    }

    struct Flaky {
        failures_left: Arc<AtomicU32>,
    }
    impl Servant for Flaky {
        fn interface_id(&self) -> &str {
            "IDL:Flaky:1.0"
        }
        fn dispatch(&self, op: &str, args: &[Any]) -> Result<Any, OrbError> {
            match op {
                "get" => {
                    if self
                        .failures_left
                        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| v.checked_sub(1))
                        .is_ok()
                    {
                        Err(OrbError::Transient("blip".to_string()))
                    } else {
                        Ok(args.first().cloned().unwrap_or(Any::Long(7)))
                    }
                }
                _ => Err(OrbError::BadOperation(op.to_string())),
            }
        }
    }

    fn flaky_setup(failures: u32) -> (Orb, Orb, ClientStub) {
        let net = Network::new(1);
        let server = Orb::start(&net, "server");
        let client = Orb::start(&net, "client");
        let ior =
            server.activate("f", Box::new(Flaky { failures_left: Arc::new(AtomicU32::new(failures)) }));
        let stub = ClientStub::new(client.clone(), ior);
        (server, client, stub)
    }

    fn immediate_policy(attempts: u32, breaker: BreakerConfig) -> ResiliencePolicy {
        ResiliencePolicy {
            deadline: Some(Duration::from_secs(2)),
            retry: RetryPolicy::immediate(attempts),
            breaker,
        }
    }

    #[test]
    fn retries_inside_budget_and_reports_success() {
        let (server, client, stub) = flaky_setup(2);
        let med = Arc::new(
            ResilienceMediator::new(immediate_policy(5, BreakerConfig::default()))
                .with_metrics(client.metrics().clone()),
        );
        stub.push_mediator_front(med.clone());
        let reply = stub.invoke("get", &[Any::Long(1)]).unwrap();
        assert_eq!(reply, Any::Long(1));
        assert_eq!(med.circuit_state(), CircuitState::Closed);
        let snap = client.metrics().snapshot();
        assert_eq!(snap.counter("resilience.attempts"), 3, "two transient failures retried");
        server.shutdown();
        client.shutdown();
    }

    #[test]
    fn circuit_opens_after_failures_and_rejects_locally() {
        let (server, client, stub) = flaky_setup(u32::MAX);
        let med = Arc::new(
            ResilienceMediator::new(immediate_policy(1, cfg(2, Duration::from_secs(60))))
                .with_metrics(client.metrics().clone()),
        );
        stub.push_mediator_front(med.clone());
        assert!(stub.invoke("get", &[]).is_err());
        assert!(stub.invoke("get", &[]).is_err());
        assert_eq!(med.circuit_state(), CircuitState::Open);
        // Third call never reaches the wire.
        let sent_before = client.metrics().snapshot().counter("orb.requests_sent");
        let err = stub.invoke("get", &[]).unwrap_err();
        assert!(matches!(err, OrbError::CircuitOpen(_)), "{err}");
        assert_eq!(client.metrics().snapshot().counter("orb.requests_sent"), sent_before);
        let snap = client.metrics().snapshot();
        assert_eq!(snap.counter("resilience.circuit.open"), 1);
        assert_eq!(snap.counter("resilience.circuit.rejected"), 1);
        server.shutdown();
        client.shutdown();
    }

    #[test]
    fn half_open_probe_closes_circuit_and_is_traced() {
        let (server, client, stub) = flaky_setup(2);
        let med = Arc::new(
            ResilienceMediator::new(immediate_policy(1, cfg(2, Duration::from_millis(1))))
                .with_metrics(client.metrics().clone()),
        );
        stub.push_mediator_front(med.clone());
        assert!(stub.invoke("get", &[]).is_err());
        assert!(stub.invoke("get", &[]).is_err());
        assert_eq!(med.circuit_state(), CircuitState::Open);
        std::thread::sleep(Duration::from_millis(5));
        // Cooldown elapsed: the next call is the HalfOpen trial; the
        // servant is healthy again, so the circuit closes.
        let reply = stub.invoke("get", &[Any::Long(9)]).unwrap();
        assert_eq!(reply, Any::Long(9));
        assert_eq!(med.circuit_state(), CircuitState::Closed);
        let trace = reply.trace.as_ref().unwrap();
        assert!(
            trace.span("resilience.circuit:open->half_open").is_some(),
            "transition span missing: {trace:?}"
        );
        assert!(trace.span("resilience.circuit:half_open->closed").is_some());
        let snap = client.metrics().snapshot();
        assert_eq!(snap.counter("resilience.circuit.half_open"), 1);
        assert_eq!(snap.counter("resilience.circuit.closed"), 1);
        server.shutdown();
        client.shutdown();
    }

    #[test]
    fn deadline_budget_stops_retries() {
        let (server, client, stub) = flaky_setup(u32::MAX);
        let policy = ResiliencePolicy {
            deadline: Some(Duration::from_millis(20)),
            retry: RetryPolicy {
                max_attempts: 50,
                initial_backoff: Duration::from_millis(15),
                backoff_factor: 1,
                max_backoff: Duration::from_millis(15),
            },
            breaker: BreakerConfig::default(),
        };
        let med =
            Arc::new(ResilienceMediator::new(policy).with_metrics(client.metrics().clone()));
        stub.push_mediator_front(med);
        let started = Instant::now();
        assert!(stub.invoke("get", &[]).is_err());
        // 50 attempts × 15 ms backoff would be 735 ms; the budget caps it.
        assert!(started.elapsed() < Duration::from_millis(200));
        let snap = client.metrics().snapshot();
        assert!(snap.counter("resilience.attempts") <= 3);
        server.shutdown();
        client.shutdown();
    }

    #[test]
    fn target_override_rebinds_and_closes_breaker() {
        let net = Network::new(1);
        let s1 = Orb::start(&net, "s1");
        let s2 = Orb::start(&net, "s2");
        let client = Orb::start(&net, "client");
        struct Fixed(&'static str);
        impl Servant for Fixed {
            fn interface_id(&self) -> &str {
                "IDL:Fixed:1.0"
            }
            fn dispatch(&self, _op: &str, _args: &[Any]) -> Result<Any, OrbError> {
                Ok(Any::Str(self.0.to_string()))
            }
        }
        let ior1 = s1.activate("f", Box::new(Fixed("one")));
        let ior2 = s2.activate("f", Box::new(Fixed("two")));
        let stub = ClientStub::new(client.clone(), ior1);
        let med = Arc::new(ResilienceMediator::new(immediate_policy(1, cfg(1, Duration::ZERO))));
        stub.push_mediator_front(med.clone());
        assert_eq!(stub.invoke("get", &[]).unwrap(), Any::Str("one".into()));
        med.breaker.on_failure(); // simulate a tripped breaker
        assert_eq!(med.circuit_state(), CircuitState::Open);
        med.set_target_override(Some(ior2));
        assert_eq!(med.circuit_state(), CircuitState::Closed, "rebind closes the breaker");
        assert_eq!(stub.invoke("get", &[]).unwrap(), Any::Str("two".into()));
        s1.shutdown();
        s2.shutdown();
        client.shutdown();
    }

    #[test]
    fn fail_static_serves_cached_reads_and_rejects_writes() {
        let (server, client, stub) = flaky_setup(0);
        let med = Arc::new(
            ResilienceMediator::new(immediate_policy(1, BreakerConfig::default()))
                .with_metrics(client.metrics().clone()),
        );
        stub.push_mediator_front(med.clone());
        assert_eq!(stub.invoke("get", &[Any::Long(3)]).unwrap(), Any::Long(3));
        med.enter_fail_static(FailStaticMode::reads(["get"]));
        // Reads come from the last-known-good cache, even with the server gone.
        server.shutdown();
        assert_eq!(stub.invoke("get", &[Any::Long(99)]).unwrap(), Any::Long(3));
        // Writes (non-read ops) are rejected with a typed error.
        let err = stub.invoke("put", &[Any::Long(1)]).unwrap_err();
        assert!(matches!(err, OrbError::QosViolation(_)), "{err}");
        let snap = client.metrics().snapshot();
        assert_eq!(snap.counter("resilience.fail_static.served"), 1);
        assert_eq!(snap.counter("resilience.fail_static.rejected"), 1);
        med.exit_fail_static();
        assert!(!med.is_fail_static());
        client.shutdown();
    }

    #[test]
    fn observer_sees_every_outcome() {
        let (server, client, stub) = flaky_setup(0);
        let med = Arc::new(ResilienceMediator::new(immediate_policy(1, BreakerConfig::default())));
        let seen: Arc<Mutex<Vec<(String, bool)>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = seen.clone();
        med.set_observer(Some(Arc::new(move |op: &str, _us: u64, ok: bool| {
            sink.lock().push((op.to_string(), ok));
        })));
        stub.push_mediator_front(med);
        stub.invoke("get", &[Any::Long(1)]).unwrap();
        let _ = stub.invoke("nope", &[]);
        let seen = seen.lock().clone();
        assert_eq!(seen, vec![("get".to_string(), true), ("nope".to_string(), false)]);
        server.shutdown();
        client.shutdown();
    }

    #[test]
    fn qos_ops_report_state() {
        let med = ResilienceMediator::new(ResiliencePolicy::default());
        assert_eq!(med.qos_op("circuit_state", &[]).unwrap(), Any::Str("closed".into()));
        assert_eq!(med.qos_op("fail_static", &[]).unwrap(), Any::Bool(false));
        assert!(med.qos_op("bogus", &[]).is_err());
    }
}
