//! Client-side weaving: stubs with mediator delegation.

use orb::sync::{LockRank, OrderedMutex, OrderedRwLock};
use crate::reply::Reply;
use orb::giop::QosContext;
use orb::{Any, Ior, Orb, OrbError, TraceContext};
use std::cell::RefCell;
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

thread_local! {
    /// Extra spans mediators want on the *current* invocation's trace
    /// (e.g. the resilience mediator marking a circuit transition).
    /// Drained by the chain after each mediator returns.
    static ANNOTATIONS: RefCell<Vec<(String, u64)>> = const { RefCell::new(Vec::new()) };
}

/// Record an extra span on the trace of the mediator-chain invocation
/// currently running on this thread. Outside a chain this is a no-op
/// buffer that the next invocation drains, so only call it from inside
/// [`Mediator::around`].
pub fn annotate_span(layer: impl Into<String>, dur_us: u64) {
    ANNOTATIONS.with(|a| a.borrow_mut().push((layer.into(), dur_us)));
}

/// One intercepted invocation travelling down the mediator chain.
///
/// Mediators may rewrite any part of it: the load-balancing mediator
/// replaces `target`, the replication mediator clones it per replica, a
/// caching mediator may answer without ever reaching the innermost
/// invoker.
#[derive(Debug, Clone)]
pub struct Call {
    /// The invocation target (possibly rewritten along the chain).
    pub target: Ior,
    /// Operation name.
    pub operation: String,
    /// Arguments.
    pub args: Vec<Any>,
    /// Negotiated-QoS annotation to put on the wire, if any.
    pub qos: Option<QosContext>,
}

/// Continuation invoking the rest of the chain (ending at the ORB).
pub type Next<'a> = &'a dyn Fn(Call) -> Result<Any, OrbError>;

/// A client-side QoS mediator (§3.3).
///
/// "For each QoS characteristic a mediator is generated": the QIDL
/// compiler emits a skeleton, the QoS implementor fills it in, and at
/// runtime the mediator of the *negotiated* characteristic is installed
/// in the stub as a delegate.
pub trait Mediator: Send + Sync {
    /// Name of the QoS characteristic this mediator implements.
    fn characteristic(&self) -> &str;

    /// Intercept an invocation. Call `next(call)` to continue the chain;
    /// not calling it short-circuits (e.g. a cache hit).
    ///
    /// # Errors
    ///
    /// Either the propagated downstream error or a mediator-specific one.
    fn around(&self, call: Call, next: Next<'_>) -> Result<Any, OrbError>;

    /// Client-side QoS operations (the management part of the QoS
    /// responsibility that is sensible on the client, e.g. reading
    /// mediator statistics or re-tuning it).
    ///
    /// # Errors
    ///
    /// [`OrbError::BadOperation`] by default.
    fn qos_op(&self, op: &str, args: &[Any]) -> Result<Any, OrbError> {
        let _ = args;
        Err(OrbError::BadOperation(format!(
            "{} mediator has no QoS operation `{op}`",
            self.characteristic()
        )))
    }
}

struct StubState {
    mediators: Vec<Arc<dyn Mediator>>,
    qos: Option<QosContext>,
}

/// Per-invocation observability state threaded down the mediator chain.
/// Mediator spans are *inclusive* (each covers its whole `around` call,
/// downstream included), matching the nesting the chain actually has.
struct ChainObs {
    trace: OrderedMutex<Option<TraceContext>>,
    timings: OrderedMutex<Vec<(String, u64)>>,
    annotations: OrderedMutex<Vec<(String, u64)>>,
}

/// A client stub extended with a mediator delegate (the client half of
/// Fig. 2).
///
/// Generated typed stubs wrap one of these; dynamic callers use it
/// directly. Cloning shares the stub (and its installed mediators).
#[derive(Clone)]
pub struct ClientStub {
    orb: Orb,
    target: Ior,
    state: Arc<OrderedRwLock<StubState>>,
}

impl fmt::Debug for ClientStub {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let st = self.state.read();
        f.debug_struct("ClientStub")
            .field("target", &self.target)
            .field(
                "mediators",
                &st.mediators.iter().map(|m| m.characteristic().to_string()).collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl ClientStub {
    /// A stub for `target`, with no mediators installed.
    pub fn new(orb: Orb, target: Ior) -> ClientStub {
        ClientStub {
            orb,
            target,
            state: Arc::new(OrderedRwLock::new(
                LockRank::StubState,
                StubState { mediators: Vec::new(), qos: None },
            )),
        }
    }

    /// The stub's target reference.
    pub fn target(&self) -> &Ior {
        &self.target
    }

    /// The ORB this stub invokes through.
    pub fn orb(&self) -> &Orb {
        &self.orb
    }

    /// Install `mediator` as the sole delegate, replacing any others —
    /// the paper's "exchange the delegate at runtime".
    pub fn set_mediator(&self, mediator: Arc<dyn Mediator>) {
        self.state.write().mediators = vec![mediator];
    }

    /// Push an additional mediator onto the chain (outermost first); used
    /// to stack characteristics, e.g. compression over encryption.
    pub fn push_mediator(&self, mediator: Arc<dyn Mediator>) {
        self.state.write().mediators.push(mediator);
    }

    /// Install `mediator` as the new *outermost* link of the chain; used
    /// by the resilience layer so its deadline budget and circuit breaker
    /// wrap every mediator beneath (replication retries included).
    pub fn push_mediator_front(&self, mediator: Arc<dyn Mediator>) {
        self.state.write().mediators.insert(0, mediator);
    }

    /// Remove all mediators (back to a plain CORBA stub).
    pub fn clear_mediators(&self) {
        self.state.write().mediators.clear();
    }

    /// Names of the installed mediators, outermost first.
    pub fn mediator_chain(&self) -> Vec<String> {
        self.state.read().mediators.iter().map(|m| m.characteristic().to_string()).collect()
    }

    /// Set the negotiated-QoS context attached to every subsequent call.
    pub fn set_qos_context(&self, qos: Option<QosContext>) {
        self.state.write().qos = qos;
    }

    /// Apply an established [`crate::QosBinding`]: every subsequent call
    /// carries its wire context (characteristic + agreed parameters).
    pub fn apply_binding(&self, binding: &crate::QosBinding) {
        self.set_qos_context(Some(binding.to_context()));
    }

    /// Invoke `op(args)` through the mediator chain.
    ///
    /// Sampled calls are traced: a fresh [`TraceContext`] is minted at
    /// the stub, travels with the request through every layer it crosses
    /// (mediators, ORB, wire, adapter, woven skeleton, servant) and comes
    /// back in the [`Reply`], together with the QoS characteristic the
    /// call was made under. Whether a call is sampled is the ORB's
    /// decision ([`orb::OrbConfig::trace_sample_every`], default: every
    /// call); unsampled calls run the same chain with no observer — no
    /// context is minted or decoded anywhere downstream — and return
    /// `Reply.trace = None`. Metrics are recorded either way. The reply
    /// derefs to its [`Any`] value, so value-only callers are unaffected.
    ///
    /// # Errors
    ///
    /// Whatever the mediators or the underlying ORB invocation produce.
    pub fn invoke(&self, op: &str, args: &[Any]) -> Result<Reply, OrbError> {
        let (mediators, qos) = {
            let st = self.state.read();
            (st.mediators.clone(), st.qos.clone())
        };
        let qos_tag = qos.as_ref().map(|q| q.characteristic.clone());
        let call = Call {
            target: self.target.clone(),
            operation: op.to_string(),
            args: args.to_vec(),
            qos,
        };
        if !self.orb.trace_sampled() {
            let value = self.run_chain(&mediators, 0, call, None)?;
            return Ok(Reply { value, trace: None, qos_tag });
        }
        // The innermost chain link stashes the round-tripped trace here;
        // mediator timings accumulate innermost-first as the chain unwinds.
        let obs = ChainObs {
            trace: OrderedMutex::new(LockRank::ChainObs, None),
            timings: OrderedMutex::new(LockRank::ChainObs, Vec::new()),
            annotations: OrderedMutex::new(LockRank::ChainObs, Vec::new()),
        };
        let started = Instant::now();
        let value = self.run_chain(&mediators, 0, call, Some(&obs))?;
        let stub_us = started.elapsed().as_micros() as u64;

        let node = self.orb.name().to_string();
        let mut trace = obs
            .trace
            .into_inner()
            .unwrap_or_else(|| TraceContext::new(self.orb.node()));
        for (characteristic, dur_us) in obs.timings.into_inner().into_iter().rev() {
            trace.push(format!("mediator:{characteristic}"), node.clone(), dur_us);
        }
        for (layer, dur_us) in obs.annotations.into_inner() {
            trace.push(layer, node.clone(), dur_us);
        }
        trace.push("stub", node, stub_us);
        Ok(Reply { value, trace: Some(trace), qos_tag })
    }

    /// Issue `op(args)` without blocking for the reply: GIOP pipelining
    /// through the stub.
    ///
    /// The call carries the stub's negotiated QoS context (so it travels
    /// the same QoS-module path as [`ClientStub::invoke`]) but *skips the
    /// mediator chain*: mediators are synchronous around-advice — they
    /// expect to observe the reply on the way out — and cannot wrap a
    /// call whose reply is harvested later on whichever thread calls
    /// [`orb::PendingCall::wait`]. Callers that need per-call mediation
    /// (retry budgets, circuit breakers, replication) should keep using
    /// the synchronous path; pipelining is for saturating the wire with
    /// independent calls from one thread.
    ///
    /// # Errors
    ///
    /// Local send errors only; remote failures and timeouts surface at
    /// [`orb::PendingCall::wait`].
    pub fn invoke_async(&self, op: &str, args: &[Any]) -> Result<orb::PendingCall, OrbError> {
        let qos = self.state.read().qos.clone();
        self.orb.invoke_async(&self.target, op, args, qos)
    }

    fn run_chain(
        &self,
        mediators: &[Arc<dyn Mediator>],
        index: usize,
        call: Call,
        obs: Option<&ChainObs>,
    ) -> Result<Any, OrbError> {
        match (mediators.get(index), obs) {
            (None, None) => {
                self.orb.invoke_qos(&call.target, &call.operation, &call.args, call.qos)
            }
            (None, Some(o)) => {
                let ctx = TraceContext::new(self.orb.node());
                let (value, trace) = self.orb.invoke_traced(
                    &call.target,
                    &call.operation,
                    &call.args,
                    call.qos,
                    Some(ctx),
                )?;
                *o.trace.lock() = trace;
                Ok(value)
            }
            (Some(m), _) => {
                let started = Instant::now();
                let next = |c: Call| self.run_chain(mediators, index + 1, c, obs);
                let result = m.around(call, &next);
                if let Some(o) = obs {
                    let dur_us = started.elapsed().as_micros() as u64;
                    o.timings.lock().push((m.characteristic().to_string(), dur_us));
                    let mut extra = ANNOTATIONS.with(|a| std::mem::take(&mut *a.borrow_mut()));
                    if !extra.is_empty() {
                        o.annotations.lock().append(&mut extra);
                    }
                }
                result
            }
        }
    }

    /// Invoke a QoS operation on the installed mediator of
    /// `characteristic` (client-side management).
    ///
    /// # Errors
    ///
    /// [`OrbError::QosNotNegotiated`] if no mediator of that
    /// characteristic is installed; otherwise the mediator's error.
    pub fn qos_op(&self, characteristic: &str, op: &str, args: &[Any]) -> Result<Any, OrbError> {
        let mediator = self
            .state
            .read()
            .mediators
            .iter()
            .find(|m| m.characteristic() == characteristic)
            .cloned();
        match mediator {
            Some(m) => m.qos_op(op, args),
            None => Err(OrbError::QosNotNegotiated(format!(
                "no `{characteristic}` mediator installed"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::Network;
    use orb::Servant;
    use std::sync::atomic::{AtomicU64, Ordering};

    struct Echo;
    impl Servant for Echo {
        fn interface_id(&self) -> &str {
            "IDL:Echo:1.0"
        }
        fn dispatch(&self, op: &str, args: &[Any]) -> Result<Any, OrbError> {
            match op {
                "echo" => Ok(args.first().cloned().unwrap_or(Any::Void)),
                _ => Err(OrbError::BadOperation(op.to_string())),
            }
        }
    }

    fn setup() -> (Orb, Orb, ClientStub) {
        let net = Network::new(1);
        let server = Orb::start(&net, "server");
        let client = Orb::start(&net, "client");
        let ior = server.activate("echo", Box::new(Echo));
        let stub = ClientStub::new(client.clone(), ior);
        (server, client, stub)
    }

    /// Tags results so chain order is observable.
    struct Tag(&'static str);
    impl Mediator for Tag {
        fn characteristic(&self) -> &str {
            self.0
        }
        fn around(&self, call: Call, next: Next<'_>) -> Result<Any, OrbError> {
            let r = next(call)?;
            Ok(Any::Str(format!("{}({})", self.0, r.as_str().unwrap_or("?"))))
        }
        fn qos_op(&self, op: &str, _args: &[Any]) -> Result<Any, OrbError> {
            match op {
                "name" => Ok(Any::Str(self.0.to_string())),
                other => Err(OrbError::BadOperation(other.to_string())),
            }
        }
    }

    #[test]
    fn plain_stub_passes_through() {
        let (server, client, stub) = setup();
        assert_eq!(stub.invoke("echo", &[Any::from("x")]).unwrap(), Any::Str("x".into()));
        server.shutdown();
        client.shutdown();
    }

    #[test]
    fn stub_pipelines_calls() {
        let (server, client, stub) = setup();
        let pending: Vec<_> = (0..8)
            .map(|i| stub.invoke_async("echo", &[Any::Long(i)]).unwrap())
            .collect();
        for (i, call) in pending.into_iter().enumerate() {
            assert_eq!(call.wait().unwrap(), Any::Long(i as i32));
        }
        server.shutdown();
        client.shutdown();
    }

    #[test]
    fn mediator_intercepts_each_call() {
        let (server, client, stub) = setup();
        struct Count(AtomicU64);
        impl Mediator for Count {
            fn characteristic(&self) -> &str {
                "count"
            }
            fn around(&self, call: Call, next: Next<'_>) -> Result<Any, OrbError> {
                self.0.fetch_add(1, Ordering::Relaxed);
                next(call)
            }
        }
        let c = Arc::new(Count(AtomicU64::new(0)));
        stub.set_mediator(c.clone());
        for _ in 0..3 {
            stub.invoke("echo", &[Any::from("x")]).unwrap();
        }
        assert_eq!(c.0.load(Ordering::Relaxed), 3);
        server.shutdown();
        client.shutdown();
    }

    #[test]
    fn chain_runs_outermost_first() {
        let (server, client, stub) = setup();
        stub.push_mediator(Arc::new(Tag("outer")));
        stub.push_mediator(Arc::new(Tag("inner")));
        let r = stub.invoke("echo", &[Any::from("x")]).unwrap();
        // outer wraps inner's result.
        assert_eq!(r, Any::Str("outer(inner(x))".into()));
        assert_eq!(stub.mediator_chain(), vec!["outer", "inner"]);
        server.shutdown();
        client.shutdown();
    }

    #[test]
    fn set_mediator_replaces_and_clear_removes() {
        let (server, client, stub) = setup();
        stub.push_mediator(Arc::new(Tag("a")));
        stub.set_mediator(Arc::new(Tag("b")));
        assert_eq!(stub.mediator_chain(), vec!["b"]);
        stub.clear_mediators();
        assert!(stub.mediator_chain().is_empty());
        assert_eq!(stub.invoke("echo", &[Any::from("x")]).unwrap(), Any::Str("x".into()));
        server.shutdown();
        client.shutdown();
    }

    #[test]
    fn mediator_can_short_circuit() {
        let (server, client, stub) = setup();
        struct Cache;
        impl Mediator for Cache {
            fn characteristic(&self) -> &str {
                "cache"
            }
            fn around(&self, _call: Call, _next: Next<'_>) -> Result<Any, OrbError> {
                Ok(Any::Str("cached".into()))
            }
        }
        stub.set_mediator(Arc::new(Cache));
        assert_eq!(stub.invoke("echo", &[Any::from("x")]).unwrap(), Any::Str("cached".into()));
        // Server never saw the request.
        assert_eq!(server.stats().requests_handled, 0);
        server.shutdown();
        client.shutdown();
    }

    #[test]
    fn qos_op_routed_to_matching_mediator() {
        let (server, client, stub) = setup();
        stub.push_mediator(Arc::new(Tag("enc")));
        assert_eq!(stub.qos_op("enc", "name", &[]).unwrap(), Any::Str("enc".into()));
        assert!(matches!(
            stub.qos_op("missing", "name", &[]),
            Err(OrbError::QosNotNegotiated(_))
        ));
        assert!(matches!(stub.qos_op("enc", "bogus", &[]), Err(OrbError::BadOperation(_))));
        server.shutdown();
        client.shutdown();
    }

    #[test]
    fn default_qos_op_is_bad_operation() {
        struct Plain;
        impl Mediator for Plain {
            fn characteristic(&self) -> &str {
                "plain"
            }
            fn around(&self, call: Call, next: Next<'_>) -> Result<Any, OrbError> {
                next(call)
            }
        }
        assert!(matches!(Plain.qos_op("x", &[]), Err(OrbError::BadOperation(_))));
    }

    #[test]
    fn invoke_returns_traced_reply_with_mediator_spans() {
        let (server, client, stub) = setup();
        stub.push_mediator(Arc::new(Tag("outer")));
        stub.push_mediator(Arc::new(Tag("inner")));
        let reply = stub.invoke("echo", &[Any::from("x")]).unwrap();
        assert_eq!(reply, Any::Str("outer(inner(x))".into()));
        let trace = reply.trace.as_ref().expect("stub calls are traced");
        // Client-side spans minted by the stub.
        assert!(trace.span("stub").is_some());
        assert!(trace.span("mediator:outer").is_some());
        assert!(trace.span("mediator:inner").is_some());
        // Remote layers round-tripped through the wire context slot.
        for layer in ["orb.client", "wire", "orb.server", "adapter", "wire.reply"] {
            assert!(trace.span(layer).is_some(), "missing `{layer}` span: {trace:?}");
        }
        // Mediator spans come back outermost-first, before the stub span.
        let names: Vec<&str> = trace.spans.iter().map(|s| s.layer.as_str()).collect();
        let outer_at = names.iter().position(|n| *n == "mediator:outer").unwrap();
        let inner_at = names.iter().position(|n| *n == "mediator:inner").unwrap();
        let stub_at = names.iter().position(|n| *n == "stub").unwrap();
        assert!(outer_at < inner_at || outer_at < stub_at);
        assert!(stub_at > inner_at);
        server.shutdown();
        client.shutdown();
    }

    #[test]
    fn unsampled_calls_skip_tracing_but_not_metrics() {
        let net = Network::new(1);
        let server = Orb::start(&net, "server");
        let client = Orb::start_with(
            &net,
            "client",
            orb::OrbConfig { trace_sample_every: 2, ..orb::OrbConfig::default() },
        );
        let ior = server.activate("echo", Box::new(Echo));
        let stub = ClientStub::new(client.clone(), ior);
        let traced = (0..6)
            .map(|i| {
                let reply = stub.invoke("echo", &[Any::Long(i)]).unwrap();
                assert_eq!(*reply, Any::Long(i), "value is identical either way");
                reply.trace.is_some()
            })
            .filter(|t| *t)
            .count();
        assert_eq!(traced, 3, "period 2 traces half the calls");
        // Metrics are unconditional: every call counted.
        assert_eq!(client.metrics().snapshot().counter("orb.requests_sent"), 6);
        assert_eq!(server.metrics().snapshot().counter("orb.requests_handled"), 6);
        server.shutdown();
        client.shutdown();
    }

    #[test]
    fn reply_carries_qos_tag_from_context() {
        let (server, client, stub) = setup();
        stub.set_qos_context(Some(QosContext::new("Compression")));
        let reply = stub.invoke("echo", &[Any::from("x")]).unwrap();
        assert_eq!(reply.qos_tag.as_deref(), Some("Compression"));
        stub.set_qos_context(None);
        let reply = stub.invoke("echo", &[Any::from("x")]).unwrap();
        assert_eq!(reply.qos_tag, None);
        server.shutdown();
        client.shutdown();
    }

    #[test]
    fn short_circuited_call_still_yields_a_trace() {
        let (server, client, stub) = setup();
        struct Cache;
        impl Mediator for Cache {
            fn characteristic(&self) -> &str {
                "cache"
            }
            fn around(&self, _call: Call, _next: Next<'_>) -> Result<Any, OrbError> {
                Ok(Any::Str("cached".into()))
            }
        }
        stub.set_mediator(Arc::new(Cache));
        let reply = stub.invoke("echo", &[Any::from("x")]).unwrap();
        let trace = reply.trace.as_ref().unwrap();
        // The ORB was never reached, so only client-side spans exist.
        assert!(trace.span("mediator:cache").is_some());
        assert!(trace.span("stub").is_some());
        assert!(trace.span("wire").is_none());
        server.shutdown();
        client.shutdown();
    }

    #[test]
    fn mediator_can_rewrite_target() {
        let net = Network::new(1);
        let s1 = Orb::start(&net, "s1");
        let s2 = Orb::start(&net, "s2");
        let client = Orb::start(&net, "client");
        struct Fixed(&'static str);
        impl Servant for Fixed {
            fn interface_id(&self) -> &str {
                "IDL:Fixed:1.0"
            }
            fn dispatch(&self, _op: &str, _args: &[Any]) -> Result<Any, OrbError> {
                Ok(Any::Str(self.0.to_string()))
            }
        }
        let ior1 = s1.activate("f", Box::new(Fixed("one")));
        let ior2 = s2.activate("f", Box::new(Fixed("two")));

        struct Redirect(Ior);
        impl Mediator for Redirect {
            fn characteristic(&self) -> &str {
                "redirect"
            }
            fn around(&self, mut call: Call, next: Next<'_>) -> Result<Any, OrbError> {
                call.target = self.0.clone();
                next(call)
            }
        }
        let stub = ClientStub::new(client.clone(), ior1);
        stub.set_mediator(Arc::new(Redirect(ior2)));
        assert_eq!(stub.invoke("get", &[]).unwrap(), Any::Str("two".into()));
        s1.shutdown();
        s2.shutdown();
        client.shutdown();
    }
}
