//! Server-side weaving: the Fig. 2 mapping.
//!
//! The paper's server-side QIDL mapping makes the servant inherit from
//! the server skeleton *and* the skeletons of every assigned QoS
//! characteristic, with a delegate to the implementation of the actually
//! negotiated one. In Rust the same shape is composition:
//! [`WovenServant`] wraps the application servant, consults the interface
//! repository to classify incoming operations, routes QoS operations to
//! the *negotiated* [`QosImplementation`] (raising
//! [`OrbError::QosNotNegotiated`] for assigned-but-inactive ones), and
//! brackets application operations with the active implementation's
//! prolog and epilog.

use orb::sync::{LockRank, OrderedRwLock};
use orb::{trace, Any, OrbError, Servant};
use qidl::repo::{InterfaceRepository, OpOrigin};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

/// Callback invoked after every *application* request the woven skeleton
/// handles: `(operation, total_duration_us, succeeded)`. The duration
/// covers prolog + servant + epilog. Installed by the deployment layer
/// to feed QoS monitoring without this crate depending on it.
pub type RequestObserver = Arc<dyn Fn(&str, u64, bool) + Send + Sync>;

/// A server-side QoS implementation (the "QoS-Impl." box of Fig. 2).
///
/// One exists per QoS characteristic a server supports; the QIDL
/// compiler generates its skeleton, the QoS implementor fills it in.
pub trait QosImplementation: Send + Sync {
    /// Name of the implemented QoS characteristic.
    fn characteristic(&self) -> &str;

    /// Called by the woven skeleton *before* each application request.
    ///
    /// # Errors
    ///
    /// Returning an error vetoes the request (e.g. admission control).
    fn prolog(&self, op: &str, args: &[Any]) -> Result<(), OrbError> {
        let (_, _) = (op, args);
        Ok(())
    }

    /// Called *after* each application request, before the reply leaves.
    /// May observe or rewrite the result (e.g. stamp freshness metadata).
    fn epilog(&self, op: &str, args: &[Any], result: &mut Result<Any, OrbError>) {
        let (_, _, _) = (op, args, result);
    }

    /// Handle a QoS operation of this characteristic. `server` is the
    /// cross-cut interface toward the application object (§3.2 "QoS
    /// aspect integration"), e.g. for `_get_state`/`_set_state`.
    ///
    /// # Errors
    ///
    /// [`OrbError::BadOperation`] for unknown operations.
    fn qos_op(&self, op: &str, args: &[Any], server: &dyn Servant) -> Result<Any, OrbError>;
}

struct WovenState {
    active: Option<Arc<dyn QosImplementation>>,
    installed: HashMap<String, Arc<dyn QosImplementation>>,
    observer: Option<RequestObserver>,
}

/// The woven server skeleton of Fig. 2.
///
/// Implements [`Servant`], so it is activated in the object adapter in
/// place of the application servant it wraps.
pub struct WovenServant {
    inner: Arc<dyn Servant>,
    repo: Arc<InterfaceRepository>,
    interface: String,
    state: OrderedRwLock<WovenState>,
}

impl fmt::Debug for WovenServant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let st = self.state.read();
        f.debug_struct("WovenServant")
            .field("interface", &self.interface)
            .field("active", &st.active.as_ref().map(|a| a.characteristic().to_string()))
            .field("installed", &st.installed.keys().collect::<Vec<_>>())
            .finish()
    }
}

impl WovenServant {
    /// Weave `inner` (implementing QIDL interface `interface`, which must
    /// exist in `repo`) with no QoS implementation active yet.
    ///
    /// # Panics
    ///
    /// Panics if `interface` is not loaded in `repo` — weaving an
    /// undeclared interface is a programming error, not a runtime
    /// condition.
    pub fn new(
        inner: Arc<dyn Servant>,
        repo: Arc<InterfaceRepository>,
        interface: &str,
    ) -> WovenServant {
        assert!(
            repo.interface(interface).is_some(),
            "interface `{interface}` not in repository"
        );
        WovenServant {
            inner,
            repo,
            interface: interface.to_string(),
            state: OrderedRwLock::new(LockRank::WovenState, WovenState {
                active: None,
                installed: HashMap::new(),
                observer: None,
            }),
        }
    }

    /// The QIDL interface name this skeleton serves.
    pub fn interface(&self) -> &str {
        &self.interface
    }

    /// The wrapped application servant.
    pub fn inner(&self) -> &Arc<dyn Servant> {
        &self.inner
    }

    /// Install a QoS implementation, making it selectable by
    /// [`WovenServant::negotiate`].
    ///
    /// # Errors
    ///
    /// [`OrbError::QosViolation`] if the characteristic is not assigned
    /// to the interface in QIDL — runtime weaving cannot widen the
    /// statically declared assignment.
    pub fn install_qos(&self, qos_impl: Arc<dyn QosImplementation>) -> Result<(), OrbError> {
        let name = qos_impl.characteristic().to_string();
        let assigned = self
            .repo
            .interface(&self.interface)
            .is_some_and(|i| i.qos.iter().any(|q| q == &name));
        if !assigned {
            return Err(OrbError::QosViolation(format!(
                "characteristic `{name}` is not assigned to interface `{}`",
                self.interface
            )));
        }
        self.state.write().installed.insert(name, qos_impl);
        Ok(())
    }

    /// Exchange the active delegate for the implementation of
    /// `characteristic` — the outcome of a successful negotiation.
    ///
    /// # Errors
    ///
    /// [`OrbError::QosViolation`] if no such implementation is installed.
    pub fn negotiate(&self, characteristic: &str) -> Result<(), OrbError> {
        let mut st = self.state.write();
        match st.installed.get(characteristic) {
            Some(qi) => {
                st.active = Some(Arc::clone(qi));
                Ok(())
            }
            None => Err(OrbError::QosViolation(format!(
                "no installed implementation for `{characteristic}` on `{}`",
                self.interface
            ))),
        }
    }

    /// Install (or clear) the per-request observer. The deployment layer
    /// uses this to feed measured latencies and availability into QoS
    /// monitoring (§4) from real request traffic.
    pub fn set_request_observer(&self, observer: Option<RequestObserver>) {
        self.state.write().observer = observer;
    }

    /// Drop back to QoS-less operation.
    pub fn release(&self) {
        self.state.write().active = None;
    }

    /// The currently negotiated characteristic, if any.
    pub fn active_characteristic(&self) -> Option<String> {
        self.state.read().active.as_ref().map(|a| a.characteristic().to_string())
    }

    /// Names of installed (selectable) QoS implementations, sorted.
    pub fn installed_characteristics(&self) -> Vec<String> {
        let mut v: Vec<String> = self.state.read().installed.keys().cloned().collect();
        v.sort();
        v
    }
}

impl Servant for WovenServant {
    fn interface_id(&self) -> &str {
        self.inner.interface_id()
    }

    fn dispatch(&self, op: &str, args: &[Any]) -> Result<Any, OrbError> {
        match self.repo.lookup_woven(&self.interface, op) {
            None => Err(OrbError::BadOperation(format!(
                "`{op}` is neither an application nor an assigned QoS operation of `{}`",
                self.interface
            ))),
            Some((OpOrigin::Application, _)) => {
                let (active, observer) = {
                    let st = self.state.read();
                    (st.active.clone(), st.observer.clone())
                };
                let started = Instant::now();
                let result = match active {
                    None => trace::time("servant", || self.inner.dispatch(op, args)),
                    Some(qi) => match trace::time("qos.prolog", || qi.prolog(op, args)) {
                        Err(veto) => Err(veto),
                        Ok(()) => {
                            let mut result =
                                trace::time("servant", || self.inner.dispatch(op, args));
                            trace::time("qos.epilog", || qi.epilog(op, args, &mut result));
                            result
                        }
                    },
                };
                if let Some(obs) = observer {
                    obs(op, started.elapsed().as_micros() as u64, result.is_ok());
                }
                result
            }
            Some((OpOrigin::Qos(characteristic), _)) => {
                let active = self.state.read().active.clone();
                match active {
                    Some(qi) if qi.characteristic() == characteristic => {
                        qi.qos_op(op, args, self.inner.as_ref())
                    }
                    _ => Err(OrbError::QosNotNegotiated(format!(
                        "operation `{op}` belongs to `{characteristic}`, which is not the \
                         negotiated characteristic"
                    ))),
                }
            }
        }
    }

    fn get_state(&self) -> Result<Any, OrbError> {
        self.inner.get_state()
    }

    fn set_state(&self, state: &Any) -> Result<(), OrbError> {
        self.inner.set_state(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;

    const SPEC: &str = r#"
        qos Replication category fault_tolerance {
            management { void start(); boolean is_running(); };
            integration { any export_state(); };
        };
        qos Encryption category privacy {
            management { void rekey(in unsigned long long seed); };
        };
        interface Counter with qos Replication, Encryption {
            long add(in long n);
        };
    "#;

    fn repo() -> Arc<InterfaceRepository> {
        let mut r = InterfaceRepository::new();
        r.load(&qidl::compile(SPEC).unwrap()).unwrap();
        Arc::new(r)
    }

    struct CounterImpl(Mutex<i32>);
    impl Servant for CounterImpl {
        fn interface_id(&self) -> &str {
            "IDL:Counter:1.0"
        }
        fn dispatch(&self, op: &str, args: &[Any]) -> Result<Any, OrbError> {
            match op {
                "add" => {
                    let n = args.first().and_then(Any::as_long).unwrap_or(0);
                    let mut v = self.0.lock();
                    *v += n;
                    Ok(Any::Long(*v))
                }
                _ => Err(OrbError::BadOperation(op.to_string())),
            }
        }
        fn get_state(&self) -> Result<Any, OrbError> {
            Ok(Any::Long(*self.0.lock()))
        }
    }

    #[derive(Default)]
    struct ReplImpl {
        running: Mutex<bool>,
        prologs: Mutex<u32>,
        epilogs: Mutex<u32>,
    }
    impl QosImplementation for ReplImpl {
        fn characteristic(&self) -> &str {
            "Replication"
        }
        fn prolog(&self, _op: &str, _args: &[Any]) -> Result<(), OrbError> {
            *self.prologs.lock() += 1;
            Ok(())
        }
        fn epilog(&self, _op: &str, _args: &[Any], _result: &mut Result<Any, OrbError>) {
            *self.epilogs.lock() += 1;
        }
        fn qos_op(&self, op: &str, _args: &[Any], server: &dyn Servant) -> Result<Any, OrbError> {
            match op {
                "start" => {
                    *self.running.lock() = true;
                    Ok(Any::Void)
                }
                "is_running" => Ok(Any::Bool(*self.running.lock())),
                "export_state" => server.get_state(),
                other => Err(OrbError::BadOperation(other.to_string())),
            }
        }
    }

    struct EncImpl;
    impl QosImplementation for EncImpl {
        fn characteristic(&self) -> &str {
            "Encryption"
        }
        fn qos_op(&self, op: &str, _args: &[Any], _server: &dyn Servant) -> Result<Any, OrbError> {
            match op {
                "rekey" => Ok(Any::Void),
                other => Err(OrbError::BadOperation(other.to_string())),
            }
        }
    }

    fn woven() -> WovenServant {
        WovenServant::new(Arc::new(CounterImpl(Mutex::new(0))), repo(), "Counter")
    }

    #[test]
    fn application_ops_work_without_negotiation() {
        let w = woven();
        assert_eq!(w.dispatch("add", &[Any::Long(2)]).unwrap(), Any::Long(2));
        assert_eq!(w.active_characteristic(), None);
    }

    #[test]
    fn unknown_ops_are_rejected() {
        let w = woven();
        assert!(matches!(w.dispatch("frob", &[]), Err(OrbError::BadOperation(_))));
    }

    #[test]
    fn qos_ops_require_negotiation() {
        let w = woven();
        // Assigned but not negotiated: the Fig. 2 exception.
        assert!(matches!(w.dispatch("start", &[]), Err(OrbError::QosNotNegotiated(_))));
        let repl = Arc::new(ReplImpl::default());
        w.install_qos(repl).unwrap();
        w.negotiate("Replication").unwrap();
        assert_eq!(w.dispatch("start", &[]).unwrap(), Any::Void);
        assert_eq!(w.dispatch("is_running", &[]).unwrap(), Any::Bool(true));
        // Encryption is assigned but not the active characteristic.
        assert!(matches!(
            w.dispatch("rekey", &[Any::ULongLong(1)]),
            Err(OrbError::QosNotNegotiated(_))
        ));
    }

    #[test]
    fn prolog_epilog_bracket_application_requests() {
        let w = woven();
        let repl = Arc::new(ReplImpl::default());
        w.install_qos(repl.clone()).unwrap();
        w.negotiate("Replication").unwrap();
        w.dispatch("add", &[Any::Long(1)]).unwrap();
        w.dispatch("add", &[Any::Long(1)]).unwrap();
        assert_eq!(*repl.prologs.lock(), 2);
        assert_eq!(*repl.epilogs.lock(), 2);
        // QoS ops are not bracketed.
        w.dispatch("start", &[]).unwrap();
        assert_eq!(*repl.prologs.lock(), 2);
    }

    #[test]
    fn delegate_exchange_at_runtime() {
        let w = woven();
        w.install_qos(Arc::new(ReplImpl::default())).unwrap();
        w.install_qos(Arc::new(EncImpl)).unwrap();
        assert_eq!(w.installed_characteristics(), vec!["Encryption", "Replication"]);
        w.negotiate("Replication").unwrap();
        assert_eq!(w.active_characteristic().as_deref(), Some("Replication"));
        w.negotiate("Encryption").unwrap();
        assert_eq!(w.active_characteristic().as_deref(), Some("Encryption"));
        assert_eq!(w.dispatch("rekey", &[Any::ULongLong(4)]).unwrap(), Any::Void);
        assert!(matches!(w.dispatch("start", &[]), Err(OrbError::QosNotNegotiated(_))));
        w.release();
        assert_eq!(w.active_characteristic(), None);
    }

    #[test]
    fn negotiate_unknown_fails() {
        let w = woven();
        assert!(matches!(w.negotiate("Replication"), Err(OrbError::QosViolation(_))));
    }

    #[test]
    fn install_unassigned_characteristic_fails() {
        struct Rogue;
        impl QosImplementation for Rogue {
            fn characteristic(&self) -> &str {
                "Compression"
            }
            fn qos_op(&self, op: &str, _a: &[Any], _s: &dyn Servant) -> Result<Any, OrbError> {
                Err(OrbError::BadOperation(op.to_string()))
            }
        }
        let w = woven();
        assert!(matches!(w.install_qos(Arc::new(Rogue)), Err(OrbError::QosViolation(_))));
    }

    #[test]
    fn integration_ops_reach_the_application_object() {
        let w = woven();
        w.install_qos(Arc::new(ReplImpl::default())).unwrap();
        w.negotiate("Replication").unwrap();
        w.dispatch("add", &[Any::Long(5)]).unwrap();
        // export_state goes through the QoS impl to the servant's state hook.
        assert_eq!(w.dispatch("export_state", &[]).unwrap(), Any::Long(5));
    }

    #[test]
    fn prolog_veto_blocks_request() {
        struct Veto;
        impl QosImplementation for Veto {
            fn characteristic(&self) -> &str {
                "Encryption"
            }
            fn prolog(&self, _op: &str, _args: &[Any]) -> Result<(), OrbError> {
                Err(OrbError::NoPermission("sealed".to_string()))
            }
            fn qos_op(&self, op: &str, _a: &[Any], _s: &dyn Servant) -> Result<Any, OrbError> {
                Err(OrbError::BadOperation(op.to_string()))
            }
        }
        let w = woven();
        w.install_qos(Arc::new(Veto)).unwrap();
        w.negotiate("Encryption").unwrap();
        assert!(matches!(w.dispatch("add", &[Any::Long(1)]), Err(OrbError::NoPermission(_))));
    }

    #[test]
    fn observer_sees_latency_and_outcome() {
        let w = woven();
        w.install_qos(Arc::new(ReplImpl::default())).unwrap();
        w.negotiate("Replication").unwrap();
        let seen: Arc<Mutex<Vec<(String, bool)>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        w.set_request_observer(Some(Arc::new(move |op, _us, ok| {
            sink.lock().push((op.to_string(), ok));
        })));
        w.dispatch("add", &[Any::Long(1)]).unwrap();
        // QoS operations are not application requests: not observed.
        w.dispatch("start", &[]).unwrap();
        let got = seen.lock().clone();
        assert_eq!(got, vec![("add".to_string(), true)]);
        w.set_request_observer(None);
        w.dispatch("add", &[Any::Long(1)]).unwrap();
        assert_eq!(seen.lock().len(), 1);
    }

    #[test]
    fn observer_reports_failures_including_prolog_veto() {
        struct Veto;
        impl QosImplementation for Veto {
            fn characteristic(&self) -> &str {
                "Encryption"
            }
            fn prolog(&self, _op: &str, _args: &[Any]) -> Result<(), OrbError> {
                Err(OrbError::NoPermission("sealed".to_string()))
            }
            fn qos_op(&self, op: &str, _a: &[Any], _s: &dyn Servant) -> Result<Any, OrbError> {
                Err(OrbError::BadOperation(op.to_string()))
            }
        }
        let w = woven();
        w.install_qos(Arc::new(Veto)).unwrap();
        w.negotiate("Encryption").unwrap();
        let outcomes: Arc<Mutex<Vec<bool>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&outcomes);
        w.set_request_observer(Some(Arc::new(move |_op, _us, ok| sink.lock().push(ok))));
        assert!(w.dispatch("add", &[Any::Long(1)]).is_err());
        assert_eq!(*outcomes.lock(), vec![false]);
    }

    #[test]
    fn traced_dispatch_records_prolog_servant_epilog_spans() {
        let w = woven();
        w.install_qos(Arc::new(ReplImpl::default())).unwrap();
        w.negotiate("Replication").unwrap();
        let scope = orb::trace::begin(orb::TraceContext::with_id(9), "server");
        w.dispatch("add", &[Any::Long(1)]).unwrap();
        let ctx = scope.finish();
        for layer in ["qos.prolog", "servant", "qos.epilog"] {
            assert!(ctx.span(layer).is_some(), "missing `{layer}` span: {ctx:?}");
        }
        // Without negotiation only the servant span appears.
        let w2 = woven();
        let scope = orb::trace::begin(orb::TraceContext::with_id(10), "server");
        w2.dispatch("add", &[Any::Long(1)]).unwrap();
        let ctx = scope.finish();
        assert!(ctx.span("servant").is_some());
        assert!(ctx.span("qos.prolog").is_none());
    }

    #[test]
    #[should_panic(expected = "not in repository")]
    fn weaving_unknown_interface_panics() {
        WovenServant::new(Arc::new(CounterImpl(Mutex::new(0))), repo(), "Ghost");
    }
}
