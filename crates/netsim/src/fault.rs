//! Failure injection: crashes, partitions, and scheduled fault scripts.

use crate::link::LinkModel;
use crate::message::NodeId;
use crate::time::{VirtualDuration, VirtualInstant};
use std::collections::HashSet;

/// A network partition: nodes in different groups cannot communicate.
///
/// Nodes not mentioned in any group form an implicit extra group together.
#[derive(Debug, Clone, Default)]
pub struct Partition {
    groups: Vec<HashSet<NodeId>>,
}

impl Partition {
    /// A partition with the given groups.
    pub fn new<I, G>(groups: I) -> Partition
    where
        I: IntoIterator<Item = G>,
        G: IntoIterator<Item = NodeId>,
    {
        Partition {
            groups: groups.into_iter().map(|g| g.into_iter().collect()).collect(),
        }
    }

    /// Whether `a` and `b` may communicate under this partition.
    pub fn connected(&self, a: NodeId, b: NodeId) -> bool {
        if a == b {
            return true;
        }
        let ga = self.groups.iter().position(|g| g.contains(&a));
        let gb = self.groups.iter().position(|g| g.contains(&b));
        // Nodes outside all groups share the implicit "rest" group.
        ga == gb
    }
}

/// One scheduled fault transition, applied when the network's fault clock
/// reaches the instant it was scheduled at.
#[derive(Debug, Clone)]
pub enum FaultAction {
    /// Crash a node: it neither sends nor receives afterwards.
    Crash(NodeId),
    /// Revive a crashed node.
    Revive(NodeId),
    /// Install a partition (replacing any existing one).
    Partition(Partition),
    /// Remove any partition.
    Heal,
    /// Replace the link model in both directions between two nodes.
    SetLink(NodeId, NodeId, LinkModel),
    /// Replace the link model for one directed link only.
    SetLinkDirected(NodeId, NodeId, LinkModel),
}

impl FaultAction {
    /// A short human-readable form (`crash(3)`, `heal`, …), used by fault
    /// observers ([`crate::Network::add_fault_observer`]) to describe the
    /// applied action without exposing the action type itself.
    pub fn describe(&self) -> String {
        match self {
            FaultAction::Crash(n) => format!("crash({})", n.0),
            FaultAction::Revive(n) => format!("revive({})", n.0),
            FaultAction::Partition(_) => "partition".to_string(),
            FaultAction::Heal => "heal".to_string(),
            FaultAction::SetLink(a, b, _) => format!("set-link({}<->{})", a.0, b.0),
            FaultAction::SetLinkDirected(a, b, _) => format!("set-link({}->{})", a.0, b.0),
        }
    }
}

/// A deterministic, pre-scheduled fault script.
///
/// Times are offsets on the network's *fault clock*, which starts at zero
/// and advances with the virtual send times passing through the fabric
/// (and explicitly via [`crate::Network::tick`]). Because the clock is
/// virtual, scripted chaos runs are reproducible and need no wall-clock
/// sleeps: the same seed and the same tick sequence replay the same faults.
///
/// ```
/// use netsim::{FaultScript, NodeId, VirtualDuration};
/// let ms = VirtualDuration::from_millis;
/// let script = FaultScript::new()
///     .restart_after(ms(100), ms(400), NodeId(1)) // crash at 100ms, back at 500ms
///     .flap(NodeId(2), ms(50), ms(20), 3);        // three 10ms-down blips
/// assert_eq!(script.len(), 8);
/// ```
#[derive(Debug, Clone, Default)]
pub struct FaultScript {
    entries: Vec<(VirtualInstant, FaultAction)>,
}

impl FaultScript {
    /// An empty script.
    pub fn new() -> FaultScript {
        FaultScript::default()
    }

    /// Schedule `action` at fault-clock offset `at`.
    pub fn at(mut self, at: VirtualDuration, action: FaultAction) -> FaultScript {
        self.entries.push((VirtualInstant::ZERO + at, action));
        self
    }

    /// Crash `node` at offset `at`.
    pub fn crash_at(self, at: VirtualDuration, node: NodeId) -> FaultScript {
        self.at(at, FaultAction::Crash(node))
    }

    /// Crash `node` at `crash_at` and revive it `down_for` later.
    pub fn restart_after(
        self,
        crash_at: VirtualDuration,
        down_for: VirtualDuration,
        node: NodeId,
    ) -> FaultScript {
        self.at(crash_at, FaultAction::Crash(node))
            .at(crash_at + down_for, FaultAction::Revive(node))
    }

    /// Degrade the `a <-> b` link to `spike` during `[from, until)` and
    /// restore `normal` afterwards.
    pub fn latency_spike(
        self,
        from: VirtualDuration,
        until: VirtualDuration,
        a: NodeId,
        b: NodeId,
        spike: LinkModel,
        normal: LinkModel,
    ) -> FaultScript {
        self.at(from, FaultAction::SetLink(a, b, spike))
            .at(until, FaultAction::SetLink(a, b, normal))
    }

    /// Partition the network during `[from, until)`, healing at `until`.
    pub fn partition_window(
        self,
        from: VirtualDuration,
        until: VirtualDuration,
        partition: Partition,
    ) -> FaultScript {
        self.at(from, FaultAction::Partition(partition)).at(until, FaultAction::Heal)
    }

    /// Flap `node`: starting at `first`, crash it every `period` and revive
    /// it half a period later, `cycles` times over.
    pub fn flap(
        mut self,
        node: NodeId,
        first: VirtualDuration,
        period: VirtualDuration,
        cycles: u32,
    ) -> FaultScript {
        let half = VirtualDuration::from_nanos(period.as_nanos() / 2);
        for k in 0..cycles as u64 {
            let down = first + VirtualDuration::from_nanos(period.as_nanos().saturating_mul(k));
            self = self
                .at(down, FaultAction::Crash(node))
                .at(down + half, FaultAction::Revive(node));
        }
        self
    }

    /// Number of scheduled actions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the script holds no actions.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entries sorted by time (stable, so same-instant actions keep
    /// their scheduling order).
    pub(crate) fn into_sorted(mut self) -> Vec<(VirtualInstant, FaultAction)> {
        self.entries.sort_by_key(|(t, _)| *t);
        self.entries
    }
}

/// The mutable fault state of a [`crate::Network`].
#[derive(Debug, Default)]
pub struct FaultPlan {
    crashed: HashSet<NodeId>,
    partition: Option<Partition>,
    /// Scheduled actions, sorted ascending by instant; `cursor` marks the
    /// next one not yet applied.
    scheduled: Vec<(VirtualInstant, FaultAction)>,
    cursor: usize,
}

impl FaultPlan {
    /// A plan with no faults.
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Mark a node as crashed: it neither sends nor receives.
    pub fn crash(&mut self, node: NodeId) {
        self.crashed.insert(node);
    }

    /// Revive a crashed node.
    pub fn revive(&mut self, node: NodeId) {
        self.crashed.remove(&node);
    }

    /// Whether a node is currently crashed.
    pub fn is_crashed(&self, node: NodeId) -> bool {
        self.crashed.contains(&node)
    }

    /// Install a partition (replacing any existing one).
    pub fn partition(&mut self, p: Partition) {
        self.partition = Some(p);
    }

    /// Remove any partition.
    pub fn heal(&mut self) {
        self.partition = None;
    }

    /// Merge a script into the schedule. Entries already due fire on the
    /// next [`take_due`](FaultPlan::take_due).
    pub fn schedule(&mut self, script: FaultScript) {
        self.scheduled.drain(..self.cursor);
        self.cursor = 0;
        self.scheduled.extend(script.into_sorted());
        self.scheduled.sort_by_key(|(t, _)| *t);
    }

    /// Number of scheduled actions not yet applied.
    pub fn pending(&self) -> usize {
        self.scheduled.len() - self.cursor
    }

    /// Remove and return every scheduled action due at or before `now`,
    /// in schedule order. The caller applies them (link-model actions need
    /// network state a `FaultPlan` does not hold).
    pub fn take_due(&mut self, now: VirtualInstant) -> Vec<FaultAction> {
        let mut due = Vec::new();
        while self.cursor < self.scheduled.len() && self.scheduled[self.cursor].0 <= now {
            due.push(self.scheduled[self.cursor].1.clone());
            self.cursor += 1;
        }
        due
    }

    /// Whether a message from `src` to `dst` is currently deliverable.
    pub fn deliverable(&self, src: NodeId, dst: NodeId) -> bool {
        if self.is_crashed(src) || self.is_crashed(dst) {
            return false;
        }
        match &self.partition {
            Some(p) => p.connected(src, dst),
            None => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn crash_blocks_both_directions() {
        let mut f = FaultPlan::new();
        assert!(f.deliverable(n(1), n(2)));
        f.crash(n(2));
        assert!(!f.deliverable(n(1), n(2)));
        assert!(!f.deliverable(n(2), n(1)));
        assert!(f.deliverable(n(1), n(3)));
        f.revive(n(2));
        assert!(f.deliverable(n(1), n(2)));
    }

    #[test]
    fn partition_separates_groups() {
        let p = Partition::new([vec![n(1), n(2)], vec![n(3)]]);
        assert!(p.connected(n(1), n(2)));
        assert!(!p.connected(n(1), n(3)));
        assert!(p.connected(n(3), n(3)));
        // Unlisted nodes share the implicit rest-group.
        assert!(p.connected(n(8), n(9)));
        assert!(!p.connected(n(8), n(1)));
    }

    #[test]
    fn script_take_due_fires_in_order_and_once() {
        let ms = VirtualDuration::from_millis;
        let mut f = FaultPlan::new();
        f.schedule(
            FaultScript::new()
                .crash_at(ms(20), n(1))
                .at(ms(10), FaultAction::Heal)
                .at(ms(20), FaultAction::Revive(n(1))),
        );
        assert_eq!(f.pending(), 3);
        assert!(f.take_due(VirtualInstant::ZERO + ms(5)).is_empty());
        let due = f.take_due(VirtualInstant::ZERO + ms(20));
        assert_eq!(due.len(), 3);
        assert!(matches!(due[0], FaultAction::Heal));
        assert!(matches!(due[1], FaultAction::Crash(x) if x == n(1)));
        assert!(matches!(due[2], FaultAction::Revive(x) if x == n(1)));
        assert_eq!(f.pending(), 0);
        assert!(f.take_due(VirtualInstant::ZERO + ms(100)).is_empty());
    }

    #[test]
    fn script_builders_expand_to_expected_actions() {
        let ms = VirtualDuration::from_millis;
        let restart = FaultScript::new().restart_after(ms(100), ms(400), n(3));
        assert_eq!(restart.len(), 2);
        let spike = FaultScript::new().latency_spike(
            ms(10),
            ms(30),
            n(1),
            n(2),
            LinkModel::wan(),
            LinkModel::lan(),
        );
        assert_eq!(spike.len(), 2);
        let window =
            FaultScript::new().partition_window(ms(5), ms(9), Partition::new([vec![n(1)]]));
        assert_eq!(window.len(), 2);
        let flapping = FaultScript::new().flap(n(4), ms(50), ms(20), 3);
        assert_eq!(flapping.len(), 6);
        let sorted = flapping.into_sorted();
        // Alternating crash/revive pairs at 50/60, 70/80, 90/100 ms.
        assert_eq!(sorted[0].0, VirtualInstant::ZERO + ms(50));
        assert!(matches!(sorted[0].1, FaultAction::Crash(_)));
        assert_eq!(sorted[1].0, VirtualInstant::ZERO + ms(60));
        assert!(matches!(sorted[1].1, FaultAction::Revive(_)));
        assert_eq!(sorted[5].0, VirtualInstant::ZERO + ms(100));
    }

    #[test]
    fn rescheduling_merges_with_unapplied_entries() {
        let ms = VirtualDuration::from_millis;
        let mut f = FaultPlan::new();
        f.schedule(FaultScript::new().crash_at(ms(10), n(1)).crash_at(ms(50), n(2)));
        assert_eq!(f.take_due(VirtualInstant::ZERO + ms(10)).len(), 1);
        f.schedule(FaultScript::new().crash_at(ms(30), n(3)));
        assert_eq!(f.pending(), 2);
        let due = f.take_due(VirtualInstant::ZERO + ms(60));
        assert!(matches!(due[0], FaultAction::Crash(x) if x == n(3)));
        assert!(matches!(due[1], FaultAction::Crash(x) if x == n(2)));
    }

    #[test]
    fn heal_restores_connectivity() {
        let mut f = FaultPlan::new();
        f.partition(Partition::new([vec![n(1)], vec![n(2)]]));
        assert!(!f.deliverable(n(1), n(2)));
        f.heal();
        assert!(f.deliverable(n(1), n(2)));
    }
}
