//! Failure injection: crashes and partitions.

use crate::message::NodeId;
use std::collections::HashSet;

/// A network partition: nodes in different groups cannot communicate.
///
/// Nodes not mentioned in any group form an implicit extra group together.
#[derive(Debug, Clone, Default)]
pub struct Partition {
    groups: Vec<HashSet<NodeId>>,
}

impl Partition {
    /// A partition with the given groups.
    pub fn new<I, G>(groups: I) -> Partition
    where
        I: IntoIterator<Item = G>,
        G: IntoIterator<Item = NodeId>,
    {
        Partition {
            groups: groups.into_iter().map(|g| g.into_iter().collect()).collect(),
        }
    }

    /// Whether `a` and `b` may communicate under this partition.
    pub fn connected(&self, a: NodeId, b: NodeId) -> bool {
        if a == b {
            return true;
        }
        let ga = self.groups.iter().position(|g| g.contains(&a));
        let gb = self.groups.iter().position(|g| g.contains(&b));
        // Nodes outside all groups share the implicit "rest" group.
        ga == gb
    }
}

/// The mutable fault state of a [`crate::Network`].
#[derive(Debug, Default)]
pub struct FaultPlan {
    crashed: HashSet<NodeId>,
    partition: Option<Partition>,
}

impl FaultPlan {
    /// A plan with no faults.
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Mark a node as crashed: it neither sends nor receives.
    pub fn crash(&mut self, node: NodeId) {
        self.crashed.insert(node);
    }

    /// Revive a crashed node.
    pub fn revive(&mut self, node: NodeId) {
        self.crashed.remove(&node);
    }

    /// Whether a node is currently crashed.
    pub fn is_crashed(&self, node: NodeId) -> bool {
        self.crashed.contains(&node)
    }

    /// Install a partition (replacing any existing one).
    pub fn partition(&mut self, p: Partition) {
        self.partition = Some(p);
    }

    /// Remove any partition.
    pub fn heal(&mut self) {
        self.partition = None;
    }

    /// Whether a message from `src` to `dst` is currently deliverable.
    pub fn deliverable(&self, src: NodeId, dst: NodeId) -> bool {
        if self.is_crashed(src) || self.is_crashed(dst) {
            return false;
        }
        match &self.partition {
            Some(p) => p.connected(src, dst),
            None => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn crash_blocks_both_directions() {
        let mut f = FaultPlan::new();
        assert!(f.deliverable(n(1), n(2)));
        f.crash(n(2));
        assert!(!f.deliverable(n(1), n(2)));
        assert!(!f.deliverable(n(2), n(1)));
        assert!(f.deliverable(n(1), n(3)));
        f.revive(n(2));
        assert!(f.deliverable(n(1), n(2)));
    }

    #[test]
    fn partition_separates_groups() {
        let p = Partition::new([vec![n(1), n(2)], vec![n(3)]]);
        assert!(p.connected(n(1), n(2)));
        assert!(!p.connected(n(1), n(3)));
        assert!(p.connected(n(3), n(3)));
        // Unlisted nodes share the implicit rest-group.
        assert!(p.connected(n(8), n(9)));
        assert!(!p.connected(n(8), n(1)));
    }

    #[test]
    fn heal_restores_connectivity() {
        let mut f = FaultPlan::new();
        f.partition(Partition::new([vec![n(1)], vec![n(2)]]));
        assert!(!f.deliverable(n(1), n(2)));
        f.heal();
        assert!(f.deliverable(n(1), n(2)));
    }
}
