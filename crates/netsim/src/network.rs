//! The network fabric: node registry, link table, fault plan, statistics.

use crate::fault::{FaultAction, FaultPlan, FaultScript, Partition};
use crate::link::LinkModel;
use crate::message::{Message, NodeId};
use crate::node::NetHandle;
use crate::stats::NetworkStats;
use crate::time::{VirtualClock, VirtualDuration, VirtualInstant};
use bytes::Bytes;
use crossbeam::channel::{unbounded, Sender};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Error returned by [`NetHandle::send`](crate::NetHandle::send).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendError {
    /// The destination node id was never attached to this network.
    UnknownNode(NodeId),
    /// The sending node has been crashed by fault injection.
    SenderCrashed(NodeId),
}

impl fmt::Display for SendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SendError::UnknownNode(n) => write!(f, "unknown destination node {n}"),
            SendError::SenderCrashed(n) => write!(f, "sending node {n} is crashed"),
        }
    }
}

impl std::error::Error for SendError {}

struct NodeEntry {
    sender: Sender<Message>,
}

struct LinkState {
    model: LinkModel,
    busy_until: VirtualInstant,
    next_seq: u64,
}

/// Callback invoked after each applied fault action with the fault-clock
/// time (µs) and a short description ([`FaultAction::describe`]). Runs
/// with the network state locked: observers must record and return, never
/// call back into the network.
pub type FaultObserver = Arc<dyn Fn(u64, &str) + Send + Sync>;

struct State {
    nodes: HashMap<NodeId, NodeEntry>,
    links: HashMap<(NodeId, NodeId), LinkState>,
    default_link: LinkModel,
    faults: FaultPlan,
    stats: NetworkStats,
    rng: StdRng,
    next_id: u32,
    /// The fault clock: the high-water mark of virtual send times seen on
    /// the fabric, plus explicit [`Network::tick`] advances. Scheduled
    /// [`FaultScript`] entries fire against this clock.
    fault_clock: VirtualInstant,
    /// Fault observers, notified per applied action (flight recorders).
    observers: Vec<FaultObserver>,
}

impl State {
    /// Advance the fault clock to at least `now` and apply every scheduled
    /// fault action that has become due.
    fn run_faults_until(&mut self, now: VirtualInstant) {
        self.fault_clock = self.fault_clock.max(now);
        for action in self.faults.take_due(self.fault_clock) {
            if !self.observers.is_empty() {
                let desc = action.describe();
                for obs in &self.observers {
                    obs(self.fault_clock.0, &desc);
                }
            }
            match action {
                FaultAction::Crash(n) => self.faults.crash(n),
                FaultAction::Revive(n) => self.faults.revive(n),
                FaultAction::Partition(p) => self.faults.partition(p),
                FaultAction::Heal => self.faults.heal(),
                FaultAction::SetLink(a, b, model) => {
                    self.set_link_directed(a, b, model.clone());
                    self.set_link_directed(b, a, model);
                }
                FaultAction::SetLinkDirected(src, dst, model) => {
                    self.set_link_directed(src, dst, model);
                }
            }
        }
    }

    fn set_link_directed(&mut self, src: NodeId, dst: NodeId, model: LinkModel) {
        self.links
            .insert((src, dst), LinkState { model, busy_until: VirtualInstant::ZERO, next_seq: 0 });
    }
}

/// Shared interior of a [`Network`]; not part of the public API.
pub struct NetworkInner {
    state: Mutex<State>,
}

impl NetworkInner {
    pub(crate) fn send(
        &self,
        src: NodeId,
        dst: NodeId,
        payload: Bytes,
        clock: &VirtualClock,
    ) -> Result<(), SendError> {
        let mut st = self.state.lock();
        let now = clock.now();
        st.run_faults_until(now);
        if st.faults.is_crashed(src) {
            return Err(SendError::SenderCrashed(src));
        }
        if !st.nodes.contains_key(&dst) {
            return Err(SendError::UnknownNode(dst));
        }
        if !st.faults.deliverable(src, dst) {
            st.stats.record_blocked(src, dst);
            return Ok(());
        }
        // Resolve link model (clone to appease the borrow checker cheaply:
        // models are a handful of words).
        let model = st
            .links
            .get(&(src, dst))
            .map(|l| l.model.clone())
            .unwrap_or_else(|| st.default_link.clone());
        if model.sample_loss(&mut st.rng) {
            st.stats.record_lost(src, dst);
            return Ok(());
        }
        let send_vt = clock.now();
        let link = st
            .links
            .entry((src, dst))
            .or_insert_with(|| LinkState { model: model.clone(), busy_until: VirtualInstant::ZERO, next_seq: 0 });
        let busy = link.busy_until;
        let seq = link.next_seq;
        link.next_seq += 1;
        // schedule() needs the rng; split the borrow by computing after.
        let (deliver_vt, new_busy) = {
            let mut tmp_rng = StdRng::seed_from_u64(0);
            // Use the shared rng for determinism instead of tmp:
            std::mem::swap(&mut tmp_rng, &mut st.rng);
            let r = model.schedule(send_vt, busy, payload.len(), &mut tmp_rng);
            std::mem::swap(&mut tmp_rng, &mut st.rng);
            r
        };
        if let Some(link) = st.links.get_mut(&(src, dst)) {
            link.busy_until = new_busy;
        }
        st.stats.record_delivered(src, dst, payload.len(), deliver_vt.saturating_since(send_vt));
        let msg = Message { src, dst, seq, send_vt, deliver_vt, payload };
        // Receiver may have dropped its handle; that is equivalent to a
        // crashed node from the sender's perspective.
        let _ = st.nodes[&dst].sender.send(msg);
        Ok(())
    }

    /// Deliver an empty wakeup message to `dst`'s own inbox, bypassing
    /// faults, loss, and link scheduling (see [`NetHandle::poke`]).
    pub(crate) fn poke(&self, dst: NodeId, clock: &VirtualClock) {
        let st = self.state.lock();
        if let Some(node) = st.nodes.get(&dst) {
            let now = clock.now();
            let _ = node.sender.send(Message {
                src: dst,
                dst,
                seq: 0,
                send_vt: now,
                deliver_vt: now,
                payload: Bytes::new(),
            });
        }
    }
}

/// A simulated network that nodes attach to.
///
/// Cloning shares the same fabric. See the [crate docs](crate) for an
/// end-to-end example.
#[derive(Clone)]
pub struct Network {
    inner: Arc<NetworkInner>,
}

impl fmt::Debug for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let st = self.inner.state.lock();
        f.debug_struct("Network")
            .field("nodes", &st.nodes.len())
            .field("links", &st.links.len())
            .finish()
    }
}

impl Network {
    /// Create a network. All randomness (loss, jitter) derives from `seed`,
    /// so runs with equal seeds and equal send orders are identical.
    pub fn new(seed: u64) -> Network {
        Network {
            inner: Arc::new(NetworkInner {
                state: Mutex::new(State {
                    nodes: HashMap::new(),
                    links: HashMap::new(),
                    default_link: LinkModel::perfect(),
                    faults: FaultPlan::new(),
                    stats: NetworkStats::default(),
                    rng: StdRng::seed_from_u64(seed),
                    next_id: 0,
                    fault_clock: VirtualInstant::ZERO,
                    observers: Vec::new(),
                }),
            }),
        }
    }

    /// Attach a new node and return its handle.
    pub fn attach(&self, name: &str) -> NetHandle {
        let (tx, rx) = unbounded();
        let mut st = self.inner.state.lock();
        let id = NodeId(st.next_id);
        st.next_id += 1;
        st.nodes.insert(id, NodeEntry { sender: tx });
        NetHandle {
            id,
            name: Arc::from(name),
            inbox: rx,
            clock: VirtualClock::new(),
            net: Arc::clone(&self.inner),
        }
    }

    /// Set the link model in **both** directions between `a` and `b`.
    pub fn set_link(&self, a: NodeId, b: NodeId, model: LinkModel) {
        self.set_link_directed(a, b, model.clone());
        self.set_link_directed(b, a, model);
    }

    /// Set the link model for the directed link `src -> dst` only.
    pub fn set_link_directed(&self, src: NodeId, dst: NodeId, model: LinkModel) {
        self.inner.state.lock().set_link_directed(src, dst, model);
    }

    /// Set the model used for node pairs without an explicit link.
    pub fn set_default_link(&self, model: LinkModel) {
        self.inner.state.lock().default_link = model;
    }

    /// Crash a node: it can no longer send or receive.
    pub fn crash(&self, node: NodeId) {
        self.inner.state.lock().faults.crash(node);
    }

    /// Revive a crashed node.
    pub fn revive(&self, node: NodeId) {
        self.inner.state.lock().faults.revive(node);
    }

    /// Whether a node is currently crashed.
    pub fn is_crashed(&self, node: NodeId) -> bool {
        self.inner.state.lock().faults.is_crashed(node)
    }

    /// Install a partition.
    pub fn partition(&self, p: Partition) {
        self.inner.state.lock().faults.partition(p);
    }

    /// Remove any partition.
    pub fn heal(&self) {
        self.inner.state.lock().faults.heal();
    }

    /// A snapshot of the traffic statistics.
    pub fn stats(&self) -> NetworkStats {
        self.inner.state.lock().stats.clone()
    }

    /// Schedule a deterministic [`FaultScript`] against the fault clock.
    ///
    /// Entries fire as the clock passes their instants — implicitly, as
    /// virtual send times flow through the fabric, or explicitly via
    /// [`tick`](Network::tick). Entries already due fire immediately.
    pub fn schedule(&self, script: FaultScript) {
        let mut st = self.inner.state.lock();
        st.faults.schedule(script);
        let now = st.fault_clock;
        st.run_faults_until(now);
    }

    /// Advance the fault clock by `d` and apply every scheduled fault that
    /// becomes due, returning the new fault-clock time.
    ///
    /// This is the deterministic driver for chaos tests: no wall-clock
    /// sleeps, just explicit virtual-time ticks.
    pub fn tick(&self, d: VirtualDuration) -> VirtualInstant {
        let mut st = self.inner.state.lock();
        let target = st.fault_clock + d;
        st.run_faults_until(target);
        st.fault_clock
    }

    /// The current fault-clock time.
    pub fn fault_now(&self) -> VirtualInstant {
        self.inner.state.lock().fault_clock
    }

    /// Number of scheduled fault actions not yet applied.
    pub fn pending_faults(&self) -> usize {
        self.inner.state.lock().faults.pending()
    }

    /// Register an observer notified for every applied fault action with
    /// the fault-clock time (µs) and [`FaultAction::describe`]'s text.
    /// Observers run with the network locked; they must not call back
    /// into the network. Used by ORBs to land fault-script ticks in their
    /// flight recorders.
    pub fn add_fault_observer(&self, observer: FaultObserver) {
        self.inner.state.lock().observers.push(observer);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::VirtualDuration;
    use std::time::Duration;

    const T: Duration = Duration::from_secs(2);

    #[test]
    fn roundtrip_delivers_payload() {
        let net = Network::new(1);
        let a = net.attach("a");
        let b = net.attach("b");
        a.send(b.id(), vec![1, 2, 3]).unwrap();
        let m = b.recv_timeout(T).unwrap();
        assert_eq!(m.payload, vec![1, 2, 3]);
        assert_eq!(m.src, a.id());
        assert_eq!(m.dst, b.id());
        assert_eq!(m.seq, 0);
    }

    #[test]
    fn virtual_time_advances_with_latency() {
        let net = Network::new(1);
        let a = net.attach("a");
        let b = net.attach("b");
        net.set_link(a.id(), b.id(), LinkModel::perfect().with_latency(VirtualDuration::from_millis(10)));
        a.send(b.id(), vec![0; 8]).unwrap();
        let m = b.recv_timeout(T).unwrap();
        assert_eq!(m.transit(), VirtualDuration::from_millis(10));
        assert_eq!(b.now(), m.deliver_vt);
    }

    #[test]
    fn bandwidth_limits_serialization() {
        let net = Network::new(1);
        let a = net.attach("a");
        let b = net.attach("b");
        // 8 kbit/s = 1000 bytes/s
        net.set_link(a.id(), b.id(), LinkModel::narrowband(8).with_latency(VirtualDuration::ZERO));
        a.send(b.id(), vec![0; 500]).unwrap();
        let m = b.recv_timeout(T).unwrap();
        assert_eq!(m.transit(), VirtualDuration::from_millis(500));
    }

    #[test]
    fn fifo_per_link() {
        let net = Network::new(1);
        let a = net.attach("a");
        let b = net.attach("b");
        for i in 0..100u8 {
            a.send(b.id(), vec![i]).unwrap();
        }
        for i in 0..100u8 {
            let m = b.recv_timeout(T).unwrap();
            assert_eq!(m.payload, vec![i]);
            assert_eq!(m.seq, i as u64);
        }
    }

    #[test]
    fn crash_blocks_traffic_and_send_from_crashed_errors() {
        let net = Network::new(1);
        let a = net.attach("a");
        let b = net.attach("b");
        net.crash(b.id());
        a.send(b.id(), vec![1]).unwrap(); // silently dropped
        assert_eq!(b.try_recv(), Err(crate::RecvError::Empty));
        assert_eq!(b.send(a.id(), vec![1]), Err(SendError::SenderCrashed(b.id())));
        net.revive(b.id());
        a.send(b.id(), vec![2]).unwrap();
        assert_eq!(b.recv_timeout(T).unwrap().payload, vec![2]);
        assert_eq!(net.stats().link(a.id(), b.id()).msgs_blocked, 1);
    }

    #[test]
    fn partition_blocks_cross_group_traffic() {
        let net = Network::new(1);
        let a = net.attach("a");
        let b = net.attach("b");
        let c = net.attach("c");
        net.partition(Partition::new([vec![a.id(), b.id()], vec![c.id()]]));
        a.send(b.id(), vec![1]).unwrap();
        a.send(c.id(), vec![2]).unwrap();
        assert_eq!(b.recv_timeout(T).unwrap().payload, vec![1]);
        assert_eq!(c.try_recv(), Err(crate::RecvError::Empty));
        net.heal();
        a.send(c.id(), vec![3]).unwrap();
        assert_eq!(c.recv_timeout(T).unwrap().payload, vec![3]);
    }

    #[test]
    fn unknown_destination_is_an_error() {
        let net = Network::new(1);
        let a = net.attach("a");
        assert_eq!(a.send(NodeId(99), vec![]), Err(SendError::UnknownNode(NodeId(99))));
    }

    #[test]
    fn loss_is_counted() {
        let net = Network::new(7);
        let a = net.attach("a");
        let b = net.attach("b");
        net.set_link_directed(a.id(), b.id(), LinkModel::perfect().with_loss(1.0));
        for _ in 0..10 {
            a.send(b.id(), vec![0]).unwrap();
        }
        assert_eq!(b.try_recv(), Err(crate::RecvError::Empty));
        assert_eq!(net.stats().link(a.id(), b.id()).msgs_lost, 10);
    }

    #[test]
    fn stats_count_bytes() {
        let net = Network::new(1);
        let a = net.attach("a");
        let b = net.attach("b");
        a.send(b.id(), vec![0; 64]).unwrap();
        a.send(b.id(), vec![0; 36]).unwrap();
        assert_eq!(net.stats().link(a.id(), b.id()).bytes_delivered, 100);
        assert_eq!(net.stats().total_bytes(), 100);
    }

    #[test]
    fn scheduled_script_fires_on_tick_without_sleeps() {
        let ms = VirtualDuration::from_millis;
        let net = Network::new(1);
        let a = net.attach("a");
        let b = net.attach("b");
        net.schedule(crate::FaultScript::new().restart_after(ms(100), ms(400), b.id()));
        assert_eq!(net.pending_faults(), 2);
        // Before the crash instant the node is up.
        net.tick(ms(50));
        assert!(!net.is_crashed(b.id()));
        // Crossing 100ms crashes it; messages are silently dropped.
        net.tick(ms(100));
        assert!(net.is_crashed(b.id()));
        a.send(b.id(), vec![1]).unwrap();
        assert_eq!(b.try_recv(), Err(crate::RecvError::Empty));
        // Crossing 500ms revives it.
        net.tick(ms(400));
        assert!(!net.is_crashed(b.id()));
        a.send(b.id(), vec![2]).unwrap();
        assert_eq!(b.recv_timeout(T).unwrap().payload, vec![2]);
        assert_eq!(net.pending_faults(), 0);
    }

    #[test]
    fn send_virtual_time_drives_the_fault_clock() {
        let ms = VirtualDuration::from_millis;
        let net = Network::new(1);
        let a = net.attach("a");
        let b = net.attach("b");
        let c = net.attach("c");
        net.set_link(a.id(), b.id(), LinkModel::perfect().with_latency(ms(10)));
        net.schedule(crate::FaultScript::new().crash_at(ms(25), c.id()));
        // Round-trip hops between a and b advance virtual time past 25ms;
        // the scheduled crash of c fires from the send path alone, with no
        // explicit tick.
        for _ in 0..3 {
            a.send(b.id(), vec![0]).unwrap();
            let m = b.recv_timeout(T).unwrap();
            b.send(a.id(), m.payload).unwrap();
            let m = a.recv_timeout(T).unwrap();
            a.clock().advance_to(m.deliver_vt);
        }
        assert!(a.now() >= VirtualInstant::ZERO + ms(25));
        assert!(net.is_crashed(c.id()));
        assert!(net.fault_now() >= VirtualInstant::ZERO + ms(25));
    }

    #[test]
    fn scheduled_latency_spike_window_applies_and_restores() {
        let ms = VirtualDuration::from_millis;
        let net = Network::new(1);
        let a = net.attach("a");
        let b = net.attach("b");
        let normal = LinkModel::perfect().with_latency(ms(1));
        net.set_link(a.id(), b.id(), normal.clone());
        net.schedule(crate::FaultScript::new().latency_spike(
            ms(10),
            ms(30),
            a.id(),
            b.id(),
            LinkModel::perfect().with_latency(ms(150)),
            normal,
        ));
        net.tick(ms(10));
        a.send(b.id(), vec![1]).unwrap();
        assert_eq!(b.recv_timeout(T).unwrap().transit(), ms(150));
        net.tick(ms(30));
        a.send(b.id(), vec![2]).unwrap();
        assert_eq!(b.recv_timeout(T).unwrap().transit(), ms(1));
    }

    #[test]
    fn identical_seeds_give_identical_schedules() {
        let run = |seed| {
            let net = Network::new(seed);
            let a = net.attach("a");
            let b = net.attach("b");
            net.set_link(a.id(), b.id(), LinkModel::lan());
            let mut times = Vec::new();
            for _ in 0..20 {
                a.send(b.id(), vec![0; 100]).unwrap();
                times.push(b.recv_timeout(T).unwrap().deliver_vt);
            }
            times
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6)); // jitter differs across seeds
    }

    #[test]
    fn poke_wakes_even_crashed_and_lossy_nodes() {
        let net = Network::new(1);
        let a = net.attach("a");
        // Loss and crash must not eat wakeups: poke bypasses both.
        net.set_link(a.id(), a.id(), LinkModel::perfect().with_loss(1.0));
        net.crash(a.id());
        a.poke();
        let m = a.recv_timeout(T).unwrap();
        assert!(m.is_empty());
        assert_eq!(m.src, a.id());
        assert_eq!(m.dst, a.id());
        assert_eq!(net.stats().total_bytes(), 0, "pokes are not traffic");
    }

    #[test]
    fn concurrent_senders_all_deliver() {
        let net = Network::new(1);
        let recv = net.attach("server");
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let h = net.attach(&format!("c{i}"));
                let dst = recv.id();
                std::thread::spawn(move || {
                    for _ in 0..250 {
                        h.send(dst, vec![i as u8]).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let mut got = 0;
        while recv.try_recv().is_ok() {
            got += 1;
        }
        assert_eq!(got, 1000);
    }
}
