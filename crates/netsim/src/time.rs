//! Virtual time for the simulator.
//!
//! Virtual time is a logical clock measured in nanoseconds. Every message
//! sent through the simulator carries its virtual send time and a computed
//! virtual delivery time; receiving nodes advance their clocks to the
//! delivery time. This is the standard "logical execution time" trick:
//! wall-clock delivery is immediate, but the *modelled* timing of a real
//! network with the configured link parameters is fully deterministic.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A point in virtual time, in nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtualInstant(pub u64);

/// A span of virtual time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtualDuration(pub u64);

impl VirtualInstant {
    /// The origin of virtual time.
    pub const ZERO: VirtualInstant = VirtualInstant(0);

    /// Nanoseconds since simulation start.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Virtual time elapsed since `earlier`, saturating at zero.
    pub fn saturating_since(self, earlier: VirtualInstant) -> VirtualDuration {
        VirtualDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    pub fn max(self, other: VirtualInstant) -> VirtualInstant {
        VirtualInstant(self.0.max(other.0))
    }
}

impl VirtualDuration {
    /// The zero duration.
    pub const ZERO: VirtualDuration = VirtualDuration(0);

    /// A duration of `n` nanoseconds.
    pub fn from_nanos(n: u64) -> VirtualDuration {
        VirtualDuration(n)
    }

    /// A duration of `n` microseconds.
    pub fn from_micros(n: u64) -> VirtualDuration {
        VirtualDuration(n.saturating_mul(1_000))
    }

    /// A duration of `n` milliseconds.
    pub fn from_millis(n: u64) -> VirtualDuration {
        VirtualDuration(n.saturating_mul(1_000_000))
    }

    /// A duration of `n` seconds.
    pub fn from_secs(n: u64) -> VirtualDuration {
        VirtualDuration(n.saturating_mul(1_000_000_000))
    }

    /// The duration in nanoseconds.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// The duration in whole microseconds (truncating).
    pub fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// The duration in (fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The duration in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating addition.
    pub fn saturating_add(self, rhs: VirtualDuration) -> VirtualDuration {
        VirtualDuration(self.0.saturating_add(rhs.0))
    }
}

impl Add<VirtualDuration> for VirtualInstant {
    type Output = VirtualInstant;
    fn add(self, rhs: VirtualDuration) -> VirtualInstant {
        VirtualInstant(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<VirtualDuration> for VirtualInstant {
    fn add_assign(&mut self, rhs: VirtualDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Add for VirtualDuration {
    type Output = VirtualDuration;
    fn add(self, rhs: VirtualDuration) -> VirtualDuration {
        VirtualDuration(self.0.saturating_add(rhs.0))
    }
}

impl Sub for VirtualInstant {
    type Output = VirtualDuration;
    fn sub(self, rhs: VirtualInstant) -> VirtualDuration {
        VirtualDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for VirtualInstant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms(vt)", self.0 as f64 / 1e6)
    }
}

impl fmt::Display for VirtualDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.0 as f64 / 1e6)
    }
}

/// A shared, monotonically advancing virtual clock.
///
/// Each simulated node owns one; it only moves forward. Cloning the clock
/// yields a handle onto the same underlying counter.
#[derive(Debug, Clone, Default)]
pub struct VirtualClock {
    nanos: Arc<AtomicU64>,
}

impl VirtualClock {
    /// A new clock at virtual time zero.
    pub fn new() -> VirtualClock {
        VirtualClock::default()
    }

    /// The current virtual time.
    pub fn now(&self) -> VirtualInstant {
        VirtualInstant(self.nanos.load(Ordering::Acquire))
    }

    /// Advance the clock by `d`, returning the new time.
    pub fn advance(&self, d: VirtualDuration) -> VirtualInstant {
        VirtualInstant(self.nanos.fetch_add(d.0, Ordering::AcqRel) + d.0)
    }

    /// Advance the clock to at least `t` (no-op if already past it).
    pub fn advance_to(&self, t: VirtualInstant) {
        self.nanos.fetch_max(t.0, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instant_arithmetic() {
        let t = VirtualInstant::ZERO + VirtualDuration::from_millis(5);
        assert_eq!(t.as_nanos(), 5_000_000);
        assert_eq!((t - VirtualInstant::ZERO).as_millis_f64(), 5.0);
        assert_eq!(t.max(VirtualInstant(1)), t);
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(VirtualDuration::from_secs(1), VirtualDuration::from_millis(1000));
        assert_eq!(VirtualDuration::from_millis(1), VirtualDuration::from_micros(1000));
        assert_eq!(VirtualDuration::from_micros(1), VirtualDuration::from_nanos(1000));
    }

    #[test]
    fn clock_is_monotone() {
        let c = VirtualClock::new();
        c.advance(VirtualDuration::from_millis(10));
        c.advance_to(VirtualInstant(5)); // in the past: no effect
        assert_eq!(c.now(), VirtualInstant(10_000_000));
        c.advance_to(VirtualInstant(20_000_000));
        assert_eq!(c.now(), VirtualInstant(20_000_000));
    }

    #[test]
    fn clock_handles_share_state() {
        let c = VirtualClock::new();
        let c2 = c.clone();
        c.advance(VirtualDuration::from_nanos(7));
        assert_eq!(c2.now(), VirtualInstant(7));
    }

    #[test]
    fn saturating_since_does_not_underflow() {
        let a = VirtualInstant(5);
        let b = VirtualInstant(10);
        assert_eq!(a.saturating_since(b), VirtualDuration::ZERO);
        assert_eq!(b.saturating_since(a), VirtualDuration(5));
    }
}
