//! Node identity and the simulated wire message.

use crate::time::VirtualInstant;
use bytes::Bytes;
use std::fmt;

/// Identifies a node attached to a [`crate::Network`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A message delivered by the simulator.
///
/// The payload is opaque bytes; the ORB layers its own protocol on top.
/// Timestamps are *virtual* (see [`crate::VirtualClock`]): `deliver_vt -
/// send_vt` is the modelled network transit time for the configured link.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// The sending node.
    pub src: NodeId,
    /// The destination node.
    pub dst: NodeId,
    /// Per-(src,dst) sequence number, starting at 0.
    pub seq: u64,
    /// Virtual time at which the sender issued the message.
    pub send_vt: VirtualInstant,
    /// Virtual time at which the message arrives at the destination.
    pub deliver_vt: VirtualInstant,
    /// The message body. Shared, cheaply cloneable bytes: the fabric
    /// never copies a payload after the sender hands it over.
    pub payload: Bytes,
}

impl Message {
    /// Modelled transit time (`deliver_vt - send_vt`).
    pub fn transit(&self) -> crate::VirtualDuration {
        self.deliver_vt.saturating_since(self.send_vt)
    }

    /// Payload size in bytes.
    pub fn len(&self) -> usize {
        self.payload.len()
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.payload.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transit_is_delivery_minus_send() {
        let m = Message {
            src: NodeId(0),
            dst: NodeId(1),
            seq: 0,
            send_vt: VirtualInstant(100),
            deliver_vt: VirtualInstant(350),
            payload: vec![1, 2, 3].into(),
        };
        assert_eq!(m.transit().as_nanos(), 250);
        assert_eq!(m.len(), 3);
        assert!(!m.is_empty());
    }

    #[test]
    fn node_id_display() {
        assert_eq!(NodeId(7).to_string(), "n7");
    }
}
