//! The per-node handle returned by [`crate::Network::attach`].

use crate::message::{Message, NodeId};
use crate::network::{NetworkInner, SendError};
use crate::time::{VirtualClock, VirtualInstant};
use bytes::Bytes;
use crossbeam::channel::{Receiver, RecvTimeoutError, TryRecvError};
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// Error returned by the receive operations of a [`NetHandle`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvError {
    /// No message is currently queued (`try_recv` only).
    Empty,
    /// No message arrived within the wall-clock timeout.
    Timeout,
    /// The network was dropped; no further messages can arrive.
    Disconnected,
}

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvError::Empty => write!(f, "no message queued"),
            RecvError::Timeout => write!(f, "receive timed out"),
            RecvError::Disconnected => write!(f, "network disconnected"),
        }
    }
}

impl std::error::Error for RecvError {}

/// A node's endpoint on the simulated network.
///
/// Cheap to clone; clones share the same inbox and virtual clock, which
/// lets a node run a receive loop on one thread while sending from others.
#[derive(Clone)]
pub struct NetHandle {
    pub(crate) id: NodeId,
    pub(crate) name: Arc<str>,
    pub(crate) inbox: Receiver<Message>,
    pub(crate) clock: VirtualClock,
    pub(crate) net: Arc<NetworkInner>,
}

impl fmt::Debug for NetHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NetHandle")
            .field("id", &self.id)
            .field("name", &self.name)
            .field("vt", &self.clock.now())
            .finish()
    }
}

impl NetHandle {
    /// This node's identity.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The human-readable name given at attach time.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// This node's virtual clock.
    pub fn clock(&self) -> &VirtualClock {
        &self.clock
    }

    /// Current virtual time at this node.
    pub fn now(&self) -> VirtualInstant {
        self.clock.now()
    }

    /// Send `payload` to `dst`.
    ///
    /// Delivery is unreliable in exactly the ways the network is configured
    /// to be: messages eaten by the loss model or by faults are *not*
    /// errors (they are recorded in [`crate::NetworkStats`]), mirroring a
    /// datagram network where the sender cannot observe the drop.
    ///
    /// # Errors
    ///
    /// Returns an error if `dst` was never attached or if this node has
    /// been crashed by fault injection.
    pub fn send(&self, dst: NodeId, payload: impl Into<Bytes>) -> Result<(), SendError> {
        self.net.send(self.id, dst, payload.into(), &self.clock)
    }

    /// Wake this node's receive loop: enqueue an **empty** local message
    /// that bypasses link models, loss, and fault injection (it works
    /// even while the node is crashed). Receivers blocked in
    /// [`NetHandle::recv`] observe it like any other message; protocol
    /// layers treat an empty payload as a pure wakeup. This is the
    /// event-driven alternative to polling `recv_timeout` in a loop.
    pub fn poke(&self) {
        self.net.poke(self.id, &self.clock);
    }

    /// Block until a message arrives. Advances the virtual clock to the
    /// message's delivery time.
    ///
    /// # Errors
    ///
    /// Returns [`RecvError::Disconnected`] if the network is gone.
    pub fn recv(&self) -> Result<Message, RecvError> {
        let msg = self.inbox.recv().map_err(|_| RecvError::Disconnected)?;
        self.clock.advance_to(msg.deliver_vt);
        Ok(msg)
    }

    /// Receive without blocking.
    ///
    /// # Errors
    ///
    /// [`RecvError::Empty`] if no message is queued,
    /// [`RecvError::Disconnected`] if the network is gone.
    pub fn try_recv(&self) -> Result<Message, RecvError> {
        match self.inbox.try_recv() {
            Ok(msg) => {
                self.clock.advance_to(msg.deliver_vt);
                Ok(msg)
            }
            Err(TryRecvError::Empty) => Err(RecvError::Empty),
            Err(TryRecvError::Disconnected) => Err(RecvError::Disconnected),
        }
    }

    /// Block up to a wall-clock `timeout` for a message.
    ///
    /// # Errors
    ///
    /// [`RecvError::Timeout`] on timeout, [`RecvError::Disconnected`] if
    /// the network is gone.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Message, RecvError> {
        match self.inbox.recv_timeout(timeout) {
            Ok(msg) => {
                self.clock.advance_to(msg.deliver_vt);
                Ok(msg)
            }
            Err(RecvTimeoutError::Timeout) => Err(RecvError::Timeout),
            Err(RecvTimeoutError::Disconnected) => Err(RecvError::Disconnected),
        }
    }

    /// Number of messages currently queued in the inbox.
    pub fn pending(&self) -> usize {
        self.inbox.len()
    }
}
