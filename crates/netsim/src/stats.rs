//! Traffic statistics, per link and network-wide.

use crate::message::NodeId;
use std::collections::HashMap;

/// Counters for one directed link.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Messages successfully enqueued for delivery.
    pub msgs_delivered: u64,
    /// Payload bytes successfully enqueued for delivery.
    pub bytes_delivered: u64,
    /// Messages dropped by the loss model.
    pub msgs_lost: u64,
    /// Messages suppressed by crash/partition faults.
    pub msgs_blocked: u64,
    /// Accumulated modelled transit time of delivered messages, in
    /// virtual nanoseconds (`deliver_vt - send_vt` summed per message).
    pub transit_vnanos: u64,
}

impl LinkStats {
    /// Mean modelled transit per delivered message, in virtual
    /// microseconds (0.0 when nothing was delivered).
    pub fn mean_transit_us(&self) -> f64 {
        if self.msgs_delivered == 0 {
            0.0
        } else {
            self.transit_vnanos as f64 / 1e3 / self.msgs_delivered as f64
        }
    }
}

/// Aggregated statistics for a [`crate::Network`].
#[derive(Debug, Clone, Default)]
pub struct NetworkStats {
    links: HashMap<(NodeId, NodeId), LinkStats>,
}

impl NetworkStats {
    /// Record a successful delivery with its modelled transit time.
    pub(crate) fn record_delivered(
        &mut self,
        src: NodeId,
        dst: NodeId,
        bytes: usize,
        transit: crate::VirtualDuration,
    ) {
        let e = self.links.entry((src, dst)).or_default();
        e.msgs_delivered += 1;
        e.bytes_delivered += bytes as u64;
        e.transit_vnanos += transit.as_nanos();
    }

    /// Record a message dropped by the loss model.
    pub(crate) fn record_lost(&mut self, src: NodeId, dst: NodeId) {
        self.links.entry((src, dst)).or_default().msgs_lost += 1;
    }

    /// Record a message blocked by faults.
    pub(crate) fn record_blocked(&mut self, src: NodeId, dst: NodeId) {
        self.links.entry((src, dst)).or_default().msgs_blocked += 1;
    }

    /// Counters for one directed link (zeroes if never used).
    pub fn link(&self, src: NodeId, dst: NodeId) -> LinkStats {
        self.links.get(&(src, dst)).copied().unwrap_or_default()
    }

    /// Total payload bytes delivered over all links.
    pub fn total_bytes(&self) -> u64 {
        self.links.values().map(|s| s.bytes_delivered).sum()
    }

    /// Total messages delivered over all links.
    pub fn total_msgs(&self) -> u64 {
        self.links.values().map(|s| s.msgs_delivered).sum()
    }

    /// Total messages lost to the loss model.
    pub fn total_lost(&self) -> u64 {
        self.links.values().map(|s| s.msgs_lost).sum()
    }

    /// Total modelled transit time over all links, in virtual nanoseconds.
    pub fn total_transit_vnanos(&self) -> u64 {
        self.links.values().map(|s| s.transit_vnanos).sum()
    }

    /// Iterate over `((src, dst), stats)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&(NodeId, NodeId), &LinkStats)> {
        self.links.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut s = NetworkStats::default();
        let (a, b) = (NodeId(1), NodeId(2));
        s.record_delivered(a, b, 100, crate::VirtualDuration::from_micros(30));
        s.record_delivered(a, b, 50, crate::VirtualDuration::from_micros(10));
        s.record_lost(a, b);
        s.record_blocked(b, a);
        assert_eq!(s.link(a, b).msgs_delivered, 2);
        assert_eq!(s.link(a, b).bytes_delivered, 150);
        assert_eq!(s.link(a, b).msgs_lost, 1);
        assert_eq!(s.link(b, a).msgs_blocked, 1);
        assert_eq!(s.total_bytes(), 150);
        assert_eq!(s.total_msgs(), 2);
        assert_eq!(s.total_lost(), 1);
        assert_eq!(s.total_transit_vnanos(), 40_000);
        assert_eq!(s.link(a, b).mean_transit_us(), 20.0);
        assert_eq!(s.link(NodeId(9), NodeId(9)), LinkStats::default());
        assert_eq!(s.link(NodeId(9), NodeId(9)).mean_transit_us(), 0.0);
    }
}
