//! Link models: latency, bandwidth, jitter and loss.

use crate::time::{VirtualDuration, VirtualInstant};
use rand::Rng;

/// Characteristics of a directed link between two nodes.
///
/// The transit time of a message of `n` bytes sent at virtual time `t` is
///
/// ```text
/// start    = max(t, link_busy_until)          // serialization queue
/// ser_time = n * 8 / bandwidth_bps            // 0 if unlimited
/// jitter   ~ U(0, jitter)                     // seeded, deterministic
/// deliver  = start + ser_time + latency + jitter
/// ```
///
/// and the link stays busy until `start + ser_time` (store-and-forward,
/// single-lane). Loss is Bernoulli per message.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkModel {
    /// One-way propagation delay.
    pub latency: VirtualDuration,
    /// Link capacity in bits per second; `None` means unlimited.
    pub bandwidth_bps: Option<u64>,
    /// Maximum uniform extra delay added per message.
    pub jitter: VirtualDuration,
    /// Probability in `[0, 1]` that a message is silently dropped.
    pub loss: f64,
}

impl Default for LinkModel {
    /// A perfect link: zero latency, unlimited bandwidth, lossless.
    fn default() -> LinkModel {
        LinkModel {
            latency: VirtualDuration::ZERO,
            bandwidth_bps: None,
            jitter: VirtualDuration::ZERO,
            loss: 0.0,
        }
    }
}

impl LinkModel {
    /// A perfect link (alias for [`Default`]).
    pub fn perfect() -> LinkModel {
        LinkModel::default()
    }

    /// A typical LAN: 100 µs latency, 1 Gbit/s, no loss.
    pub fn lan() -> LinkModel {
        LinkModel {
            latency: VirtualDuration::from_micros(100),
            bandwidth_bps: Some(1_000_000_000),
            jitter: VirtualDuration::from_micros(10),
            loss: 0.0,
        }
    }

    /// A wide-area link: 20 ms latency, 10 Mbit/s.
    pub fn wan() -> LinkModel {
        LinkModel {
            latency: VirtualDuration::from_millis(20),
            bandwidth_bps: Some(10_000_000),
            jitter: VirtualDuration::from_millis(2),
            loss: 0.0,
        }
    }

    /// A constrained modem-class channel, the paper's "channels with small
    /// bandwidth" scenario: 100 ms latency, configurable kbit/s.
    pub fn narrowband(kbit_per_s: u64) -> LinkModel {
        LinkModel {
            latency: VirtualDuration::from_millis(100),
            bandwidth_bps: Some(kbit_per_s * 1000),
            jitter: VirtualDuration::ZERO,
            loss: 0.0,
        }
    }

    /// Builder-style: replace the latency.
    pub fn with_latency(mut self, latency: VirtualDuration) -> LinkModel {
        self.latency = latency;
        self
    }

    /// Builder-style: replace the bandwidth (bits per second).
    pub fn with_bandwidth_bps(mut self, bps: u64) -> LinkModel {
        self.bandwidth_bps = Some(bps);
        self
    }

    /// Builder-style: replace the loss probability.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not within `[0, 1]`.
    pub fn with_loss(mut self, loss: f64) -> LinkModel {
        assert!((0.0..=1.0).contains(&loss), "loss probability must be in [0,1]");
        self.loss = loss;
        self
    }

    /// Builder-style: replace the jitter bound.
    pub fn with_jitter(mut self, jitter: VirtualDuration) -> LinkModel {
        self.jitter = jitter;
        self
    }

    /// Time to clock `bytes` onto the wire at this link's bandwidth.
    pub fn serialization_time(&self, bytes: usize) -> VirtualDuration {
        match self.bandwidth_bps {
            None => VirtualDuration::ZERO,
            Some(0) => VirtualDuration::from_secs(u64::MAX / 2),
            Some(bps) => {
                let bits = bytes as u128 * 8;
                let nanos = bits * 1_000_000_000 / bps as u128;
                VirtualDuration::from_nanos(nanos.min(u64::MAX as u128) as u64)
            }
        }
    }

    /// Compute the delivery time of a message and the new link-busy horizon.
    ///
    /// Returns `(deliver_vt, busy_until)`.
    pub fn schedule<R: Rng>(
        &self,
        send_vt: VirtualInstant,
        busy_until: VirtualInstant,
        bytes: usize,
        rng: &mut R,
    ) -> (VirtualInstant, VirtualInstant) {
        let start = send_vt.max(busy_until);
        let ser = self.serialization_time(bytes);
        let new_busy = start + ser;
        let jitter = if self.jitter.as_nanos() == 0 {
            VirtualDuration::ZERO
        } else {
            VirtualDuration::from_nanos(rng.gen_range(0..=self.jitter.as_nanos()))
        };
        (new_busy + self.latency + jitter, new_busy)
    }

    /// Sample whether a message on this link is lost.
    pub fn sample_loss<R: Rng>(&self, rng: &mut R) -> bool {
        self.loss > 0.0 && rng.gen_bool(self.loss.min(1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn serialization_time_scales_with_size() {
        let l = LinkModel::perfect().with_bandwidth_bps(8_000); // 1000 B/s
        assert_eq!(l.serialization_time(1000), VirtualDuration::from_secs(1));
        assert_eq!(l.serialization_time(500), VirtualDuration::from_millis(500));
        assert_eq!(LinkModel::perfect().serialization_time(1 << 20), VirtualDuration::ZERO);
    }

    #[test]
    fn schedule_respects_busy_link() {
        let l = LinkModel::perfect()
            .with_bandwidth_bps(8_000)
            .with_latency(VirtualDuration::from_millis(10));
        let mut rng = StdRng::seed_from_u64(1);
        // First message: 1000 bytes = 1 s serialization.
        let (d1, busy1) = l.schedule(VirtualInstant::ZERO, VirtualInstant::ZERO, 1000, &mut rng);
        assert_eq!(busy1, VirtualInstant(1_000_000_000));
        assert_eq!(d1, VirtualInstant(1_010_000_000));
        // Second message sent at t=0 queues behind the first.
        let (d2, busy2) = l.schedule(VirtualInstant::ZERO, busy1, 1000, &mut rng);
        assert_eq!(busy2, VirtualInstant(2_000_000_000));
        assert_eq!(d2, VirtualInstant(2_010_000_000));
    }

    #[test]
    fn jitter_is_bounded_and_deterministic() {
        let l = LinkModel::perfect().with_jitter(VirtualDuration::from_millis(5));
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            let (da, _) = l.schedule(VirtualInstant::ZERO, VirtualInstant::ZERO, 10, &mut a);
            let (db, _) = l.schedule(VirtualInstant::ZERO, VirtualInstant::ZERO, 10, &mut b);
            assert_eq!(da, db);
            assert!(da.as_nanos() <= 5_000_000);
        }
    }

    #[test]
    fn loss_sampling_matches_probability_roughly() {
        let l = LinkModel::perfect().with_loss(0.3);
        let mut rng = StdRng::seed_from_u64(7);
        let lost = (0..10_000).filter(|_| l.sample_loss(&mut rng)).count();
        assert!((2_700..3_300).contains(&lost), "lost={lost}");
    }

    #[test]
    #[should_panic(expected = "loss probability")]
    fn loss_out_of_range_panics() {
        let _ = LinkModel::perfect().with_loss(1.5);
    }

    #[test]
    fn presets_are_sane() {
        assert!(LinkModel::lan().latency < LinkModel::wan().latency);
        let nb = LinkModel::narrowband(64);
        assert_eq!(nb.bandwidth_bps, Some(64_000));
    }
}
