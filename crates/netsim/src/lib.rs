//! Deterministic in-process network simulator.
//!
//! `netsim` is the bottom substrate of the MAQS-RS stack. It replaces the
//! operating-system network that the original MAQS prototype (Becker &
//! Geihs, ICDCS 2001) ran on, with three properties the QoS experiments
//! need and a real network does not give:
//!
//! * **Controllable links** — per-link latency, bandwidth, jitter and loss
//!   models, so "compression on a small-bandwidth channel" is an actual
//!   reproducible experiment rather than a hope.
//! * **Virtual time** — every message carries a virtual send/delivery
//!   timestamp computed from the link model. Nodes keep a virtual clock
//!   that advances on receipt, so transfer times are deterministic and do
//!   not depend on host scheduling.
//! * **Failure injection** — node crashes, link partitions and probabilistic
//!   message drops, needed by the fault-tolerance characteristic (E4).
//!
//! Messages are delivered through in-process channels immediately (wall
//! clock), while the *virtual* delivery time models what a real network
//! with the configured link characteristics would have done.
//!
//! # Example
//!
//! ```
//! use netsim::{Network, LinkModel};
//!
//! let net = Network::new(42);
//! let a = net.attach("client");
//! let b = net.attach("server");
//! net.set_link(a.id(), b.id(), LinkModel::lan());
//!
//! a.send(b.id(), b"hello".to_vec()).unwrap();
//! let msg = b.recv_timeout(std::time::Duration::from_secs(1)).unwrap();
//! assert_eq!(&msg.payload[..], b"hello");
//! // Virtual delivery time reflects the LAN latency model.
//! assert!(msg.deliver_vt > msg.send_vt);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fault;
mod link;
mod message;
mod network;
mod node;
mod stats;
mod time;

pub use fault::{FaultAction, FaultPlan, FaultScript, Partition};
pub use link::LinkModel;
pub use message::{Message, NodeId};
pub use network::{FaultObserver, Network, SendError};
pub use node::{NetHandle, RecvError};
pub use stats::{LinkStats, NetworkStats};
pub use time::{VirtualClock, VirtualDuration, VirtualInstant};
