//! Property-based tests for the network simulator's invariants.

use netsim::{LinkModel, Network, VirtualDuration, VirtualInstant};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// FIFO per (src, dst): messages arrive in send order with
    /// consecutive sequence numbers, whatever the link model.
    #[test]
    fn fifo_per_link(
        latency_us in 0u64..10_000,
        jitter_us in 0u64..1_000,
        kbps in 1u64..100_000,
        sizes in proptest::collection::vec(1usize..2048, 1..32),
    ) {
        let net = Network::new(1);
        let a = net.attach("a");
        let b = net.attach("b");
        net.set_link(
            a.id(),
            b.id(),
            LinkModel::perfect()
                .with_latency(VirtualDuration::from_micros(latency_us))
                .with_jitter(VirtualDuration::from_micros(jitter_us))
                .with_bandwidth_bps(kbps * 1000),
        );
        for size in &sizes {
            a.send(b.id(), vec![0; *size]).unwrap();
        }
        let mut last_seq = None;
        for _ in 0..sizes.len() {
            let m = b.recv_timeout(Duration::from_secs(2)).unwrap();
            if let Some(prev) = last_seq {
                prop_assert_eq!(m.seq, prev + 1);
            }
            last_seq = Some(m.seq);
        }
    }

    /// Virtual delivery time is never before send time plus the fixed
    /// latency, and the receiving clock never runs backwards.
    #[test]
    fn delivery_time_lower_bound(
        latency_ms in 0u64..50,
        sizes in proptest::collection::vec(1usize..4096, 1..16),
    ) {
        let net = Network::new(2);
        let a = net.attach("a");
        let b = net.attach("b");
        net.set_link(
            a.id(),
            b.id(),
            LinkModel::narrowband(64).with_latency(VirtualDuration::from_millis(latency_ms)),
        );
        let mut last_clock = VirtualInstant::ZERO;
        for size in &sizes {
            a.send(b.id(), vec![0; *size]).unwrap();
            let m = b.recv_timeout(Duration::from_secs(2)).unwrap();
            prop_assert!(m.deliver_vt >= m.send_vt + VirtualDuration::from_millis(latency_ms));
            // Serialization of `size` bytes at 64 kbit/s:
            let ser = VirtualDuration::from_nanos(*size as u64 * 8 * 1_000_000_000 / 64_000);
            prop_assert!(m.deliver_vt >= m.send_vt + ser);
            prop_assert!(b.now() >= last_clock);
            last_clock = b.now();
        }
    }

    /// Loss never corrupts: every delivered message is byte-identical to
    /// a sent one, and delivered + lost = sent.
    #[test]
    fn loss_only_drops_never_corrupts(loss in 0.0f64..1.0, n in 1usize..128) {
        let net = Network::new(3);
        let a = net.attach("a");
        let b = net.attach("b");
        net.set_link_directed(a.id(), b.id(), LinkModel::perfect().with_loss(loss));
        for i in 0..n {
            a.send(b.id(), vec![(i % 256) as u8; 3]).unwrap();
        }
        let mut delivered = 0u64;
        while let Ok(m) = b.try_recv() {
            prop_assert_eq!(m.payload.len(), 3);
            prop_assert!(m.payload.iter().all(|&x| x == m.payload[0]));
            delivered += 1;
        }
        let stats = net.stats().link(a.id(), b.id());
        prop_assert_eq!(stats.msgs_delivered, delivered);
        prop_assert_eq!(stats.msgs_delivered + stats.msgs_lost, n as u64);
    }

    /// The same seed and send sequence gives bit-identical outcomes.
    #[test]
    fn determinism(seed in 0u64..1000, n in 1usize..32) {
        let run = |seed: u64| {
            let net = Network::new(seed);
            let a = net.attach("a");
            let b = net.attach("b");
            net.set_link(a.id(), b.id(), LinkModel::lan().with_loss(0.2));
            for i in 0..n {
                a.send(b.id(), vec![i as u8]).unwrap();
            }
            let mut log = Vec::new();
            while let Ok(m) = b.try_recv() {
                log.push((m.seq, m.deliver_vt));
            }
            log
        };
        prop_assert_eq!(run(seed), run(seed));
    }

    /// Serialization time is monotone in message size and inversely
    /// monotone in bandwidth.
    #[test]
    fn serialization_monotonicity(size in 1usize..100_000, kbps in 1u64..1_000_000) {
        let slow = LinkModel::narrowband(kbps);
        let fast = LinkModel::narrowband(kbps * 2);
        prop_assert!(slow.serialization_time(size) >= fast.serialization_time(size));
        prop_assert!(slow.serialization_time(size + 1) >= slow.serialization_time(size));
    }

    /// schedule() keeps the link-busy horizon monotone (no time travel).
    #[test]
    fn busy_horizon_monotone(sizes in proptest::collection::vec(1usize..4096, 1..32)) {
        let link = LinkModel::narrowband(64);
        let mut rng = StdRng::seed_from_u64(1);
        let mut busy = VirtualInstant::ZERO;
        let mut send = VirtualInstant::ZERO;
        for size in sizes {
            let (deliver, new_busy) = link.schedule(send, busy, size, &mut rng);
            prop_assert!(new_busy >= busy);
            prop_assert!(deliver >= new_busy); // latency ≥ 0
            busy = new_busy;
            send = send + VirtualDuration::from_micros(10);
        }
    }
}
