//! Self-tests: the checker must catch known-bad models and pass known-good
//! ones. These pin the checker's semantics before the ORB models rely on it.

use conccheck::sync::atomic::{AtomicU64, Ordering};
use conccheck::sync::Mutex;
use conccheck::{thread, Builder};
use std::sync::Arc;

/// A classic lost update: two threads do a non-atomic read-modify-write.
/// The checker must find the interleaving where both read the same value.
#[test]
fn racy_increment_is_caught() {
    let failure = Builder::new()
        .check_result(|| {
            let counter = Arc::new(AtomicU64::new(0));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let counter = Arc::clone(&counter);
                    thread::spawn(move || {
                        let v = counter.load(Ordering::SeqCst);
                        counter.store(v + 1, Ordering::SeqCst);
                    })
                })
                .collect();
            for h in handles {
                h.join();
            }
            assert_eq!(counter.load(Ordering::SeqCst), 2, "lost update");
        })
        .expect_err("the checker must find the lost-update interleaving");
    assert!(
        failure.reason.contains("lost update"),
        "unexpected failure reason: {}",
        failure.reason
    );
    assert!(!failure.schedule.is_empty());
}

/// The same counter guarded by a mutex must pass under every interleaving.
#[test]
fn mutexed_increment_passes() {
    let report = Builder::new()
        .check_result(|| {
            let counter = Arc::new(Mutex::new(0u64));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let counter = Arc::clone(&counter);
                    thread::spawn(move || *counter.lock() += 1)
                })
                .collect();
            for h in handles {
                h.join();
            }
            assert_eq!(*counter.lock(), 2);
        })
        .expect("mutexed counter must be correct");
    assert!(report.complete, "search space should be exhausted");
    assert!(report.executions > 1, "more than one interleaving must exist");
}

/// Compare-exchange retry loops are also race-free.
#[test]
fn cas_increment_passes() {
    Builder::new()
        .check(|| {
            let counter = Arc::new(AtomicU64::new(0));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let counter = Arc::clone(&counter);
                    thread::spawn(move || loop {
                        let v = counter.load(Ordering::SeqCst);
                        if counter
                            .compare_exchange(v, v + 1, Ordering::SeqCst, Ordering::SeqCst)
                            .is_ok()
                        {
                            break;
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join();
            }
            assert_eq!(counter.load(Ordering::SeqCst), 2);
        });
}

/// AB/BA lock ordering: the checker must find the deadlocking interleaving
/// and report it as a deadlock (not a hang).
#[test]
fn ab_ba_deadlock_is_caught() {
    let failure = Builder::new()
        .check_result(|| {
            let a = Arc::new(Mutex::new(()));
            let b = Arc::new(Mutex::new(()));
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            let t1 = thread::spawn(move || {
                let _ga = a.lock();
                let _gb = b.lock();
            });
            let t2 = thread::spawn(move || {
                let _gb = b2.lock();
                let _ga = a2.lock();
            });
            t1.join();
            t2.join();
        })
        .expect_err("the checker must find the AB/BA deadlock");
    assert!(
        failure.reason.contains("deadlock"),
        "unexpected failure reason: {}",
        failure.reason
    );
}

/// try_lock never blocks, so the AB/BA shape with try_lock on the second
/// acquisition cannot deadlock.
#[test]
fn try_lock_avoids_ab_ba_deadlock() {
    Builder::new()
        .check(|| {
            let a = Arc::new(Mutex::new(()));
            let b = Arc::new(Mutex::new(()));
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            let t1 = thread::spawn(move || {
                let _ga = a.lock();
                let _gb = b.try_lock();
            });
            let t2 = thread::spawn(move || {
                let _gb = b2.lock();
                let _ga = a2.try_lock();
            });
            t1.join();
            t2.join();
        });
}

/// Preemption bound 0 means threads run to completion in schedule order;
/// the lost-update race needs one preemption, so it must NOT be found.
/// This pins the meaning of the bound (and why the default is above zero).
#[test]
fn preemption_bound_zero_misses_the_race() {
    let report = Builder::new()
        .preemption_bound(0)
        .check_result(|| {
            let counter = Arc::new(AtomicU64::new(0));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let counter = Arc::clone(&counter);
                    thread::spawn(move || {
                        let v = counter.load(Ordering::SeqCst);
                        counter.store(v + 1, Ordering::SeqCst);
                    })
                })
                .collect();
            for h in handles {
                h.join();
            }
            assert_eq!(counter.load(Ordering::SeqCst), 2);
        })
        .expect("without preemptions each thread's RMW is atomic");
    assert!(report.complete);
}

/// yield_now is a pure decision point: it widens the explored schedule set
/// without touching state, and a correct model stays correct.
#[test]
fn yield_points_do_not_change_outcomes() {
    Builder::new()
        .check(|| {
            let counter = Arc::new(Mutex::new(0u64));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let counter = Arc::clone(&counter);
                    thread::spawn(move || {
                        thread::yield_now();
                        *counter.lock() += 1;
                        thread::yield_now();
                    })
                })
                .collect();
            for h in handles {
                h.join();
            }
            assert_eq!(*counter.lock(), 2);
        });
}

/// The execution cap stops runaway models and reports an incomplete search
/// instead of spinning forever.
#[test]
fn max_executions_caps_the_search() {
    let report = Builder::new()
        .max_executions(3)
        .check_result(|| {
            let counter = Arc::new(Mutex::new(0u64));
            let handles: Vec<_> = (0..3)
                .map(|_| {
                    let counter = Arc::clone(&counter);
                    thread::spawn(move || *counter.lock() += 1)
                })
                .collect();
            for h in handles {
                h.join();
            }
        })
        .expect("capped search should not fail a correct model");
    assert_eq!(report.executions, 3);
    assert!(!report.complete);
}
