//! Controlled threads for [`conccheck`](crate) models.

use crate::{with_scheduler, ThreadState, CURRENT};
use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

thread_local! {
    /// Real join handles of children spawned by this controlled thread;
    /// collected by the execution driver so every OS thread is reaped.
    static CHILDREN: RefCell<Vec<std::thread::JoinHandle<()>>> = const { RefCell::new(Vec::new()) };
}

pub(crate) fn take_children() -> Vec<std::thread::JoinHandle<()>> {
    CHILDREN.with(|c| std::mem::take(&mut *c.borrow_mut()))
}

/// Handle to a controlled thread; [`join`](JoinHandle::join) blocks the
/// caller (as a model-visible event) until the thread finishes.
pub struct JoinHandle {
    tid: usize,
    real: Option<std::thread::JoinHandle<()>>,
}

impl JoinHandle {
    /// Wait for the thread to finish. Panics raised inside the child are
    /// reported as model failures by the checker, not rethrown here.
    pub fn join(mut self) {
        let (sched, my_tid, target) =
            with_scheduler(|sched, tid| (Arc::clone(sched), tid, self.tid));
        let finished = {
            let inner = sched.lock_inner();
            inner.threads[target] == ThreadState::Finished
        };
        if !finished {
            sched.block_current(my_tid, ThreadState::BlockedOnJoin(target));
        }
        if let Some(real) = self.real.take() {
            let _ = real.join();
        }
    }
}

impl Drop for JoinHandle {
    fn drop(&mut self) {
        // An unjoined handle: hand the real handle to the driver so the
        // OS thread is still reaped at the end of the execution.
        if let Some(real) = self.real.take() {
            CHILDREN.with(|c| c.borrow_mut().push(real));
        }
    }
}

/// Spawn a controlled thread running `f`. The spawn itself is a
/// scheduling event: the child starts runnable but only executes when the
/// scheduler hands it the turn.
pub fn spawn<F>(f: F) -> JoinHandle
where
    F: FnOnce() + Send + 'static,
{
    let (sched, tid) = with_scheduler(|sched, _| (Arc::clone(sched), sched.register_thread()));
    let child_sched = Arc::clone(&sched);
    let real = std::thread::Builder::new()
        .name(format!("conccheck-{tid}"))
        .spawn(move || {
            CURRENT.with(|cur| *cur.borrow_mut() = Some((Arc::clone(&child_sched), tid)));
            // Wait for the first turn before touching shared state; the
            // spawner keeps running until its next decision point.
            let first_turn = catch_unwind(AssertUnwindSafe(|| child_sched.wait_for_turn(tid)));
            if first_turn.is_err() {
                child_sched.fail_abandoned_cleanup();
                return;
            }
            let result = catch_unwind(AssertUnwindSafe(f));
            let children = take_children();
            match result {
                Ok(()) => child_sched.finish_thread(tid),
                Err(payload) => {
                    let reason = crate::payload_to_string(payload);
                    if reason != crate::ABANDONED {
                        child_sched.fail(reason);
                    } else {
                        child_sched.fail_abandoned_cleanup();
                    }
                }
            }
            for child in children {
                let _ = child.join();
            }
        })
        .expect("spawn controlled thread");
    JoinHandle { tid, real: Some(real) }
}

/// Voluntarily offer a scheduling point.
pub fn yield_now() {
    with_scheduler(|sched, tid| sched.schedule(tid));
}
