//! Exhaustive interleaving exploration for small concurrency models.
//!
//! `conccheck` is a loom-style model checker built from scratch so the
//! workspace can verify its lock-free and lock-based algorithms without
//! external dependencies. A *model* is a closure that spawns a handful of
//! controlled threads ([`thread::spawn`]) operating on shared state built
//! from the shim primitives in [`sync`]. The checker runs the model under
//! **every** thread interleaving (up to a preemption bound), restarting it
//! once per schedule, and reports the first schedule on which the model
//! panics, asserts, or deadlocks.
//!
//! # How it works
//!
//! Only one model thread runs at a time. Every shim operation (mutex
//! acquire, atomic access, [`thread::yield_now`]) is a *decision point*:
//! the running thread hands control to a central scheduler, which picks
//! the next thread to run. Scheduling is deterministic given a *path* — a
//! sequence of choices — so the checker performs a depth-first search
//! over paths: run to completion, back up to the deepest decision point
//! with an untried alternative, and re-run with that alternative forced.
//!
//! A *preemption* is choosing a different thread while the current one is
//! still runnable. Exploration is exhaustive within
//! [`Builder::preemption_bound`] context switches of that kind; bounding
//! preemptions keeps the state space tractable and is known to find the
//! vast majority of real schedule bugs at small bounds (2–3).
//!
//! Deadlocks (every live thread blocked) and model panics are reported
//! with the offending schedule so a failure is replayable by eye.
//!
//! # Scope
//!
//! The shims cover what the MAQS models need: [`sync::Mutex`],
//! [`sync::atomic::AtomicU64`], [`sync::atomic::AtomicBool`],
//! [`thread::spawn`]/[`thread::JoinHandle`], [`thread::yield_now`].
//! Everything is sequentially consistent — this checker explores
//! *scheduling* nondeterminism, not weak-memory reordering. Condition
//! variables are deliberately absent: model waiters as polling loops,
//! which explores strictly more wake-up orders than a condvar would
//! allow.
//!
//! # Example
//!
//! ```
//! use conccheck::sync::Mutex;
//! use std::sync::Arc;
//!
//! conccheck::model(|| {
//!     let counter = Arc::new(Mutex::new(0u32));
//!     let handles: Vec<_> = (0..2)
//!         .map(|_| {
//!             let counter = Arc::clone(&counter);
//!             conccheck::thread::spawn(move || *counter.lock() += 1)
//!         })
//!         .collect();
//!     for h in handles {
//!         h.join();
//!     }
//!     assert_eq!(*counter.lock(), 2);
//! });
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::RefCell;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex as StdMutex, PoisonError};

pub mod sync;
pub mod thread;

/// Why a model failed, plus the schedule that got it there.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Human-readable reason: the panic payload or `"deadlock"`.
    pub reason: String,
    /// The thread chosen at each decision point of the failing run.
    pub schedule: Vec<usize>,
    /// Number of complete executions before the failure.
    pub executions: u64,
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "model failed after {} execution(s): {}\nschedule: {:?}",
            self.executions, self.reason, self.schedule
        )
    }
}

/// Summary of a completed exploration.
#[derive(Debug, Clone, Copy)]
pub struct Report {
    /// Interleavings executed.
    pub executions: u64,
    /// True if the search space was exhausted, false if the execution
    /// budget ran out first.
    pub complete: bool,
}

/// Exploration configuration.
#[derive(Debug, Clone, Copy)]
pub struct Builder {
    preemption_bound: usize,
    max_executions: u64,
}

impl Default for Builder {
    fn default() -> Builder {
        Builder { preemption_bound: 3, max_executions: 500_000 }
    }
}

/// Check `f` under every interleaving with the default bounds, panicking
/// on the first failing schedule.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    Builder::new().check(f);
}

impl Builder {
    /// Default configuration: preemption bound 3, 500 000 executions.
    pub fn new() -> Builder {
        Builder::default()
    }

    /// Maximum number of forced context switches away from a runnable
    /// thread per execution. Exploration is exhaustive within the bound.
    pub fn preemption_bound(mut self, bound: usize) -> Builder {
        self.preemption_bound = bound;
        self
    }

    /// Upper bound on executed interleavings (a runaway-model backstop).
    pub fn max_executions(mut self, max: u64) -> Builder {
        self.max_executions = max;
        self
    }

    /// Explore `f`, panicking with the failing schedule if any
    /// interleaving panics or deadlocks.
    pub fn check<F>(&self, f: F) -> Report
    where
        F: Fn() + Send + Sync + 'static,
    {
        match self.check_result(f) {
            Ok(report) => report,
            Err(failure) => panic!("{failure}"),
        }
    }

    /// Explore `f`, returning the first failure instead of panicking.
    /// This is how mutation tests assert that a *buggy* model is caught.
    pub fn check_result<F>(&self, f: F) -> Result<Report, Failure>
    where
        F: Fn() + Send + Sync + 'static,
    {
        let f = Arc::new(f);
        let mut path: Vec<PathEntry> = Vec::new();
        let mut executions: u64 = 0;
        loop {
            if executions >= self.max_executions {
                return Ok(Report { executions, complete: false });
            }
            executions += 1;
            let sched = Arc::new(Scheduler::new(path.clone(), self.preemption_bound));
            let outcome = run_once(&sched, Arc::clone(&f));
            let trace = sched.take_trace();
            if let Some(reason) = outcome {
                return Err(Failure {
                    reason,
                    schedule: trace.iter().map(|e| e.candidates[e.index]).collect(),
                    executions,
                });
            }
            // Depth-first backtracking: advance the deepest decision
            // point that still has an untried, bound-respecting
            // alternative; drop everything beneath it.
            path = trace;
            loop {
                match path.last_mut() {
                    None => return Ok(Report { executions, complete: true }),
                    Some(last) => {
                        if last.next_alternative() {
                            break;
                        }
                        path.pop();
                    }
                }
            }
        }
    }
}

/// One decision point on the exploration path.
#[derive(Debug, Clone)]
struct PathEntry {
    /// Runnable threads at this point. `candidates[0]` is the previously
    /// running thread when it is still runnable, so index > 0 with a
    /// runnable predecessor is a preemption.
    candidates: Vec<usize>,
    /// Which candidate this execution takes.
    index: usize,
    /// True when `candidates[0]` is the thread that was already running
    /// (i.e. alternatives cost a preemption).
    voluntary: bool,
    /// Preemptions consumed on the path *before* this point.
    preemptions_before: usize,
    /// Preemption budget (copied from the builder for `next_alternative`).
    budget: usize,
}

impl PathEntry {
    /// Advance to the next untried alternative within the preemption
    /// budget. Returns false when exhausted.
    fn next_alternative(&mut self) -> bool {
        let next = self.index + 1;
        if next >= self.candidates.len() {
            return false;
        }
        // Any alternative beyond index 0 of a voluntary point preempts
        // the running thread; respect the budget.
        if self.voluntary && self.preemptions_before >= self.budget {
            return false;
        }
        self.index = next;
        true
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ThreadState {
    Runnable,
    /// Waiting on a mutex (by resource id).
    BlockedOnMutex(usize),
    /// Waiting for another thread to finish.
    BlockedOnJoin(usize),
    Finished,
}

struct SchedInner {
    threads: Vec<ThreadState>,
    /// Thread whose turn it is to run.
    current: usize,
    /// Replay-then-record decision path for this execution.
    trace: Vec<PathEntry>,
    /// Decision points consumed so far.
    pos: usize,
    /// Replay prefix length (entries `< replay_len` reuse the recorded
    /// index; entries beyond it are fresh decisions).
    replay_len: usize,
    preemptions: usize,
    /// Set when the model panicked or deadlocked; all threads unwind.
    failed: Option<String>,
    /// Next mutex / resource id.
    next_resource: usize,
}

/// The per-execution scheduler: one turn token, handed between controlled
/// threads at decision points.
pub(crate) struct Scheduler {
    inner: StdMutex<SchedInner>,
    cv: Condvar,
    preemption_bound: usize,
}

thread_local! {
    pub(crate) static CURRENT: RefCell<Option<(Arc<Scheduler>, usize)>> =
        const { RefCell::new(None) };
}

/// Panic payload used to unwind controlled threads when the execution is
/// being abandoned (another thread failed); not itself a model failure.
pub(crate) const ABANDONED: &str = "__conccheck_abandoned__";

pub(crate) fn with_scheduler<R>(f: impl FnOnce(&Arc<Scheduler>, usize) -> R) -> R {
    CURRENT.with(|cur| {
        let cur = cur.borrow();
        let (sched, tid) = cur
            .as_ref()
            .expect("conccheck primitives may only be used inside conccheck::model");
        f(sched, *tid)
    })
}

impl Scheduler {
    fn new(path: Vec<PathEntry>, preemption_bound: usize) -> Scheduler {
        let replay_len = path.len();
        Scheduler {
            inner: StdMutex::new(SchedInner {
                threads: vec![ThreadState::Runnable],
                current: 0,
                trace: path,
                pos: 0,
                replay_len,
                preemptions: 0,
                failed: None,
                next_resource: 0,
            }),
            cv: Condvar::new(),
            preemption_bound,
        }
    }

    pub(crate) fn lock_inner(&self) -> std::sync::MutexGuard<'_, SchedInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Wait until it is `tid`'s turn, without making a scheduling
    /// decision (used by freshly spawned threads: the *spawner* keeps the
    /// turn, and some later decision point hands it over).
    pub(crate) fn wait_for_turn(&self, tid: usize) {
        let mut inner = self.lock_inner();
        self.check_abandoned(&inner);
        while inner.current != tid {
            inner = self.cv.wait(inner).unwrap_or_else(PoisonError::into_inner);
            self.check_abandoned(&inner);
        }
    }

    /// Wake everyone after this thread unwound from an abandoned
    /// execution (the failure is already recorded).
    pub(crate) fn fail_abandoned_cleanup(&self) {
        self.cv.notify_all();
    }

    fn take_trace(&self) -> Vec<PathEntry> {
        std::mem::take(&mut self.lock_inner().trace)
    }

    pub(crate) fn new_resource(&self) -> usize {
        let mut inner = self.lock_inner();
        inner.next_resource += 1;
        inner.next_resource
    }

    /// Register a new controlled thread; returns its tid. The spawner
    /// keeps running — the new thread waits for its first turn.
    pub(crate) fn register_thread(&self) -> usize {
        let mut inner = self.lock_inner();
        inner.threads.push(ThreadState::Runnable);
        inner.threads.len() - 1
    }

    /// The running thread offers a decision point: pick who runs next
    /// (possibly the caller again) and block until it is the caller's
    /// turn once more.
    pub(crate) fn schedule(&self, tid: usize) {
        let mut inner = self.lock_inner();
        self.check_abandoned(&inner);
        self.decide(&mut inner, tid);
        while inner.current != tid {
            inner = self.cv.wait(inner).unwrap_or_else(PoisonError::into_inner);
            self.check_abandoned(&inner);
        }
    }

    /// Block the calling thread on `state` until woken, handing the turn
    /// to some runnable thread.
    pub(crate) fn block_current(&self, tid: usize, state: ThreadState) {
        let mut inner = self.lock_inner();
        self.check_abandoned(&inner);
        inner.threads[tid] = state;
        self.decide(&mut inner, tid);
        while inner.current != tid || inner.threads[tid] != ThreadState::Runnable {
            inner = self.cv.wait(inner).unwrap_or_else(PoisonError::into_inner);
            self.check_abandoned(&inner);
        }
    }

    /// Wake every thread blocked on mutex `id` (they re-contend).
    pub(crate) fn wake_mutex_waiters(&self, id: usize) {
        let mut inner = self.lock_inner();
        for t in inner.threads.iter_mut() {
            if *t == ThreadState::BlockedOnMutex(id) {
                *t = ThreadState::Runnable;
            }
        }
    }

    /// Mark `tid` finished, wake joiners, hand the turn on.
    pub(crate) fn finish_thread(&self, tid: usize) {
        let mut inner = self.lock_inner();
        if inner.failed.is_some() {
            self.cv.notify_all();
            return;
        }
        inner.threads[tid] = ThreadState::Finished;
        for t in inner.threads.iter_mut() {
            if *t == ThreadState::BlockedOnJoin(tid) {
                *t = ThreadState::Runnable;
            }
        }
        self.decide(&mut inner, tid);
    }

    /// Record a model failure and wake everyone so the execution unwinds.
    pub(crate) fn fail(&self, reason: String) {
        let mut inner = self.lock_inner();
        if inner.failed.is_none() {
            inner.failed = Some(reason);
        }
        self.cv.notify_all();
    }

    pub(crate) fn failure(&self) -> Option<String> {
        self.lock_inner().failed.clone()
    }

    fn check_abandoned(&self, inner: &SchedInner) {
        if inner.failed.is_some() {
            // Unwind this thread; run_once reports the recorded failure.
            panic!("{ABANDONED}");
        }
    }

    /// Core decision logic: replay the path prefix, or record a fresh
    /// choice using the default policy (keep running the current thread).
    fn decide(&self, inner: &mut SchedInner, prev: usize) {
        let prev_runnable = inner.threads[prev] == ThreadState::Runnable;
        let mut candidates: Vec<usize> = Vec::new();
        if prev_runnable {
            candidates.push(prev);
        }
        for (tid, state) in inner.threads.iter().enumerate() {
            if *state == ThreadState::Runnable && tid != prev {
                candidates.push(tid);
            }
        }
        if candidates.is_empty() {
            let live = inner
                .threads
                .iter()
                .enumerate()
                .filter(|(_, s)| **s != ThreadState::Finished)
                .map(|(t, s)| format!("thread {t}: {s:?}"))
                .collect::<Vec<_>>();
            if live.is_empty() {
                // Everything finished; nothing left to schedule.
                self.cv.notify_all();
                return;
            }
            inner.failed = Some(format!("deadlock: {}", live.join(", ")));
            self.cv.notify_all();
            panic!("{ABANDONED}");
        }
        let pos = inner.pos;
        let chosen = if pos < inner.replay_len {
            let entry = &mut inner.trace[pos];
            // The enabled set must be identical on replay — scheduling
            // is deterministic — but recompute defensively.
            entry.candidates = candidates;
            entry.voluntary = prev_runnable;
            let idx = entry.index.min(entry.candidates.len() - 1);
            entry.index = idx;
            entry.candidates[idx]
        } else {
            let entry = PathEntry {
                candidates,
                index: 0,
                voluntary: prev_runnable,
                preemptions_before: inner.preemptions,
                budget: self.preemption_bound,
            };
            let chosen = entry.candidates[0];
            inner.trace.push(entry);
            chosen
        };
        if prev_runnable && chosen != prev {
            inner.preemptions += 1;
        }
        inner.pos += 1;
        inner.current = chosen;
        self.cv.notify_all();
    }
}

/// Run the model once under `sched`; returns the failure reason, if any.
fn run_once<F>(sched: &Arc<Scheduler>, f: Arc<F>) -> Option<String>
where
    F: Fn() + Send + Sync + 'static,
{
    let root_sched = Arc::clone(sched);
    let root = std::thread::Builder::new()
        .name("conccheck-0".into())
        .spawn(move || {
            CURRENT.with(|cur| *cur.borrow_mut() = Some((Arc::clone(&root_sched), 0)));
            let result = catch_unwind(AssertUnwindSafe(|| f()));
            match result {
                Ok(()) => root_sched.finish_thread(0),
                Err(payload) => {
                    let reason = payload_to_string(payload);
                    if reason == ABANDONED {
                        root_sched.fail_abandoned_cleanup();
                    } else {
                        root_sched.fail(reason);
                    }
                }
            }
            // Reap children after handing the turn on, so threads the
            // model never joined can still finish their work.
            for child in thread::take_children() {
                let _ = child.join();
            }
        })
        .expect("spawn model root thread");
    let _ = root.join();
    sched.failure().filter(|r| r != ABANDONED)
}

pub(crate) fn payload_to_string(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "model panicked".to_string()
    }
}
