//! Shim synchronization primitives whose every operation is a
//! [`conccheck`](crate) scheduling point.
//!
//! All primitives are sequentially consistent: the checker explores
//! scheduling nondeterminism, not weak-memory reordering, so `Ordering`
//! arguments on the atomics are accepted and ignored.

use crate::{with_scheduler, Scheduler, ThreadState};
use std::sync::{Arc, Mutex as StdMutex, PoisonError};

/// A model mutex. Acquisition is a scheduling point; contended
/// acquisition blocks the model thread until the holder releases.
///
/// The protected value is *moved into the guard* while held (and moved
/// back on release), which lets the guard hand out plain references with
/// no unsafe code even though other model threads run in between.
pub struct Mutex<T> {
    id: usize,
    inner: StdMutex<Slot<T>>,
}

struct Slot<T> {
    held: bool,
    value: Option<T>,
}

impl<T> Mutex<T> {
    /// Create a mutex owned by the current model execution.
    pub fn new(value: T) -> Mutex<T> {
        let id = with_scheduler(|sched, _| sched.new_resource());
        Mutex { id, inner: StdMutex::new(Slot { held: false, value: Some(value) }) }
    }

    fn slot(&self) -> std::sync::MutexGuard<'_, Slot<T>> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire the mutex, yielding to the scheduler first.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let (sched, tid) = with_scheduler(|sched, tid| (Arc::clone(sched), tid));
        loop {
            sched.schedule(tid);
            {
                let mut slot = self.slot();
                if !slot.held {
                    slot.held = true;
                    let value = slot.value.take().expect("unheld mutex must hold its value");
                    return MutexGuard { lock: self, sched, value: Some(value) };
                }
            }
            sched.block_current(tid, ThreadState::BlockedOnMutex(self.id));
        }
    }

    /// Attempt to acquire without blocking; still a scheduling point.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let (sched, tid) = with_scheduler(|sched, tid| (Arc::clone(sched), tid));
        sched.schedule(tid);
        let mut slot = self.slot();
        if slot.held {
            return None;
        }
        slot.held = true;
        let value = slot.value.take().expect("unheld mutex must hold its value");
        drop(slot);
        Some(MutexGuard { lock: self, sched, value: Some(value) })
    }
}

/// Guard for a model [`Mutex`]; releasing it wakes blocked threads.
pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
    sched: Arc<Scheduler>,
    value: Option<T>,
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.value.as_ref().expect("guard value present")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.value.as_mut().expect("guard value present")
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(&**self, f)
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        let mut slot = self.lock.slot();
        slot.value = self.value.take();
        slot.held = false;
        drop(slot);
        self.sched.wake_mutex_waiters(self.lock.id);
    }
}

/// Model atomics. Every access is a scheduling point.
pub mod atomic {
    use super::StdMutex;
    use crate::with_scheduler;
    use std::sync::PoisonError;

    /// Re-exported for API familiarity; the checker is sequentially
    /// consistent, so the ordering argument is ignored.
    pub use std::sync::atomic::Ordering;

    macro_rules! model_atomic {
        ($(#[$doc:meta])* $name:ident, $ty:ty) => {
            $(#[$doc])*
            pub struct $name {
                cell: StdMutex<$ty>,
            }

            impl $name {
                /// Create the atomic with `value`.
                pub fn new(value: $ty) -> $name {
                    $name { cell: StdMutex::new(value) }
                }

                fn with<R>(&self, f: impl FnOnce(&mut $ty) -> R) -> R {
                    with_scheduler(|sched, tid| sched.schedule(tid));
                    let mut cell = self.cell.lock().unwrap_or_else(PoisonError::into_inner);
                    f(&mut cell)
                }

                /// Sequentially consistent load.
                pub fn load(&self, _order: Ordering) -> $ty {
                    self.with(|v| *v)
                }

                /// Sequentially consistent store.
                pub fn store(&self, value: $ty, _order: Ordering) {
                    self.with(|v| *v = value)
                }

                /// Atomic swap, returning the previous value.
                pub fn swap(&self, value: $ty, _order: Ordering) -> $ty {
                    self.with(|v| std::mem::replace(v, value))
                }

                /// Atomic compare-exchange.
                pub fn compare_exchange(
                    &self,
                    current: $ty,
                    new: $ty,
                    _success: Ordering,
                    _failure: Ordering,
                ) -> Result<$ty, $ty> {
                    self.with(|v| {
                        if *v == current {
                            *v = new;
                            Ok(current)
                        } else {
                            Err(*v)
                        }
                    })
                }
            }
        };
    }

    model_atomic!(
        /// Model `AtomicU64`.
        AtomicU64,
        u64
    );
    model_atomic!(
        /// Model `AtomicUsize`.
        AtomicUsize,
        usize
    );
    model_atomic!(
        /// Model `AtomicBool`.
        AtomicBool,
        bool
    );

    impl AtomicU64 {
        /// Atomic add, returning the previous value.
        pub fn fetch_add(&self, delta: u64, _order: Ordering) -> u64 {
            self.with(|v| {
                let prev = *v;
                *v = v.wrapping_add(delta);
                prev
            })
        }
    }

    impl AtomicUsize {
        /// Atomic add, returning the previous value.
        pub fn fetch_add(&self, delta: usize, _order: Ordering) -> usize {
            self.with(|v| {
                let prev = *v;
                *v = v.wrapping_add(delta);
                prev
            })
        }
    }
}
