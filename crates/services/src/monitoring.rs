//! QoS monitoring: observing agreed quality and detecting violations.
//!
//! A QoS framework "also provides infrastructure services such as for
//! the negotiation of QoS agreements and for monitoring them" (§2.1).
//! The monitor keeps sliding windows of observations per (object,
//! metric), computes summary statistics, and raises violation events
//! when a window statistic crosses the agreed bound. Violations are the
//! trigger for renegotiation (adaptation).

use orb::sync::{LockRank, OrderedMutex};
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::Arc;

/// One measured sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Observation {
    /// The measured value (unit depends on the metric).
    pub value: f64,
}

/// How a bound constrains a window statistic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bound {
    /// The statistic must stay **at or below** the threshold.
    Max,
    /// The statistic must stay **at or above** the threshold.
    Min,
}

/// Which window statistic a bound applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Statistic {
    /// Arithmetic mean of the window.
    Mean,
    /// 95th percentile of the window.
    P95,
    /// The most recent sample.
    Last,
}

/// A detected QoS violation.
#[derive(Debug, Clone, PartialEq)]
pub struct ViolationEvent {
    /// The monitored object.
    pub object: String,
    /// The violated metric.
    pub metric: String,
    /// The observed statistic value.
    pub observed: f64,
    /// The agreed threshold.
    pub threshold: f64,
}

impl fmt::Display for ViolationEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{}: observed {:.3} violates threshold {:.3}",
            self.object, self.metric, self.observed, self.threshold
        )
    }
}

/// Callback invoked on each violation.
pub type ViolationHandler = Arc<dyn Fn(&ViolationEvent) + Send + Sync>;

struct Rule {
    statistic: Statistic,
    bound: Bound,
    threshold: f64,
}

struct Series {
    window: VecDeque<f64>,
    capacity: usize,
    rules: Vec<Rule>,
    violations: u64,
}

/// A sliding-window QoS monitor.
pub struct Monitor {
    series: OrderedMutex<HashMap<(String, String), Series>>,
    window: usize,
    handlers: OrderedMutex<Vec<ViolationHandler>>,
}

impl Monitor {
    /// A monitor keeping the last `window` samples per metric.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: usize) -> Monitor {
        assert!(window > 0, "window must be positive");
        Monitor {
            series: OrderedMutex::new(LockRank::MonitoringSeries, HashMap::new()),
            window,
            handlers: OrderedMutex::new(LockRank::MonitoringHandlers, Vec::new()),
        }
    }

    /// Register a violation handler (all handlers see all violations).
    pub fn on_violation(&self, handler: ViolationHandler) {
        self.handlers.lock().push(handler);
    }

    /// Constrain `statistic` of `(object, metric)` by `bound`/`threshold`.
    pub fn add_rule(
        &self,
        object: &str,
        metric: &str,
        statistic: Statistic,
        bound: Bound,
        threshold: f64,
    ) {
        let mut series = self.series.lock();
        let s = series
            .entry((object.to_string(), metric.to_string()))
            .or_insert_with(|| Series {
                window: VecDeque::new(),
                capacity: self.window,
                rules: Vec::new(),
                violations: 0,
            });
        s.rules.push(Rule { statistic, bound, threshold });
    }

    /// Remove all rules for `(object, metric)`, keeping the sample
    /// window. Renegotiation replaces agreed bounds wholesale: the old
    /// agreement's rules must not keep firing against the new terms.
    pub fn clear_rules(&self, object: &str, metric: &str) {
        if let Some(s) = self.series.lock().get_mut(&(object.to_string(), metric.to_string())) {
            s.rules.clear();
        }
    }

    /// Drop the accumulated samples for `(object, metric)`, keeping the
    /// rules. Adaptation uses this after healing a binding: samples
    /// measured before the repair describe a binding that no longer
    /// exists, and letting them linger would re-trigger the ladder on
    /// every healthy call.
    pub fn clear_window(&self, object: &str, metric: &str) {
        if let Some(s) = self.series.lock().get_mut(&(object.to_string(), metric.to_string())) {
            s.window.clear();
        }
    }

    /// Record a sample and evaluate the rules. Returns the violations
    /// raised by this sample.
    pub fn record(&self, object: &str, metric: &str, value: f64) -> Vec<ViolationEvent> {
        let mut events = Vec::new();
        {
            let mut series = self.series.lock();
            let s = series
                .entry((object.to_string(), metric.to_string()))
                .or_insert_with(|| Series {
                    window: VecDeque::new(),
                    capacity: self.window,
                    rules: Vec::new(),
                    violations: 0,
                });
            if s.window.len() == s.capacity {
                s.window.pop_front();
            }
            s.window.push_back(value);
            let snapshot: Vec<f64> = s.window.iter().copied().collect();
            for rule in &s.rules {
                let observed = compute(rule.statistic, &snapshot);
                let violated = match rule.bound {
                    Bound::Max => observed > rule.threshold,
                    Bound::Min => observed < rule.threshold,
                };
                if violated {
                    events.push(ViolationEvent {
                        object: object.to_string(),
                        metric: metric.to_string(),
                        observed,
                        threshold: rule.threshold,
                    });
                }
            }
            s.violations += events.len() as u64;
        }
        if !events.is_empty() {
            let handlers = self.handlers.lock().clone();
            for event in &events {
                for h in &handlers {
                    h(event);
                }
            }
        }
        events
    }

    /// Mean of the current window, if any samples exist.
    pub fn mean(&self, object: &str, metric: &str) -> Option<f64> {
        self.statistic(object, metric, Statistic::Mean)
    }

    /// 95th percentile of the current window, if any samples exist.
    pub fn p95(&self, object: &str, metric: &str) -> Option<f64> {
        self.statistic(object, metric, Statistic::P95)
    }

    /// An arbitrary statistic of the current window.
    pub fn statistic(&self, object: &str, metric: &str, stat: Statistic) -> Option<f64> {
        let series = self.series.lock();
        let s = series.get(&(object.to_string(), metric.to_string()))?;
        if s.window.is_empty() {
            return None;
        }
        let snapshot: Vec<f64> = s.window.iter().copied().collect();
        Some(compute(stat, &snapshot))
    }

    /// Total violations recorded for `(object, metric)`.
    pub fn violations(&self, object: &str, metric: &str) -> u64 {
        self.series
            .lock()
            .get(&(object.to_string(), metric.to_string()))
            .map(|s| s.violations)
            .unwrap_or(0)
    }
}

fn compute(stat: Statistic, window: &[f64]) -> f64 {
    match stat {
        Statistic::Mean => window.iter().sum::<f64>() / window.len() as f64,
        Statistic::Last => *window.last().expect("non-empty window"),
        Statistic::P95 => {
            let mut sorted = window.to_vec();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            let rank = ((sorted.len() as f64) * 0.95).ceil() as usize;
            sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn statistics_over_window() {
        let m = Monitor::new(5);
        for v in [1.0, 2.0, 3.0, 4.0, 5.0] {
            m.record("o", "latency", v);
        }
        assert_eq!(m.mean("o", "latency"), Some(3.0));
        assert_eq!(m.p95("o", "latency"), Some(5.0));
        assert_eq!(m.statistic("o", "latency", Statistic::Last), Some(5.0));
        // Window slides: pushing 11 evicts 1.
        m.record("o", "latency", 11.0);
        assert_eq!(m.mean("o", "latency"), Some(5.0));
        assert_eq!(m.statistic("none", "x", Statistic::Mean), None);
    }

    #[test]
    fn max_bound_violation() {
        let m = Monitor::new(3);
        m.add_rule("o", "latency_ms", Statistic::Mean, Bound::Max, 10.0);
        assert!(m.record("o", "latency_ms", 8.0).is_empty());
        assert!(m.record("o", "latency_ms", 9.0).is_empty());
        let events = m.record("o", "latency_ms", 30.0); // mean ≈ 15.7
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].threshold, 10.0);
        assert!(events[0].observed > 10.0);
        assert_eq!(m.violations("o", "latency_ms"), 1);
    }

    #[test]
    fn min_bound_violation() {
        let m = Monitor::new(4);
        m.add_rule("o", "availability", Statistic::Mean, Bound::Min, 0.9);
        m.record("o", "availability", 1.0);
        m.record("o", "availability", 1.0);
        assert!(m.record("o", "availability", 0.0).len() == 1); // mean 2/3
        assert_eq!(m.violations("o", "availability"), 1);
    }

    #[test]
    fn handlers_fire_per_violation() {
        let m = Monitor::new(2);
        m.add_rule("o", "x", Statistic::Last, Bound::Max, 1.0);
        let count = Arc::new(AtomicUsize::new(0));
        let seen = Arc::clone(&count);
        m.on_violation(Arc::new(move |e| {
            assert_eq!(e.metric, "x");
            seen.fetch_add(1, Ordering::Relaxed);
        }));
        m.record("o", "x", 0.5);
        m.record("o", "x", 2.0);
        m.record("o", "x", 3.0);
        assert_eq!(count.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn p95_rank_behaviour() {
        let m = Monitor::new(100);
        for i in 1..=100 {
            m.record("o", "v", i as f64);
        }
        assert_eq!(m.p95("o", "v"), Some(95.0));
        let m2 = Monitor::new(10);
        m2.record("o", "v", 7.0);
        assert_eq!(m2.p95("o", "v"), Some(7.0)); // single sample
    }

    #[test]
    fn multiple_rules_on_one_metric() {
        let m = Monitor::new(3);
        m.add_rule("o", "x", Statistic::Last, Bound::Max, 10.0);
        m.add_rule("o", "x", Statistic::Last, Bound::Min, 1.0);
        assert_eq!(m.record("o", "x", 0.5).len(), 1); // below min
        assert_eq!(m.record("o", "x", 20.0).len(), 1); // above max
        assert_eq!(m.record("o", "x", 5.0).len(), 0);
        assert_eq!(m.violations("o", "x"), 2);
    }

    #[test]
    fn clear_rules_stops_violations_but_keeps_window() {
        let m = Monitor::new(3);
        m.add_rule("o", "latency_us", Statistic::Last, Bound::Max, 10.0);
        assert_eq!(m.record("o", "latency_us", 50.0).len(), 1);
        m.clear_rules("o", "latency_us");
        assert!(m.record("o", "latency_us", 50.0).is_empty());
        // The sample window survives rule replacement.
        assert_eq!(m.mean("o", "latency_us"), Some(50.0));
        // Clearing an unknown series is a no-op.
        m.clear_rules("ghost", "x");
    }

    #[test]
    fn clear_window_drops_samples_but_keeps_rules() {
        let m = Monitor::new(4);
        m.add_rule("o", "availability", Statistic::Mean, Bound::Min, 0.9);
        m.record("o", "availability", 0.0);
        m.record("o", "availability", 0.0);
        // The poisoned window violates even on a healthy sample.
        assert!(!m.record("o", "availability", 1.0).is_empty());
        m.clear_window("o", "availability");
        assert_eq!(m.mean("o", "availability"), None);
        // Rules survive: fresh healthy samples pass, bad ones still trip.
        assert!(m.record("o", "availability", 1.0).is_empty());
        assert!(!m.record("o", "availability", 0.0).is_empty());
        // Clearing an unknown series is a no-op.
        m.clear_window("ghost", "x");
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_panics() {
        Monitor::new(0);
    }
}
