//! QoS infrastructure services.
//!
//! §2.2 of the paper: "infrastructure services for e.g. trading,
//! negotiation, monitoring and accounting should be an integral part of
//! the framework", and the outlook announces contract hierarchies for
//! client preferences (ref. \[5\]) and runtime negotiation/accounting as
//! the work following the ICDCS paper. This crate implements them:
//!
//! * [`contract`] — hierarchies of contracts expressing client
//!   preferences over QoS alternatives, with utility-based resolution;
//! * [`negotiation`] — the agreement protocol between client and server
//!   (offer → negotiate → agree/reject → renegotiate/release), wired to
//!   the server-side [`weaver::WovenServant`] delegate exchange, with a
//!   capacity model so rejections and adaptation actually happen;
//! * [`monitoring`] — sliding-window observation of agreed QoS
//!   (latency, availability, staleness) and violation detection;
//! * [`adaptation`] — degradation ladders: the ordered reactions
//!   (renegotiate → fallback → rebind → fail static) a self-healing
//!   binding walks when an agreement is violated, with an append-only
//!   event log;
//! * [`accounting`] — per-agreement usage metering and invoicing;
//! * [`trading`] — a trader matching service offers by interface type
//!   and required QoS characteristics;
//! * [`naming`] — a naming service for reference bootstrap;
//! * [`introspection`] — the telemetry plane served over the ORB:
//!   metrics snapshots, flight-recorder tails, health counters and the
//!   woven-deployment shape, answerable from any peer via GIOP;
//! * [`telemetry`] — the cluster aggregator on top of introspection:
//!   fleet-wide scrape, histogram merge, time-series retention, and
//!   agreement-derived SLO burn-rate alerting;
//! * [`catalog`] — the §6 pattern-style catalog documenting QoS
//!   characteristics for application developers and QoS implementors,
//!   with reusable-mechanism cross references.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accounting;
pub mod adaptation;
pub mod catalog;
pub mod contract;
pub mod introspection;
pub mod monitoring;
pub mod naming;
pub mod negotiation;
pub mod telemetry;
pub mod trading;

pub use accounting::{Accountant, Invoice, PriceModel};
pub use adaptation::{
    relax_params, AdaptationEvent, AdaptationLog, DegradationLadder, LadderStep, StepOutcome,
};
pub use catalog::{standard_catalog, CatalogEntry, Mechanism, QosCatalog};
pub use contract::{ContractHierarchy, ContractNode, Offer};
pub use introspection::{
    BindingInfo, Health, IntrospectionServant, Introspector, INTROSPECTION_KEY,
};
pub use monitoring::{Monitor, Observation, ViolationEvent};
pub use naming::{bind_name, resolve_name, NamingService, NAMING_KEY};
pub use negotiation::{Agreement, NegotiationServant, Negotiator, NEGOTIATOR_KEY};
pub use telemetry::{
    FleetSample, NodeSample, ScrapeDriver, SloAlert, SloAlertHandler, SloConfig, SloKind,
    SloObjective, SloStatus, TelemetryAggregator, TelemetryConfig,
};
pub use trading::{ServiceOffer, Trader, TRADER_KEY};
