//! Accounting: metering QoS-enabled communication.
//!
//! §6: "additional support is needed at runtime in order to allow
//! negotiation and accounting of QoS enabled communication … especially
//! when the price is embraced". The accountant meters usage per
//! agreement and prices it with a per-characteristic tariff, producing
//! invoices a client can compare against its preference utilities.

use orb::sync::{LockRank, OrderedRwLock};
use std::collections::HashMap;
use std::fmt;

/// Tariff for one QoS characteristic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PriceModel {
    /// Fixed price per invocation.
    pub per_call: f64,
    /// Price per payload byte.
    pub per_byte: f64,
    /// Fixed price per second of agreement lifetime.
    pub per_second: f64,
}

impl PriceModel {
    /// A flat per-call tariff.
    pub fn per_call(price: f64) -> PriceModel {
        PriceModel { per_call: price, per_byte: 0.0, per_second: 0.0 }
    }

    /// Price of a concrete usage record.
    pub fn price(&self, calls: u64, bytes: u64, seconds: f64) -> f64 {
        self.per_call * calls as f64 + self.per_byte * bytes as f64 + self.per_second * seconds
    }
}

#[derive(Debug, Clone, Default)]
struct Usage {
    calls: u64,
    bytes: u64,
    seconds: f64,
    characteristic: String,
}

/// An itemized invoice for one agreement.
#[derive(Debug, Clone, PartialEq)]
pub struct Invoice {
    /// The agreement billed.
    pub agreement_id: u64,
    /// The characteristic used.
    pub characteristic: String,
    /// Invocations metered.
    pub calls: u64,
    /// Payload bytes metered.
    pub bytes: u64,
    /// Agreement lifetime metered, in seconds.
    pub seconds: f64,
    /// Total due.
    pub total: f64,
}

impl fmt::Display for Invoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "agreement {} ({}): {} calls, {} bytes, {:.1}s => {:.4}",
            self.agreement_id, self.characteristic, self.calls, self.bytes, self.seconds, self.total
        )
    }
}

/// Meters usage per agreement and prices it per characteristic.
pub struct Accountant {
    tariffs: OrderedRwLock<HashMap<String, PriceModel>>,
    usage: OrderedRwLock<HashMap<u64, Usage>>,
}

impl Default for Accountant {
    fn default() -> Accountant {
        Accountant {
            tariffs: OrderedRwLock::new(LockRank::AccountingTariffs, HashMap::new()),
            usage: OrderedRwLock::new(LockRank::AccountingUsage, HashMap::new()),
        }
    }
}

impl Accountant {
    /// An accountant with no tariffs (unpriced usage costs zero).
    pub fn new() -> Accountant {
        Accountant::default()
    }

    /// Install the tariff for a characteristic.
    pub fn set_tariff(&self, characteristic: impl Into<String>, model: PriceModel) {
        self.tariffs.write().insert(characteristic.into(), model);
    }

    /// Meter one invocation of `bytes` payload under an agreement.
    pub fn record_call(&self, agreement_id: u64, characteristic: &str, bytes: u64) {
        let mut usage = self.usage.write();
        let u = usage.entry(agreement_id).or_default();
        u.calls += 1;
        u.bytes += bytes;
        u.characteristic = characteristic.to_string();
    }

    /// Meter agreement lifetime.
    pub fn record_lifetime(&self, agreement_id: u64, characteristic: &str, seconds: f64) {
        let mut usage = self.usage.write();
        let u = usage.entry(agreement_id).or_default();
        u.seconds += seconds;
        u.characteristic = characteristic.to_string();
    }

    /// Produce the invoice for an agreement (zeroes if never metered).
    pub fn invoice(&self, agreement_id: u64) -> Invoice {
        let usage = self.usage.read();
        let u = usage.get(&agreement_id).cloned().unwrap_or_default();
        let tariff = self
            .tariffs
            .read()
            .get(&u.characteristic)
            .copied()
            .unwrap_or(PriceModel { per_call: 0.0, per_byte: 0.0, per_second: 0.0 });
        Invoice {
            agreement_id,
            characteristic: u.characteristic.clone(),
            calls: u.calls,
            bytes: u.bytes,
            seconds: u.seconds,
            total: tariff.price(u.calls, u.bytes, u.seconds),
        }
    }

    /// Total due across all agreements.
    pub fn total_due(&self) -> f64 {
        let ids: Vec<u64> = self.usage.read().keys().copied().collect();
        ids.into_iter().map(|id| self.invoice(id).total).sum()
    }

    /// Close an agreement's account, returning the final invoice.
    pub fn close(&self, agreement_id: u64) -> Invoice {
        let invoice = self.invoice(agreement_id);
        self.usage.write().remove(&agreement_id);
        invoice
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metering_and_pricing() {
        let acc = Accountant::new();
        acc.set_tariff(
            "Replication",
            PriceModel { per_call: 0.01, per_byte: 0.0001, per_second: 0.5 },
        );
        acc.record_call(1, "Replication", 100);
        acc.record_call(1, "Replication", 300);
        acc.record_lifetime(1, "Replication", 10.0);
        let inv = acc.invoice(1);
        assert_eq!(inv.calls, 2);
        assert_eq!(inv.bytes, 400);
        let expected = 0.01 * 2.0 + 0.0001 * 400.0 + 0.5 * 10.0;
        assert!((inv.total - expected).abs() < 1e-9);
        assert!(inv.to_string().contains("agreement 1"));
    }

    #[test]
    fn unpriced_characteristic_costs_zero() {
        let acc = Accountant::new();
        acc.record_call(2, "Mystery", 1_000_000);
        assert_eq!(acc.invoice(2).total, 0.0);
    }

    #[test]
    fn unknown_agreement_is_empty_invoice() {
        let acc = Accountant::new();
        let inv = acc.invoice(42);
        assert_eq!(inv.calls, 0);
        assert_eq!(inv.total, 0.0);
    }

    #[test]
    fn totals_and_close() {
        let acc = Accountant::new();
        acc.set_tariff("A", PriceModel::per_call(1.0));
        acc.set_tariff("B", PriceModel::per_call(2.0));
        acc.record_call(1, "A", 0);
        acc.record_call(2, "B", 0);
        acc.record_call(2, "B", 0);
        assert!((acc.total_due() - 5.0).abs() < 1e-9);
        let final_inv = acc.close(2);
        assert!((final_inv.total - 4.0).abs() < 1e-9);
        assert!((acc.total_due() - 1.0).abs() < 1e-9);
        assert_eq!(acc.invoice(2).calls, 0); // account gone
    }

    #[test]
    fn price_model_components() {
        let m = PriceModel { per_call: 1.0, per_byte: 0.5, per_second: 2.0 };
        assert_eq!(m.price(2, 10, 3.0), 2.0 + 5.0 + 6.0);
        assert_eq!(PriceModel::per_call(3.0).price(2, 999, 999.0), 6.0);
    }
}
