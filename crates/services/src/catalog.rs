//! The QoS characteristic catalog.
//!
//! §6 of the paper: "We think, that a catalog similar to those for
//! design patterns is an appropriate way to document QoS
//! implementations", targeted at two groups — **application developers**
//! (how to use a characteristic, what adaptation they must provide) and
//! **QoS implementors** (which mechanisms a characteristic is built from
//! and which can be reused, e.g. "a multicast on network layer can be
//! used for k-availability as well as for diversity through majority
//! votes on results"). This module implements that catalog: pattern-style
//! entries with both audience views, reusable-mechanism cross references,
//! queries, and a rendered document. [`standard_catalog`] ships entries
//! for the five characteristics this repository implements.

use std::collections::HashMap;
use std::fmt::Write;

/// A reusable mechanism a characteristic is built from.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Mechanism {
    /// Short mechanism name (e.g. `network multicast`).
    pub name: String,
    /// Which layer it lives on (`application`, `transport`, `network`).
    pub layer: String,
}

impl Mechanism {
    /// A mechanism on a layer.
    pub fn new(name: &str, layer: &str) -> Mechanism {
        Mechanism { name: name.to_string(), layer: layer.to_string() }
    }
}

/// One pattern-style catalog entry.
#[derive(Debug, Clone, PartialEq)]
pub struct CatalogEntry {
    /// Characteristic name (matches the QIDL `qos` declaration).
    pub name: String,
    /// QoS category (fault_tolerance, performance, privacy, timeliness…).
    pub category: String,
    /// One-paragraph intent, pattern style.
    pub intent: String,
    /// For application developers: how to use it, what to adapt.
    pub developer_view: String,
    /// For QoS implementors: how it is built, what can be reused.
    pub implementor_view: String,
    /// The mechanisms it is composed from.
    pub mechanisms: Vec<Mechanism>,
    /// Names of related catalog entries.
    pub related: Vec<String>,
}

/// The catalog: entries indexed by name, with mechanism cross-references.
#[derive(Debug, Clone, Default)]
pub struct QosCatalog {
    entries: HashMap<String, CatalogEntry>,
}

impl QosCatalog {
    /// An empty catalog.
    pub fn new() -> QosCatalog {
        QosCatalog::default()
    }

    /// Add or replace an entry.
    pub fn add(&mut self, entry: CatalogEntry) {
        self.entries.insert(entry.name.clone(), entry);
    }

    /// Look up an entry.
    pub fn entry(&self, name: &str) -> Option<&CatalogEntry> {
        self.entries.get(name)
    }

    /// Entry names, sorted.
    pub fn names(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.entries.keys().map(String::as_str).collect();
        v.sort_unstable();
        v
    }

    /// Entries in a category, sorted by name.
    pub fn by_category(&self, category: &str) -> Vec<&CatalogEntry> {
        let mut v: Vec<&CatalogEntry> =
            self.entries.values().filter(|e| e.category == category).collect();
        v.sort_by(|a, b| a.name.cmp(&b.name));
        v
    }

    /// Characteristics that share a mechanism with `name` — the reuse
    /// question a QoS implementor asks the catalog.
    pub fn sharing_mechanisms(&self, name: &str) -> Vec<(&str, Vec<&Mechanism>)> {
        let Some(entry) = self.entries.get(name) else { return Vec::new() };
        let mut out = Vec::new();
        for other in self.entries.values() {
            if other.name == entry.name {
                continue;
            }
            let shared: Vec<&Mechanism> =
                other.mechanisms.iter().filter(|m| entry.mechanisms.contains(m)).collect();
            if !shared.is_empty() {
                out.push((other.name.as_str(), shared));
            }
        }
        out.sort_by(|a, b| a.0.cmp(b.0));
        out
    }

    /// All entries using a mechanism, sorted by name.
    pub fn users_of(&self, mechanism: &Mechanism) -> Vec<&str> {
        let mut v: Vec<&str> = self
            .entries
            .values()
            .filter(|e| e.mechanisms.contains(mechanism))
            .map(|e| e.name.as_str())
            .collect();
        v.sort_unstable();
        v
    }

    /// Render the whole catalog as a markdown document.
    pub fn to_markdown(&self) -> String {
        let mut out = String::from("# QoS characteristic catalog\n");
        for name in self.names() {
            let e = &self.entries[name];
            let _ = write!(
                out,
                "\n## {} ({})\n\n**Intent.** {}\n\n**For application developers.** {}\n\n\
                 **For QoS implementors.** {}\n\n**Mechanisms.** ",
                e.name, e.category, e.intent, e.developer_view, e.implementor_view
            );
            for (i, m) in e.mechanisms.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{} [{}]", m.name, m.layer);
            }
            out.push('\n');
            if !e.related.is_empty() {
                let _ = writeln!(out, "\n**Related.** {}", e.related.join(", "));
            }
        }
        out
    }
}

/// The catalog of the five characteristics implemented in `qosmech`.
pub fn standard_catalog() -> QosCatalog {
    let mut c = QosCatalog::new();
    c.add(CatalogEntry {
        name: "Replication".to_string(),
        category: "fault_tolerance".to_string(),
        intent: "Mask server crashes (and, with voting, value faults) by keeping a \
                 group of replicas; the service is available while one replica lives."
            .to_string(),
        developer_view: "Assign `with qos Replication`; expose object state via the \
                         `_get_state`/`_set_state` hooks so new replicas can be \
                         initialized; pick failover (cheap) or majority voting \
                         (masks value faults) in the agreement parameters."
            .to_string(),
        implementor_view: "Client mediator rewrites the call target per replica; \
                           fan-out uses the transport multicast module; majority \
                           voting quorums on equal results; membership and failure \
                           detection come from groupcomm."
            .to_string(),
        mechanisms: vec![
            Mechanism::new("network multicast", "transport"),
            Mechanism::new("group membership", "application"),
            Mechanism::new("state transfer", "application"),
            Mechanism::new("majority voting", "application"),
        ],
        related: vec!["LoadBalancing".to_string()],
    });
    c.add(CatalogEntry {
        name: "LoadBalancing".to_string(),
        category: "performance".to_string(),
        intent: "Spread invocations over equivalent servers to improve throughput \
                 and latency under skewed service times."
            .to_string(),
        developer_view: "Assign `with qos LoadBalancing`; all servers must be \
                         stateless or state-shared; choose round_robin, random or \
                         least_loaded in the agreement parameters."
            .to_string(),
        implementor_view: "Client mediator picks the target per call (EWMA response \
                           estimates for least-loaded); the server-side QoS \
                           implementation counts in-flight load via prolog/epilog \
                           and reports it through QoS operations."
            .to_string(),
        mechanisms: vec![
            Mechanism::new("target selection", "application"),
            Mechanism::new("load metering", "application"),
            Mechanism::new("group membership", "application"),
        ],
        related: vec!["Replication".to_string()],
    });
    c.add(CatalogEntry {
        name: "Compression".to_string(),
        category: "performance".to_string(),
        intent: "Trade CPU for bytes on the wire so small-bandwidth channels carry \
                 more payload."
            .to_string(),
        developer_view: "Assign `with qos Compression`; effective only for \
                         compressible payloads and narrow links — check the \
                         module's `stats()` ratio before keeping it."
            .to_string(),
        implementor_view: "A transport QoS module: LZ77-style transform outbound, \
                           inverse inbound; bind per client/object relationship; \
                           reusable beneath any characteristic that moves bulk data."
            .to_string(),
        mechanisms: vec![Mechanism::new("stream transform", "transport")],
        related: vec!["Encryption".to_string()],
    });
    c.add(CatalogEntry {
        name: "Encryption".to_string(),
        category: "privacy".to_string(),
        intent: "Keep request and reply contents confidential and tamper-evident \
                 on the wire."
            .to_string(),
        developer_view: "Assign `with qos Encryption`; agree keys via the peer \
                         operations (`exchange`, `rekey`); both ends must rekey \
                         together or traffic is rejected."
            .to_string(),
        implementor_view: "A transport QoS module: stream-cipher transform with \
                           per-message nonces and an integrity checksum; key \
                           agreement runs over the plain GIOP fallback path as \
                           module commands (QoS-to-QoS communication)."
            .to_string(),
        mechanisms: vec![
            Mechanism::new("stream transform", "transport"),
            Mechanism::new("key agreement", "application"),
        ],
        related: vec!["Compression".to_string()],
    });
    c.add(CatalogEntry {
        name: "Actuality".to_string(),
        category: "timeliness".to_string(),
        intent: "Bound how stale a result may be, trading freshness for latency \
                 and server load."
            .to_string(),
        developer_view: "Assign `with qos Actuality`; declare which operations are \
                         reads; negotiate `validity_ms`; renegotiate when the \
                         monitor reports staleness violations."
            .to_string(),
        implementor_view: "Client mediator caches read results for the agreed \
                           validity and invalidates on writes; the server-side \
                           implementation stamps replies in the epilog so staleness \
                           is measurable end to end."
            .to_string(),
        mechanisms: vec![
            Mechanism::new("result caching", "application"),
            Mechanism::new("freshness stamping", "application"),
        ],
        related: vec![],
    });
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_catalog_covers_all_characteristics() {
        let c = standard_catalog();
        assert_eq!(
            c.names(),
            vec!["Actuality", "Compression", "Encryption", "LoadBalancing", "Replication"]
        );
        for name in c.names() {
            let e = c.entry(name).unwrap();
            assert!(!e.intent.is_empty());
            assert!(!e.developer_view.is_empty());
            assert!(!e.implementor_view.is_empty());
            assert!(!e.mechanisms.is_empty());
        }
    }

    #[test]
    fn categories_partition_entries() {
        let c = standard_catalog();
        assert_eq!(c.by_category("performance").len(), 2);
        assert_eq!(c.by_category("fault_tolerance").len(), 1);
        assert_eq!(c.by_category("nonexistent").len(), 0);
    }

    #[test]
    fn mechanism_reuse_queries() {
        let c = standard_catalog();
        // The paper's own example: compression and encryption share the
        // transport stream-transform mechanism.
        let sharing = c.sharing_mechanisms("Compression");
        assert_eq!(sharing.len(), 1);
        assert_eq!(sharing[0].0, "Encryption");
        assert_eq!(sharing[0].1[0].name, "stream transform");
        // Group membership is reused by replication and load balancing.
        let users = c.users_of(&Mechanism::new("group membership", "application"));
        assert_eq!(users, vec!["LoadBalancing", "Replication"]);
        assert!(c.sharing_mechanisms("Ghost").is_empty());
    }

    #[test]
    fn markdown_rendering_contains_both_audiences() {
        let md = standard_catalog().to_markdown();
        assert!(md.contains("# QoS characteristic catalog"));
        assert!(md.contains("## Replication (fault_tolerance)"));
        assert!(md.contains("**For application developers.**"));
        assert!(md.contains("**For QoS implementors.**"));
        assert!(md.contains("network multicast [transport]"));
    }

    #[test]
    fn add_replaces_entries() {
        let mut c = QosCatalog::new();
        c.add(CatalogEntry {
            name: "X".to_string(),
            category: "a".to_string(),
            intent: "i1".to_string(),
            developer_view: "d".to_string(),
            implementor_view: "imp".to_string(),
            mechanisms: vec![],
            related: vec![],
        });
        let mut updated = c.entry("X").unwrap().clone();
        updated.intent = "i2".to_string();
        c.add(updated);
        assert_eq!(c.entry("X").unwrap().intent, "i2");
        assert_eq!(c.names().len(), 1);
    }
}
