//! Cluster telemetry plane: fleet scrape, histogram merge, and
//! agreement-derived SLO burn-rate alerts.
//!
//! The paper's monitoring concern (§5) closes the QoS loop only if
//! violations of *negotiated agreements* are observable where decisions
//! are made. Per-node metrics, flight recorders, and introspection
//! servants are islands; this module federates them. A
//! [`TelemetryAggregator`] periodically scrapes every watched node's
//! [`crate::introspection::IntrospectionServant`] **over GIOP** — metrics
//! snapshots, cursor-windowed flight events, health and wire state, and
//! the live negotiated agreements — and keeps:
//!
//! * a fixed-capacity time-series ring of [`FleetSample`]s, each holding
//!   the per-node *delta* snapshot (what happened since the previous
//!   scrape, via [`MetricsSnapshot::delta_since`]) — deterministic under
//!   netsim virtual time when given a virtual clock;
//! * merged fleet-level distributions: per-node histograms share the
//!   fixed bucket ladder, so [`HistogramSnapshot::merge`] is exact at
//!   bucket granularity and fleet quantiles are within one bucket
//!   boundary of a single registry observing every sample;
//! * an SLO engine that translates each scraped [`Agreement`]'s
//!   parameters into objectives — `deadline_ms` bounds the object's
//!   latency distribution, `availability` floors its success ratio,
//!   `validity_ms` bounds data staleness — each with an error budget
//!   (`1 - target`) and **multi-window burn-rate** evaluation: an alert
//!   fires only when the short *and* long windows both burn budget
//!   faster than [`SloConfig::burn_threshold`], the standard SRE recipe
//!   for alerts that are fast on real incidents and quiet on blips.
//!
//! Alerts are typed [`SloAlert`]s naming the violated agreement, node,
//! object and parameter; they are delivered to registered
//! [`SloAlertHandler`]s (with **no telemetry locks held**, so a handler
//! may re-enter lower-ranked services such as
//! [`crate::adaptation::AdaptationLog`]), recorded as `slo_alert` flight
//! events, and counted in `slo.*` metrics. RAFDA's policy/mechanism
//! split (PAPERS.md) is the model: *what to alert on* is policy derived
//! from agreements, not code.

use crate::adaptation::{AdaptationLog, LadderStep, StepOutcome};
use crate::introspection::{Health, Introspector};
use crate::monitoring::ViolationEvent;
use crate::negotiation::Agreement;
use netsim::NodeId;
use orb::export::prometheus_text_labeled;
use orb::sync::{LockRank, OrderedMutex, OrderedRwLock};
use orb::{FlightEventKind, HistogramSnapshot, MetricsSnapshot, Orb};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Default scrape period for [`TelemetryAggregator::start`], ms.
pub const DEFAULT_SCRAPE_INTERVAL_MS: u64 = 100;

/// SLO evaluation policy: windows, burn threshold, and the latency
/// target attached to deadline/validity agreements.
#[derive(Debug, Clone)]
pub struct SloConfig {
    /// Fraction of calls that must meet a `deadline_ms`/`validity_ms`
    /// bound for the objective to be healthy (the objective's target;
    /// `availability` agreements carry their own target value).
    pub latency_target: f64,
    /// Short burn window, µs (fast incident detection).
    pub short_window_us: u64,
    /// Long burn window, µs (suppresses blips).
    pub long_window_us: u64,
    /// Alert when both windows burn budget at ≥ this multiple of the
    /// sustainable rate (burn 1.0 = spending exactly the error budget).
    pub burn_threshold: f64,
    /// Minimum observations in the short window before an objective is
    /// evaluated at all — tiny windows produce meaningless ratios.
    pub min_samples: u64,
}

impl Default for SloConfig {
    fn default() -> SloConfig {
        SloConfig {
            latency_target: 0.99,
            short_window_us: 60_000_000,
            long_window_us: 300_000_000,
            burn_threshold: 10.0,
            min_samples: 8,
        }
    }
}

/// Aggregator configuration.
#[derive(Debug, Clone)]
pub struct TelemetryConfig {
    /// Background scrape period ([`TelemetryAggregator::start`]), ms.
    /// 0 disables the background driver (manual
    /// [`TelemetryAggregator::scrape_once`] still works).
    pub scrape_interval_ms: u64,
    /// Retained [`FleetSample`]s (fixed-capacity time-series ring).
    pub ring_capacity: usize,
    /// SLO evaluation policy.
    pub slo: SloConfig,
}

impl Default for TelemetryConfig {
    fn default() -> TelemetryConfig {
        TelemetryConfig {
            scrape_interval_ms: DEFAULT_SCRAPE_INTERVAL_MS,
            ring_capacity: 256,
            slo: SloConfig::default(),
        }
    }
}

/// What an objective measures, with the metric names prebuilt so
/// evaluation never formats strings.
#[derive(Debug, Clone, PartialEq)]
pub enum SloKind {
    /// Latency bound: observations of `histogram` at or under
    /// `threshold_us` are good, the rest (including ladder overflow)
    /// are bad. Derived from `deadline_ms`.
    Latency {
        /// Histogram metric name (`object.<key>.latency_us`).
        histogram: String,
        /// Good/bad cut, µs.
        threshold_us: u64,
    },
    /// Success-ratio floor: `requests` minus `errors` are good.
    /// Derived from `availability`.
    Availability {
        /// Request counter name (`object.<key>.requests`).
        requests: String,
        /// Error counter name (`object.<key>.errors`).
        errors: String,
    },
    /// Staleness bound over served data. Derived from `validity_ms`.
    Freshness {
        /// Histogram metric name (`qos.actuality.staleness_us`).
        histogram: String,
        /// Good/bad cut, µs.
        threshold_us: u64,
    },
}

/// One service-level objective, derived from a negotiated agreement (or
/// declared statically with [`TelemetryAggregator::add_objective`]).
#[derive(Debug, Clone, PartialEq)]
pub struct SloObjective {
    /// The node the objective is evaluated against.
    pub node: NodeId,
    /// The object the agreement covers.
    pub object: String,
    /// The agreement this objective was derived from (0 for static
    /// objectives).
    pub agreement_id: u64,
    /// The negotiated characteristic.
    pub characteristic: String,
    /// The agreement parameter that produced this objective
    /// (`deadline_ms`, `availability`, `validity_ms`).
    pub param: String,
    /// Target good fraction (0..1). The error budget is `1 - target`.
    pub target: f64,
    /// What is measured.
    pub kind: SloKind,
}

impl SloObjective {
    /// The error budget: the tolerable bad fraction, floored so a 100%
    /// target still yields a finite burn rate.
    pub fn budget(&self) -> f64 {
        (1.0 - self.target).max(1e-6)
    }

    /// `(total, bad)` observations this objective sees in one windowed
    /// delta snapshot.
    fn total_bad(&self, delta: &MetricsSnapshot) -> (u64, u64) {
        match &self.kind {
            SloKind::Latency { histogram, threshold_us }
            | SloKind::Freshness { histogram, threshold_us } => {
                let Some(h) = delta.histogram(histogram) else { return (0, 0) };
                let good: u64 = h
                    .buckets
                    .iter()
                    .filter(|(bound, _)| bound <= threshold_us)
                    .map(|(_, count)| count)
                    .sum();
                (h.count, h.count.saturating_sub(good))
            }
            SloKind::Availability { requests, errors } => {
                (delta.counter(requests), delta.counter(errors))
            }
        }
    }
}

/// Translate one agreement's parameters into objectives. Numeric
/// parameters only; unknown parameters derive nothing.
fn objectives_of(node: NodeId, agreement: &Agreement, slo: &SloConfig) -> Vec<SloObjective> {
    let mut out = Vec::new();
    for (param, value) in &agreement.params {
        let Some(n) = value.as_double().or_else(|| value.as_i64().map(|v| v as f64)) else {
            continue;
        };
        let base = |target: f64, kind: SloKind| SloObjective {
            node,
            object: agreement.object.clone(),
            agreement_id: agreement.id,
            characteristic: agreement.characteristic.clone(),
            param: param.clone(),
            target,
            kind,
        };
        match param.as_str() {
            "deadline_ms" => out.push(base(
                slo.latency_target,
                SloKind::Latency {
                    histogram: format!("object.{}.latency_us", agreement.object),
                    threshold_us: (n * 1_000.0) as u64,
                },
            )),
            "availability" => out.push(base(
                n.clamp(0.0, 1.0),
                SloKind::Availability {
                    requests: format!("object.{}.requests", agreement.object),
                    errors: format!("object.{}.errors", agreement.object),
                },
            )),
            "validity_ms" => out.push(base(
                slo.latency_target,
                SloKind::Freshness {
                    histogram: "qos.actuality.staleness_us".to_string(),
                    threshold_us: (n * 1_000.0) as u64,
                },
            )),
            _ => {}
        }
    }
    out
}

/// A fired (or cleared) burn-rate alert. Names everything an operator —
/// or the adaptation engine — needs to act: which agreement, on which
/// node, which object, which parameter, and how fast the budget burns.
#[derive(Debug, Clone, PartialEq)]
pub struct SloAlert {
    /// Aggregator clock at evaluation, µs.
    pub at_us: u64,
    /// The node whose objective is burning.
    pub node: NodeId,
    /// That node's name (from its health reply).
    pub node_name: String,
    /// The object the violated agreement covers.
    pub object: String,
    /// The violated agreement's id.
    pub agreement_id: u64,
    /// The negotiated characteristic.
    pub characteristic: String,
    /// The agreement parameter whose objective is burning.
    pub param: String,
    /// The objective's target good fraction.
    pub target: f64,
    /// Burn rate over the short window (multiples of sustainable).
    pub burn_short: f64,
    /// Burn rate over the long window.
    pub burn_long: f64,
    /// `false` when firing, `true` when a previously firing objective
    /// returned below threshold on both windows.
    pub resolved: bool,
}

impl std::fmt::Display for SloAlert {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} agreement #{} {}/{} {} on {} (node {}): burn short={:.1} long={:.1} target={}",
            if self.resolved { "resolved" } else { "FIRING" },
            self.agreement_id,
            self.characteristic,
            self.param,
            self.object,
            self.node_name,
            self.node.0,
            self.burn_short,
            self.burn_long,
            self.target,
        )
    }
}

/// Callback invoked for each alert transition (fire and resolve). Called
/// with no telemetry locks held, so handlers may take lower-ranked locks
/// (adaptation log, monitors, negotiation).
pub type SloAlertHandler = Arc<dyn Fn(&SloAlert) + Send + Sync>;

/// One node's slice of a [`FleetSample`].
#[derive(Debug, Clone)]
pub struct NodeSample {
    /// The scraped node.
    pub node: NodeId,
    /// Its name (from health; `node<N>` until first contact).
    pub name: String,
    /// Whether the scrape succeeded.
    pub up: bool,
    /// What the node recorded since the previous successful scrape.
    pub delta: MetricsSnapshot,
    /// The node's health counters, when the scrape succeeded.
    pub health: Option<Health>,
    /// Per-peer wire connection states (empty on netsim backends).
    pub wire: Vec<(NodeId, String)>,
    /// Flight events shipped by the cursor poll this scrape.
    pub fresh_events: u64,
}

/// One scrape cycle across the watched fleet.
#[derive(Debug, Clone)]
pub struct FleetSample {
    /// Aggregator clock at the scrape, µs.
    pub at_us: u64,
    /// Per-node results, watch order (node id ascending).
    pub nodes: Vec<NodeSample>,
}

/// Read-only view of one objective's current evaluation.
#[derive(Debug, Clone)]
pub struct SloStatus {
    /// The objective.
    pub objective: SloObjective,
    /// Short-window burn rate (`None` below `min_samples`).
    pub burn_short: Option<f64>,
    /// Long-window burn rate.
    pub burn_long: Option<f64>,
    /// Whether the objective is currently firing.
    pub firing: bool,
}

struct NodeState {
    name: String,
    /// Flight-event cursor: next sequence number to ask for.
    cursor: u64,
    /// Last successfully scraped cumulative snapshot (delta basis).
    last: Option<MetricsSnapshot>,
    /// Agreements reported by the node's last successful scrape.
    agreements: Vec<Agreement>,
    /// Latest health reply.
    health: Option<Health>,
    /// Latest wire states.
    wire: Vec<(NodeId, String)>,
    consecutive_errors: u32,
}

impl NodeState {
    fn new(node: NodeId) -> NodeState {
        NodeState {
            name: format!("node{}", node.0),
            cursor: 0,
            last: None,
            agreements: Vec::new(),
            health: None,
            wire: Vec::new(),
            consecutive_errors: 0,
        }
    }
}

struct AggState {
    nodes: BTreeMap<u32, NodeState>,
    ring: VecDeque<FleetSample>,
    /// Objectives declared by operators rather than derived from
    /// scraped agreements.
    statics: Vec<SloObjective>,
    /// Currently firing objectives: `(node, agreement_id, param)`.
    firing: BTreeSet<(u32, u64, String)>,
}

/// Raw results of scraping one node, before state integration.
struct ScrapePull {
    node: NodeId,
    up: bool,
    metrics: Option<MetricsSnapshot>,
    health: Option<Health>,
    wire: Vec<(NodeId, String)>,
    events: u64,
    next_cursor: Option<u64>,
    agreements: Option<Vec<Agreement>>,
}

/// The fleet aggregator. Create one per cluster observer (typically on
/// an ops node), [`watch`](TelemetryAggregator::watch) the nodes to
/// scrape, then either drive it manually with
/// [`scrape_once`](TelemetryAggregator::scrape_once) (deterministic —
/// what the netsim scenarios do) or spawn the background driver with
/// [`start`](TelemetryAggregator::start).
pub struct TelemetryAggregator {
    orb: Orb,
    introspector: Introspector,
    cfg: TelemetryConfig,
    /// Time source for ring timestamps and SLO windows. Defaults to the
    /// coarse process clock; netsim scenarios inject virtual time so
    /// windowing is seed-deterministic.
    clock: Arc<dyn Fn() -> u64 + Send + Sync>,
    state: OrderedMutex<AggState>,
    handlers: OrderedRwLock<Vec<SloAlertHandler>>,
}

impl TelemetryAggregator {
    /// An aggregator scraping through `orb`, with no watched nodes yet.
    ///
    /// The `telemetry.*`/`slo.*` counters are pre-registered on `orb`'s
    /// metrics so expositions show the plane as present-but-zero before
    /// the first scrape.
    pub fn new(orb: Orb, cfg: TelemetryConfig) -> TelemetryAggregator {
        let metrics = orb.metrics().clone();
        for name in [
            "telemetry.scrapes",
            "telemetry.scrape_errors",
            "telemetry.events_ingested",
            "slo.evaluations",
            "slo.alerts",
            "slo.resolved",
        ] {
            metrics.add(name, 0);
        }
        TelemetryAggregator {
            introspector: Introspector::new(orb.clone()),
            orb,
            cfg,
            clock: Arc::new(orb::clock::coarse_now_us),
            state: OrderedMutex::new(
                LockRank::TelemetryState,
                AggState {
                    nodes: BTreeMap::new(),
                    ring: VecDeque::new(),
                    statics: Vec::new(),
                    firing: BTreeSet::new(),
                },
            ),
            handlers: OrderedRwLock::new(LockRank::SloHandlers, Vec::new()),
        }
    }

    /// Replace the time source (ring timestamps and SLO windows).
    /// Netsim scenarios pass virtual time, e.g.
    /// `Arc::new(move || net.fault_now().as_nanos() / 1_000)`.
    #[must_use]
    pub fn with_clock(mut self, clock: Arc<dyn Fn() -> u64 + Send + Sync>) -> TelemetryAggregator {
        self.clock = clock;
        self
    }

    /// Add `node` to the scrape set (idempotent).
    pub fn watch(&self, node: NodeId) {
        self.state.lock().nodes.entry(node.0).or_insert_with(|| NodeState::new(node));
    }

    /// [`watch`](Self::watch) every node in `nodes`.
    pub fn watch_all(&self, nodes: &[NodeId]) {
        let mut state = self.state.lock();
        for &node in nodes {
            state.nodes.entry(node.0).or_insert_with(|| NodeState::new(node));
        }
    }

    /// Declare an objective not derived from any scraped agreement
    /// (ops policy, e.g. a latency bound on an un-negotiated object).
    pub fn add_objective(&self, objective: SloObjective) {
        self.state.lock().statics.push(objective);
    }

    /// Register an alert handler (fire and resolve transitions).
    pub fn on_alert(&self, handler: SloAlertHandler) {
        self.handlers.write().push(handler);
    }

    /// Feed alerts into an adaptation log: each firing alert is
    /// recorded as a renegotiation-recommended event triggered by a
    /// synthesized [`ViolationEvent`] (observed = short-window burn,
    /// threshold = the configured burn threshold), which is the form
    /// the self-healing ladder and its reports already consume.
    pub fn subscribe_adaptation(&self, log: Arc<AdaptationLog>) {
        let threshold = self.cfg.slo.burn_threshold;
        self.on_alert(Arc::new(move |alert| {
            if alert.resolved {
                return;
            }
            log.push(
                alert.object.clone(),
                ViolationEvent {
                    object: alert.object.clone(),
                    metric: format!("slo.{}", alert.param),
                    observed: alert.burn_short,
                    threshold,
                },
                &LadderStep::Renegotiate { relax_factor: 1.5 },
                alert.to_string(),
                StepOutcome::Failed("slo burn alert delivered; step not yet taken".to_string()),
            );
        }));
    }

    /// Scrape every watched node once, integrate the results, evaluate
    /// every objective, and return the alert transitions (fires and
    /// resolves). Deterministic given a deterministic clock and network.
    pub fn scrape_once(&self) -> Vec<SloAlert> {
        let started = std::time::Instant::now();
        let now = (self.clock)();
        let targets: Vec<(NodeId, u64)> = self
            .state
            .lock()
            .nodes
            .iter()
            .map(|(&id, ns)| (NodeId(id), ns.cursor))
            .collect();

        // Network phase: no telemetry locks held.
        let mut pulls = Vec::with_capacity(targets.len());
        for (node, cursor) in targets {
            pulls.push(self.pull(node, cursor));
        }

        // Integration + evaluation phase: telemetry state only.
        let metrics = self.orb.metrics().clone();
        let flight = self.orb.flight().clone();
        let (sample, alerts) = {
            let mut state = self.state.lock();
            let mut nodes = Vec::with_capacity(pulls.len());
            for pull in pulls {
                let ns = state
                    .nodes
                    .entry(pull.node.0)
                    .or_insert_with(|| NodeState::new(pull.node));
                let delta = match (&pull.metrics, &ns.last) {
                    (Some(cur), Some(prev)) => cur.delta_since(prev),
                    (Some(cur), None) => cur.clone(),
                    (None, _) => MetricsSnapshot::default(),
                };
                if let Some(cur) = pull.metrics {
                    ns.last = Some(cur);
                }
                if let Some(h) = &pull.health {
                    ns.name = h.node.clone();
                }
                if pull.health.is_some() {
                    ns.health = pull.health.clone();
                }
                if let Some(next) = pull.next_cursor {
                    ns.cursor = next;
                }
                if let Some(agreements) = pull.agreements {
                    ns.agreements = agreements;
                }
                ns.wire = pull.wire.clone();
                ns.consecutive_errors =
                    if pull.up { 0 } else { ns.consecutive_errors.saturating_add(1) };
                nodes.push(NodeSample {
                    node: pull.node,
                    name: ns.name.clone(),
                    up: pull.up,
                    delta,
                    health: pull.health,
                    wire: pull.wire,
                    fresh_events: pull.events,
                });
            }
            let sample = FleetSample { at_us: now, nodes };
            if state.ring.len() == self.cfg.ring_capacity {
                state.ring.pop_front();
            }
            state.ring.push_back(sample.clone());
            let alerts = self.evaluate(&mut state, now, &metrics);
            (sample, alerts)
        };

        // Bookkeeping + handler dispatch: no telemetry locks held.
        let up = sample.nodes.iter().filter(|n| n.up).count();
        let down = sample.nodes.len() - up;
        let events: u64 = sample.nodes.iter().map(|n| n.fresh_events).sum();
        metrics.incr("telemetry.scrapes");
        metrics.add("telemetry.scrape_errors", down as u64);
        metrics.add("telemetry.events_ingested", events);
        metrics.observe_us("telemetry.scrape_us", started.elapsed().as_micros() as u64);
        flight.record_detail(
            FlightEventKind::TelemetryScrape,
            "telemetry",
            None,
            format!("nodes={} up={up} events={events} alerts={}", sample.nodes.len(), alerts.len()),
        );
        for alert in &alerts {
            metrics.incr(if alert.resolved { "slo.resolved" } else { "slo.alerts" });
            flight.record_detail(
                FlightEventKind::SloAlert,
                "telemetry",
                None,
                alert.to_string(),
            );
        }
        let handlers = self.handlers.read().clone();
        for alert in &alerts {
            for handler in &handlers {
                handler(alert);
            }
        }
        alerts
    }

    /// Scrape one node. Pure network I/O; holds no aggregator locks.
    fn pull(&self, node: NodeId, cursor: u64) -> ScrapePull {
        let metrics = self.introspector.metrics_snapshot(node);
        let health = self.introspector.health(node);
        let up = metrics.is_ok() && health.is_ok();
        let wire = self.introspector.wire_health(node).unwrap_or_default();
        let (events, next_cursor) = match self.introspector.flight_since(node, cursor) {
            Ok(events) => {
                let next = events.last().map(|e| e.seq + 1);
                (events.len() as u64, next)
            }
            Err(_) => (0, None),
        };
        let agreements = self.introspector.agreements(node).ok();
        ScrapePull {
            node,
            up,
            metrics: metrics.ok(),
            health: health.ok(),
            wire,
            events,
            next_cursor,
            agreements,
        }
    }

    /// Every objective currently in force: statics plus those derived
    /// from each node's scraped agreements.
    fn all_objectives(&self, state: &AggState) -> Vec<SloObjective> {
        let mut out = state.statics.clone();
        for (&id, ns) in &state.nodes {
            for agreement in &ns.agreements {
                out.extend(objectives_of(NodeId(id), agreement, &self.cfg.slo));
            }
        }
        out
    }

    /// `(total, bad)` for `objective` over ring samples within the
    /// trailing `window_us` ending at `now`.
    fn window_total_bad(
        state: &AggState,
        objective: &SloObjective,
        now: u64,
        window_us: u64,
    ) -> (u64, u64) {
        let cutoff = now.saturating_sub(window_us);
        let mut total = 0u64;
        let mut bad = 0u64;
        for sample in state.ring.iter().rev() {
            if sample.at_us < cutoff {
                break;
            }
            for ns in &sample.nodes {
                if ns.node == objective.node {
                    let (t, b) = objective.total_bad(&ns.delta);
                    total += t;
                    bad += b;
                }
            }
        }
        (total, bad)
    }

    fn burn(objective: &SloObjective, total: u64, bad: u64) -> f64 {
        if total == 0 {
            return 0.0;
        }
        (bad as f64 / total as f64) / objective.budget()
    }

    /// Evaluate every objective against the ring, update the firing
    /// set, and return the transitions. Caller holds the state lock;
    /// `metrics` (higher rank) is the only other lock touched.
    fn evaluate(
        &self,
        state: &mut AggState,
        now: u64,
        metrics: &orb::MetricsRegistry,
    ) -> Vec<SloAlert> {
        let slo = &self.cfg.slo;
        let mut transitions = Vec::new();
        for objective in self.all_objectives(state) {
            metrics.incr("slo.evaluations");
            let (short_total, short_bad) =
                Self::window_total_bad(state, &objective, now, slo.short_window_us);
            if short_total < slo.min_samples {
                continue;
            }
            let (long_total, long_bad) =
                Self::window_total_bad(state, &objective, now, slo.long_window_us);
            let burn_short = Self::burn(&objective, short_total, short_bad);
            let burn_long = Self::burn(&objective, long_total, long_bad);
            metrics.observe_us("slo.burn_x100", (burn_short * 100.0) as u64);
            let key =
                (objective.node.0, objective.agreement_id, objective.param.clone());
            let firing_now =
                burn_short >= slo.burn_threshold && burn_long >= slo.burn_threshold;
            let was_firing = state.firing.contains(&key);
            if firing_now == was_firing {
                continue;
            }
            if firing_now {
                state.firing.insert(key);
            } else {
                state.firing.remove(&key);
            }
            let name = state
                .nodes
                .get(&objective.node.0)
                .map_or_else(|| format!("node{}", objective.node.0), |ns| ns.name.clone());
            transitions.push(SloAlert {
                at_us: now,
                node: objective.node,
                node_name: name,
                object: objective.object.clone(),
                agreement_id: objective.agreement_id,
                characteristic: objective.characteristic.clone(),
                param: objective.param.clone(),
                target: objective.target,
                burn_short,
                burn_long,
                resolved: !firing_now,
            });
        }
        transitions
    }

    /// The retained time-series ring, oldest first.
    pub fn samples(&self) -> Vec<FleetSample> {
        self.state.lock().ring.iter().cloned().collect()
    }

    /// Merge every node's latest cumulative snapshot into one
    /// fleet-level snapshot (exact for counters, bucket-exact for
    /// histograms).
    pub fn merged_snapshot(&self) -> MetricsSnapshot {
        let state = self.state.lock();
        let mut merged = MetricsSnapshot::default();
        for ns in state.nodes.values() {
            if let Some(snapshot) = &ns.last {
                merged.merge(snapshot);
            }
        }
        merged
    }

    /// The fleet-merged distribution of histogram `name`, if any node
    /// has recorded into it.
    pub fn fleet_histogram(&self, name: &str) -> Option<HistogramSnapshot> {
        self.merged_snapshot().histogram(name).cloned()
    }

    /// Per-node status: `(node, name, up, consecutive scrape errors)`.
    /// A node is "up" when its most recent scrape succeeded.
    pub fn node_status(&self) -> Vec<(NodeId, String, bool, u32)> {
        let state = self.state.lock();
        state
            .nodes
            .iter()
            .map(|(&id, ns)| {
                (
                    NodeId(id),
                    ns.name.clone(),
                    ns.last.is_some() && ns.consecutive_errors == 0,
                    ns.consecutive_errors,
                )
            })
            .collect()
    }

    /// Current evaluation of every objective (read-only; does not
    /// transition the firing set or invoke handlers).
    pub fn slo_status(&self) -> Vec<SloStatus> {
        let now = (self.clock)();
        let state = self.state.lock();
        let slo = &self.cfg.slo;
        self.all_objectives(&state)
            .into_iter()
            .map(|objective| {
                let (st, sb) =
                    Self::window_total_bad(&state, &objective, now, slo.short_window_us);
                let (lt, lb) =
                    Self::window_total_bad(&state, &objective, now, slo.long_window_us);
                let key =
                    (objective.node.0, objective.agreement_id, objective.param.clone());
                SloStatus {
                    burn_short: (st >= slo.min_samples)
                        .then(|| Self::burn(&objective, st, sb)),
                    burn_long: (lt >= slo.min_samples).then(|| Self::burn(&objective, lt, lb)),
                    firing: state.firing.contains(&key),
                    objective,
                }
            })
            .collect()
    }

    /// Prometheus exposition for the whole fleet: every node's latest
    /// cumulative snapshot labeled `node="<name>"`, then the merged
    /// fleet snapshot labeled `node="fleet"`.
    pub fn prometheus_fleet(&self) -> String {
        let per_node: Vec<(String, MetricsSnapshot)> = {
            let state = self.state.lock();
            state
                .nodes
                .values()
                .filter_map(|ns| ns.last.clone().map(|s| (ns.name.clone(), s)))
                .collect()
        };
        let mut out = String::new();
        let mut merged = MetricsSnapshot::default();
        for (name, snapshot) in &per_node {
            out.push_str(&prometheus_text_labeled(snapshot, &[("node", name)]));
            merged.merge(snapshot);
        }
        out.push_str(&prometheus_text_labeled(&merged, &[("node", "fleet")]));
        out
    }

    /// Spawn the background scrape driver
    /// ([`TelemetryConfig::scrape_interval_ms`] period, wall clock).
    /// Returns a guard that stops and joins the driver on drop. With a
    /// zero interval the guard is inert (scenario code calls
    /// [`scrape_once`](Self::scrape_once) itself).
    pub fn start(self: &Arc<Self>) -> ScrapeDriver {
        let stop = Arc::new(AtomicBool::new(false));
        if self.cfg.scrape_interval_ms == 0 {
            return ScrapeDriver { stop, handle: None };
        }
        let agg = Arc::clone(self);
        let flag = Arc::clone(&stop);
        let interval = std::time::Duration::from_millis(self.cfg.scrape_interval_ms);
        let handle = std::thread::Builder::new()
            .name("maqs-telemetry-scrape".to_string())
            .spawn(move || {
                while !flag.load(Ordering::Relaxed) {
                    std::thread::sleep(interval);
                    if flag.load(Ordering::Relaxed) {
                        break;
                    }
                    let _ = agg.scrape_once();
                }
            })
            .expect("spawn telemetry scrape driver");
        ScrapeDriver { stop, handle: Some(handle) }
    }
}

/// Guard for the background scrape thread: signals stop and joins on
/// drop (or explicitly via [`ScrapeDriver::stop`]).
pub struct ScrapeDriver {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl ScrapeDriver {
    /// Stop the driver and wait for the in-flight scrape to finish.
    pub fn stop(mut self) {
        self.halt();
    }

    fn halt(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ScrapeDriver {
    fn drop(&mut self) {
        self.halt();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orb::Any;

    fn agreement(params: Vec<(&str, Any)>) -> Agreement {
        Agreement {
            id: 7,
            object: "kv".to_string(),
            characteristic: "Replication".to_string(),
            params: params.into_iter().map(|(n, v)| (n.to_string(), v)).collect(),
            version: 1,
        }
    }

    #[test]
    fn agreements_translate_into_objectives() {
        let slo = SloConfig::default();
        let a = agreement(vec![
            ("deadline_ms", Any::ULongLong(5)),
            ("availability", Any::Double(0.999)),
            ("validity_ms", Any::ULongLong(2)),
            ("replicas", Any::ULongLong(3)), // not an SLO parameter
        ]);
        let objectives = objectives_of(NodeId(4), &a, &slo);
        assert_eq!(objectives.len(), 3);
        let latency = &objectives[0];
        assert_eq!(latency.param, "deadline_ms");
        assert_eq!(latency.agreement_id, 7);
        assert_eq!(latency.target, slo.latency_target);
        assert_eq!(
            latency.kind,
            SloKind::Latency { histogram: "object.kv.latency_us".to_string(), threshold_us: 5_000 }
        );
        let avail = &objectives[1];
        assert_eq!(avail.param, "availability");
        assert!((avail.target - 0.999).abs() < 1e-12);
        assert!((avail.budget() - 0.001).abs() < 1e-12);
        let fresh = &objectives[2];
        assert_eq!(fresh.param, "validity_ms");
        assert_eq!(
            fresh.kind,
            SloKind::Freshness {
                histogram: "qos.actuality.staleness_us".to_string(),
                threshold_us: 2_000
            }
        );
    }

    #[test]
    fn latency_objective_counts_overflow_as_bad() {
        let m = orb::MetricsRegistry::new();
        for us in [100, 200, 4_000] {
            m.observe_us("object.kv.latency_us", us);
        }
        m.observe_us("object.kv.latency_us", 9_000); // ladder overflow
        let objective = objectives_of(
            NodeId(1),
            &agreement(vec![("deadline_ms", Any::ULongLong(5))]),
            &SloConfig::default(),
        )
        .remove(0);
        let (total, bad) = objective.total_bad(&m.snapshot());
        assert_eq!(total, 4);
        assert_eq!(bad, 1, "only the overflow observation misses a 5ms deadline");
    }

    #[test]
    fn availability_objective_counts_errors() {
        let m = orb::MetricsRegistry::new();
        m.add("object.kv.requests", 50);
        m.add("object.kv.errors", 3);
        let objective = objectives_of(
            NodeId(1),
            &agreement(vec![("availability", Any::Double(0.9))]),
            &SloConfig::default(),
        )
        .remove(0);
        let (total, bad) = objective.total_bad(&m.snapshot());
        assert_eq!((total, bad), (50, 3));
        // bad fraction 0.06 over budget 0.1 → burn 0.6.
        let burn = TelemetryAggregator::burn(&objective, total, bad);
        assert!((burn - 0.6).abs() < 1e-9, "{burn}");
    }
}
