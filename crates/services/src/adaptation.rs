//! Degradation ladders: the vocabulary of self-healing adaptation.
//!
//! §3 of the paper frames adaptation as renegotiation — "varying
//! resource availability should be addressed through adaption, i.e.
//! renegotiations". This module generalises that single move into an
//! ordered **ladder** of increasingly drastic reactions to an agreement
//! violation:
//!
//! 1. **Renegotiate** — keep the characteristic, relax its parameters
//!    (e.g. a 2 ms deadline becomes 4 ms);
//! 2. **Fallback** — negotiate a weaker characteristic entirely
//!    (compression → none, quorum replication → primary-only);
//! 3. **Rebind** — keep the terms, move the binding to a live replica
//!    found by the failure detector;
//! 4. **Fail static** — stop calling: serve last-known-good replies for
//!    read operations, reject everything else with a typed error.
//!
//! The ladder itself is pure data; the adaptation *engine* that walks it
//! (subscribing to [`Monitor`](crate::Monitor) violations, talking to the
//! [`Negotiator`](crate::Negotiator) and steering the resilience
//! mediator) lives in the deployment layer (`maqs`), which is the only
//! place that has all the moving parts in scope. Every step taken is
//! recorded as an [`AdaptationEvent`] so operators can replay exactly
//! how a binding healed — or why it could not.

use orb::sync::{LockRank, OrderedMutex};
use crate::monitoring::ViolationEvent;
use orb::Any;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// One rung of a [`DegradationLadder`].
#[derive(Debug, Clone, PartialEq)]
pub enum LadderStep {
    /// Renegotiate the current agreement with relaxed parameters:
    /// `deadline_ms` and `validity_ms` are multiplied by `relax_factor`,
    /// `availability` floors are divided by it.
    Renegotiate {
        /// Multiplier applied to the agreement's bounds (> 1 relaxes).
        relax_factor: f64,
    },
    /// Release the current agreement and negotiate a weaker
    /// characteristic with the given parameters.
    Fallback {
        /// The weaker characteristic to fall back to.
        characteristic: String,
        /// Parameters for the fallback agreement.
        params: Vec<(String, Any)>,
    },
    /// Rebind to a live replica chosen by the failure detector.
    Rebind,
    /// Enter fail-static mode: cached replies for the listed read
    /// operations, typed errors for everything else.
    FailStatic {
        /// Operations that may be answered from the last-known-good cache.
        read_ops: Vec<String>,
    },
}

impl LadderStep {
    /// Short machine-readable name of the step, used in events/reports.
    pub fn name(&self) -> &'static str {
        match self {
            LadderStep::Renegotiate { .. } => "renegotiate",
            LadderStep::Fallback { .. } => "fallback",
            LadderStep::Rebind => "rebind",
            LadderStep::FailStatic { .. } => "fail_static",
        }
    }
}

impl fmt::Display for LadderStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LadderStep::Renegotiate { relax_factor } => {
                write!(f, "renegotiate (relax ×{relax_factor})")
            }
            LadderStep::Fallback { characteristic, .. } => {
                write!(f, "fallback → {characteristic}")
            }
            LadderStep::Rebind => write!(f, "rebind to live replica"),
            LadderStep::FailStatic { read_ops } => {
                write!(f, "fail static (cached reads: {})", read_ops.join(", "))
            }
        }
    }
}

/// An ordered sequence of [`LadderStep`]s, tried top to bottom when an
/// agreement violation fires. The engine advances past steps that fail
/// (or that were already consumed by an earlier violation) — a binding
/// only ever degrades, it never silently climbs back up.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DegradationLadder {
    steps: Vec<LadderStep>,
}

impl DegradationLadder {
    /// An empty ladder (violations are logged but nothing is done).
    pub fn new() -> DegradationLadder {
        DegradationLadder::default()
    }

    /// The conventional full ladder: renegotiate ×2, then rebind, then
    /// fail static for the given read operations. (A fallback rung is
    /// deployment-specific — add one with [`then`](Self::then).)
    pub fn standard<I, S>(read_ops: I) -> DegradationLadder
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        DegradationLadder::new()
            .then(LadderStep::Renegotiate { relax_factor: 2.0 })
            .then(LadderStep::Rebind)
            .then(LadderStep::FailStatic {
                read_ops: read_ops.into_iter().map(Into::into).collect(),
            })
    }

    /// Append a step to the ladder.
    #[must_use]
    pub fn then(mut self, step: LadderStep) -> DegradationLadder {
        self.steps.push(step);
        self
    }

    /// The steps, top (least drastic) first.
    pub fn steps(&self) -> &[LadderStep] {
        &self.steps
    }

    /// Number of rungs.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the ladder has no rungs.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

/// Relax agreement parameters by `factor` (> 1 loosens the terms):
/// upper bounds (`deadline_ms`, `validity_ms`) grow by the factor,
/// the `availability` floor shrinks by it. Everything else is kept.
pub fn relax_params(params: &[(String, Any)], factor: f64) -> Vec<(String, Any)> {
    if !factor.is_finite() || factor <= 0.0 {
        return params.to_vec();
    }
    params
        .iter()
        .map(|(name, value)| {
            let number = value.as_double().or_else(|| value.as_i64().map(|v| v as f64));
            let relaxed = match (name.as_str(), number) {
                ("deadline_ms" | "validity_ms", Some(n)) => Some(Any::Double(n * factor)),
                ("availability", Some(n)) => Some(Any::Double(n / factor)),
                _ => None,
            };
            (name.clone(), relaxed.unwrap_or_else(|| value.clone()))
        })
        .collect()
}

/// How one attempted ladder step ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepOutcome {
    /// The step healed the binding (for now).
    Succeeded,
    /// The step could not be applied; the engine moves down the ladder.
    Failed(String),
}

impl StepOutcome {
    /// Whether the step succeeded.
    pub fn is_success(&self) -> bool {
        matches!(self, StepOutcome::Succeeded)
    }
}

impl fmt::Display for StepOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StepOutcome::Succeeded => write!(f, "ok"),
            StepOutcome::Failed(why) => write!(f, "failed: {why}"),
        }
    }
}

/// One adaptation action, as recorded by the engine.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptationEvent {
    /// Monotonic sequence number (order of actions, all objects).
    pub seq: u64,
    /// The object whose binding was adapted.
    pub object: String,
    /// The violation that triggered the action.
    pub trigger: ViolationEvent,
    /// Name of the ladder step attempted ([`LadderStep::name`]).
    pub step: String,
    /// Human-readable detail (new terms, chosen replica, …).
    pub detail: String,
    /// How the step ended.
    pub outcome: StepOutcome,
}

impl fmt::Display for AdaptationEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "#{} {}: {} [{}] — {} ({})",
            self.seq, self.object, self.step, self.outcome, self.detail, self.trigger
        )
    }
}

/// A thread-safe, append-only log of [`AdaptationEvent`]s shared between
/// the adaptation engine and report renderers.
#[derive(Debug)]
pub struct AdaptationLog {
    events: OrderedMutex<Vec<AdaptationEvent>>,
    next_seq: AtomicU64,
}

impl Default for AdaptationLog {
    fn default() -> AdaptationLog {
        AdaptationLog {
            events: OrderedMutex::new(LockRank::AdaptationEvents, Vec::new()),
            next_seq: AtomicU64::new(0),
        }
    }
}

impl AdaptationLog {
    /// An empty log.
    pub fn new() -> AdaptationLog {
        AdaptationLog::default()
    }

    /// Append an event, assigning it the next sequence number.
    pub fn push(
        &self,
        object: impl Into<String>,
        trigger: ViolationEvent,
        step: &LadderStep,
        detail: impl Into<String>,
        outcome: StepOutcome,
    ) -> AdaptationEvent {
        let event = AdaptationEvent {
            seq: self.next_seq.fetch_add(1, Ordering::Relaxed),
            object: object.into(),
            trigger,
            step: step.name().to_string(),
            detail: detail.into(),
            outcome,
        };
        self.events.lock().push(event.clone());
        event
    }

    /// All events so far, in order.
    pub fn events(&self) -> Vec<AdaptationEvent> {
        self.events.lock().clone()
    }

    /// Number of events recorded.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn violation() -> ViolationEvent {
        ViolationEvent {
            object: "store".to_string(),
            metric: "latency_us".to_string(),
            observed: 5_000.0,
            threshold: 2_000.0,
        }
    }

    #[test]
    fn standard_ladder_orders_rungs_least_drastic_first() {
        let ladder = DegradationLadder::standard(["get"]);
        let names: Vec<&str> = ladder.steps().iter().map(LadderStep::name).collect();
        assert_eq!(names, vec!["renegotiate", "rebind", "fail_static"]);
        assert_eq!(ladder.len(), 3);
        assert!(!ladder.is_empty());
        assert!(DegradationLadder::new().is_empty());
    }

    #[test]
    fn then_appends_custom_rungs() {
        let ladder = DegradationLadder::new()
            .then(LadderStep::Renegotiate { relax_factor: 1.5 })
            .then(LadderStep::Fallback {
                characteristic: "Compression".to_string(),
                params: vec![("level".to_string(), Any::Long(0))],
            });
        assert_eq!(ladder.steps()[1].name(), "fallback");
        assert_eq!(format!("{}", ladder.steps()[1]), "fallback → Compression");
    }

    #[test]
    fn relax_params_loosens_bounds_only() {
        let params = vec![
            ("deadline_ms".to_string(), Any::ULongLong(2)),
            ("availability".to_string(), Any::Double(0.99)),
            ("validity_ms".to_string(), Any::Double(100.0)),
            ("replicas".to_string(), Any::ULong(3)),
            ("label".to_string(), Any::Str("x".into())),
        ];
        let relaxed = relax_params(&params, 2.0);
        assert_eq!(relaxed[0].1, Any::Double(4.0));
        let availability = relaxed[1].1.as_double().unwrap();
        assert!((availability - 0.495).abs() < 1e-9, "{availability}");
        assert_eq!(relaxed[2].1, Any::Double(200.0));
        assert_eq!(relaxed[3].1, Any::ULong(3), "non-bound params untouched");
        assert_eq!(relaxed[4].1, Any::Str("x".into()));
        // Nonsense factors degrade to identity instead of corrupting terms.
        assert_eq!(relax_params(&params, 0.0)[0].1, Any::ULongLong(2));
        assert_eq!(relax_params(&params, f64::NAN)[0].1, Any::ULongLong(2));
    }

    #[test]
    fn log_assigns_monotonic_sequence_numbers() {
        let log = AdaptationLog::new();
        assert!(log.is_empty());
        let e1 = log.push(
            "store",
            violation(),
            &LadderStep::Renegotiate { relax_factor: 2.0 },
            "deadline_ms 2 → 4",
            StepOutcome::Failed("no capacity".to_string()),
        );
        let e2 = log.push(
            "store",
            violation(),
            &LadderStep::Rebind,
            "rebound to s2",
            StepOutcome::Succeeded,
        );
        assert_eq!(e1.seq, 0);
        assert_eq!(e2.seq, 1);
        assert_eq!(log.len(), 2);
        let events = log.events();
        assert_eq!(events[0].step, "renegotiate");
        assert!(!events[0].outcome.is_success());
        assert!(events[1].outcome.is_success());
        // Display is stable enough to grep in test logs.
        let line = format!("{e2}");
        assert!(line.contains("rebind"), "{line}");
        assert!(line.contains("store"), "{line}");
    }
}
