//! Remote introspection: the node's telemetry plane served over the ORB.
//!
//! Every [`crate::negotiation`]-era service exposes *control* over QoS;
//! this one exposes *visibility*. An [`IntrospectionServant`] activated
//! under the well-known [`INTROSPECTION_KEY`] answers `metrics_snapshot`,
//! `flight_tail`, `flight_since`, `health`, `wire_health`, `bindings`,
//! and `agreements` — so any peer can pull a node's request-path
//! metrics, the flight-recorder timeline (tail or cursor-windowed),
//! liveness counters, wire connection states, the woven-deployment
//! shape, and the live negotiated agreements through plain GIOP
//! requests, with no side channel. The client half
//! ([`Introspector`]) mirrors [`crate::negotiation::Negotiator`]: a thin
//! helper that builds the well-known IOR and decodes the Any replies.
//!
//! The snapshots travel in the self-describing [`Any`] forms defined by
//! [`orb::export::snapshot_to_any`] and [`orb::FlightEvent::to_any`], so
//! the wire format is versioned with the ORB, not with this service.

use orb::sync::{LockRank, OrderedRwLock};
use std::sync::Arc;

use netsim::NodeId;
use orb::export::{snapshot_from_any, snapshot_to_any};
use orb::{Any, FlightEvent, MetricsSnapshot, Orb, OrbError, Servant};

use crate::negotiation::Agreement;

/// Well-known object key the introspection servant is activated under.
pub const INTROSPECTION_KEY: &str = "introspection";

/// Repository id of the introspection interface.
pub const INTROSPECTION_INTERFACE: &str = "IDL:maqs/Introspection:1.0";

/// One woven binding as reported by the `bindings` operation: which
/// object is served, under which interface, with which QoS
/// characteristics installed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BindingInfo {
    /// Object key the servant is activated under.
    pub object: String,
    /// Repository id of the interface it implements.
    pub interface: String,
    /// Installed QoS characteristics (sorted).
    pub characteristics: Vec<String>,
}

impl BindingInfo {
    /// Wire form: `Struct("BindingInfo", ...)`.
    pub fn to_any(&self) -> Any {
        Any::Struct(
            "BindingInfo".to_string(),
            vec![
                ("object".to_string(), Any::from(self.object.as_str())),
                ("interface".to_string(), Any::from(self.interface.as_str())),
                (
                    "characteristics".to_string(),
                    Any::Sequence(
                        self.characteristics.iter().map(|c| Any::from(c.as_str())).collect(),
                    ),
                ),
            ],
        )
    }

    /// Decode the [`BindingInfo::to_any`] wire form.
    ///
    /// # Errors
    ///
    /// [`OrbError::BadParam`] if a field is missing or mistyped.
    pub fn from_any(v: &Any) -> Result<BindingInfo, OrbError> {
        let get = |name: &str| {
            v.field(name)
                .and_then(Any::as_str)
                .map(str::to_string)
                .ok_or_else(|| OrbError::BadParam(format!("BindingInfo missing `{name}`")))
        };
        Ok(BindingInfo {
            object: get("object")?,
            interface: get("interface")?,
            characteristics: v
                .field("characteristics")
                .and_then(Any::as_sequence)
                .unwrap_or(&[])
                .iter()
                .filter_map(|c| c.as_str().map(str::to_string))
                .collect(),
        })
    }
}

/// Liveness counters returned by the `health` operation: the ORB's wire
/// statistics plus the flight recorder's cumulative totals.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Health {
    /// Node name (the server's view of itself).
    pub node: String,
    /// Requests dispatched by the server ORB.
    pub requests_handled: u64,
    /// Replies delivered to local callers.
    pub replies_matched: u64,
    /// Replies that arrived for no waiting caller.
    pub replies_orphaned: u64,
    /// Undecodable / un-unwrappable packets dropped at the wire.
    pub packets_dropped: u64,
    /// Requests answered via the collocated shortcut.
    pub collocated_calls: u64,
    /// Lifecycle events ever recorded (counting survives ring overwrite).
    pub flight_events: u64,
    /// Flight dumps retained (circuit-open, deadline-exceeded, chaos).
    pub flight_dumps: u64,
}

impl Health {
    /// Wire form: `Struct("Health", ...)`.
    pub fn to_any(&self) -> Any {
        Any::Struct(
            "Health".to_string(),
            vec![
                ("node".to_string(), Any::from(self.node.as_str())),
                ("requests_handled".to_string(), Any::ULongLong(self.requests_handled)),
                ("replies_matched".to_string(), Any::ULongLong(self.replies_matched)),
                ("replies_orphaned".to_string(), Any::ULongLong(self.replies_orphaned)),
                ("packets_dropped".to_string(), Any::ULongLong(self.packets_dropped)),
                ("collocated_calls".to_string(), Any::ULongLong(self.collocated_calls)),
                ("flight_events".to_string(), Any::ULongLong(self.flight_events)),
                ("flight_dumps".to_string(), Any::ULongLong(self.flight_dumps)),
            ],
        )
    }

    /// Decode the [`Health::to_any`] wire form.
    ///
    /// # Errors
    ///
    /// [`OrbError::BadParam`] if a field is missing or mistyped.
    pub fn from_any(v: &Any) -> Result<Health, OrbError> {
        let get = |name: &str| {
            v.field(name)
                .and_then(Any::as_i64)
                .map(|n| n as u64)
                .ok_or_else(|| OrbError::BadParam(format!("Health missing `{name}`")))
        };
        Ok(Health {
            node: v
                .field("node")
                .and_then(Any::as_str)
                .map(str::to_string)
                .ok_or_else(|| OrbError::BadParam("Health missing `node`".to_string()))?,
            requests_handled: get("requests_handled")?,
            replies_matched: get("replies_matched")?,
            replies_orphaned: get("replies_orphaned")?,
            packets_dropped: get("packets_dropped")?,
            collocated_calls: get("collocated_calls")?,
            flight_events: get("flight_events")?,
            flight_dumps: get("flight_dumps")?,
        })
    }
}

/// Supplies the `bindings` reply: the deployment layer (which knows the
/// woven servants) closes over its registry so this service stays
/// decoupled from the weaver.
pub type BindingsProvider = Arc<dyn Fn() -> Vec<BindingInfo> + Send + Sync>;

/// Supplies the `agreements` reply: the deployment layer closes over its
/// [`crate::negotiation::NegotiationServant`] so this service stays
/// decoupled from negotiation the same way it is from the weaver.
pub type AgreementsProvider = Arc<dyn Fn() -> Vec<Agreement> + Send + Sync>;

/// The server half: answers introspection requests from the node's own
/// ORB state. Activate under [`INTROSPECTION_KEY`].
pub struct IntrospectionServant {
    orb: Orb,
    bindings: OrderedRwLock<Option<BindingsProvider>>,
    // Same rank as `bindings`: the two provider cells are independent
    // leaves, never held together.
    agreements: OrderedRwLock<Option<AgreementsProvider>>,
}

impl IntrospectionServant {
    /// A servant reporting on `orb`.
    pub fn new(orb: Orb) -> IntrospectionServant {
        IntrospectionServant {
            orb,
            bindings: OrderedRwLock::new(LockRank::IntrospectionBindings, None),
            agreements: OrderedRwLock::new(LockRank::IntrospectionBindings, None),
        }
    }

    /// Install (or replace) the `bindings` provider. Without one, the
    /// `bindings` operation reports an empty deployment.
    pub fn set_bindings_provider(&self, provider: BindingsProvider) {
        *self.bindings.write() = Some(provider);
    }

    /// Install (or replace) the `agreements` provider. Without one, the
    /// `agreements` operation reports no live agreements.
    pub fn set_agreements_provider(&self, provider: AgreementsProvider) {
        *self.agreements.write() = Some(provider);
    }

    fn health(&self) -> Health {
        let stats = self.orb.stats();
        let flight = self.orb.flight();
        Health {
            node: flight.node().to_string(),
            requests_handled: stats.requests_handled,
            replies_matched: stats.replies_matched,
            replies_orphaned: stats.replies_orphaned,
            packets_dropped: stats.packets_dropped,
            collocated_calls: stats.collocated_calls,
            flight_events: flight.total(),
            flight_dumps: flight.dumps().len() as u64,
        }
    }
}

impl Servant for IntrospectionServant {
    fn interface_id(&self) -> &str {
        INTROSPECTION_INTERFACE
    }

    fn dispatch(&self, op: &str, args: &[Any]) -> Result<Any, OrbError> {
        match op {
            "metrics_snapshot" => Ok(snapshot_to_any(&self.orb.metrics().snapshot())),
            "flight_tail" => {
                let n = args
                    .first()
                    .and_then(Any::as_i64)
                    .ok_or_else(|| OrbError::BadParam("flight_tail(n) needs a count".to_string()))?;
                let n = usize::try_from(n)
                    .map_err(|_| OrbError::BadParam(format!("flight_tail({n}): negative count")))?;
                Ok(Any::Sequence(
                    self.orb.flight().tail(n).iter().map(FlightEvent::to_any).collect(),
                ))
            }
            "flight_since" => {
                let seq = args.first().and_then(Any::as_i64).ok_or_else(|| {
                    OrbError::BadParam("flight_since(seq) needs a cursor".to_string())
                })?;
                let seq = u64::try_from(seq).map_err(|_| {
                    OrbError::BadParam(format!("flight_since({seq}): negative cursor"))
                })?;
                Ok(Any::Sequence(
                    self.orb.flight().since(seq).iter().map(FlightEvent::to_any).collect(),
                ))
            }
            "health" => Ok(self.health().to_any()),
            "wire_health" => Ok(Any::Sequence(
                self.orb
                    .wire()
                    .peer_health()
                    .into_iter()
                    .map(|(node, health)| {
                        Any::Struct(
                            "WireHealth".to_string(),
                            vec![
                                ("peer".to_string(), Any::ULongLong(u64::from(node.0))),
                                ("health".to_string(), Any::from(health.name())),
                            ],
                        )
                    })
                    .collect(),
            )),
            "bindings" => {
                let provider = self.bindings.read().clone();
                let infos = provider.map(|p| p()).unwrap_or_default();
                Ok(Any::Sequence(infos.iter().map(BindingInfo::to_any).collect()))
            }
            "agreements" => {
                let provider = self.agreements.read().clone();
                let live = provider.map(|p| p()).unwrap_or_default();
                Ok(Any::Sequence(live.iter().map(Agreement::to_any).collect()))
            }
            other => Err(OrbError::BadOperation(other.to_string())),
        }
    }
}

/// The client half: a thin helper that targets a remote node's
/// introspection servant through this process's ORB.
#[derive(Debug, Clone)]
pub struct Introspector {
    orb: Orb,
}

impl Introspector {
    /// An introspector invoking through `orb`.
    pub fn new(orb: Orb) -> Introspector {
        Introspector { orb }
    }

    fn ior(server: NodeId) -> orb::Ior {
        orb::Ior::new(INTROSPECTION_INTERFACE, server, INTROSPECTION_KEY)
    }

    /// Pull `server`'s full metrics snapshot.
    ///
    /// # Errors
    ///
    /// Propagates remote failures and decode errors.
    pub fn metrics_snapshot(&self, server: NodeId) -> Result<MetricsSnapshot, OrbError> {
        let reply = self.orb.invoke(&Self::ior(server), "metrics_snapshot", &[])?;
        snapshot_from_any(&reply)
    }

    /// The `n` most recent flight-recorder events on `server` (oldest of
    /// those first).
    ///
    /// # Errors
    ///
    /// Propagates remote failures and decode errors.
    pub fn flight_tail(&self, server: NodeId, n: usize) -> Result<Vec<FlightEvent>, OrbError> {
        let reply =
            self.orb.invoke(&Self::ior(server), "flight_tail", &[Any::ULongLong(n as u64)])?;
        reply
            .as_sequence()
            .ok_or_else(|| OrbError::BadParam("flight_tail: non-sequence reply".to_string()))?
            .iter()
            .map(FlightEvent::from_any)
            .collect()
    }

    /// Every flight event on `server` with sequence number ≥ `seq`
    /// (oldest first) — the cursor-based poll primitive. Start the
    /// cursor at 0, then advance it to `last.seq + 1` after each poll:
    /// consecutive polls neither re-ship nor miss events (a ring
    /// overwrite shows up as a gap in the first returned `seq`).
    ///
    /// # Errors
    ///
    /// Propagates remote failures and decode errors.
    pub fn flight_since(&self, server: NodeId, seq: u64) -> Result<Vec<FlightEvent>, OrbError> {
        let reply =
            self.orb.invoke(&Self::ior(server), "flight_since", &[Any::ULongLong(seq)])?;
        reply
            .as_sequence()
            .ok_or_else(|| OrbError::BadParam("flight_since: non-sequence reply".to_string()))?
            .iter()
            .map(FlightEvent::from_any)
            .collect()
    }

    /// `server`'s liveness counters.
    ///
    /// # Errors
    ///
    /// Propagates remote failures and decode errors.
    pub fn health(&self, server: NodeId) -> Result<Health, OrbError> {
        let reply = self.orb.invoke(&Self::ior(server), "health", &[])?;
        Health::from_any(&reply)
    }

    /// Per-peer wire connection health on `server` (`(peer, state)`
    /// pairs, where state is `up`, `draining` or `down`), sorted by
    /// peer id. Empty for backends without pooled connections (netsim).
    ///
    /// # Errors
    ///
    /// Propagates remote failures and decode errors.
    pub fn wire_health(&self, server: NodeId) -> Result<Vec<(NodeId, String)>, OrbError> {
        let reply = self.orb.invoke(&Self::ior(server), "wire_health", &[])?;
        reply
            .as_sequence()
            .ok_or_else(|| OrbError::BadParam("wire_health: non-sequence reply".to_string()))?
            .iter()
            .map(|entry| {
                let peer = entry
                    .field("peer")
                    .and_then(Any::as_i64)
                    .ok_or_else(|| OrbError::BadParam("WireHealth missing `peer`".to_string()))?;
                let health = entry
                    .field("health")
                    .and_then(Any::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| OrbError::BadParam("WireHealth missing `health`".to_string()))?;
                Ok((NodeId(peer as u32), health))
            })
            .collect()
    }

    /// The woven deployment served by `server`.
    ///
    /// # Errors
    ///
    /// Propagates remote failures and decode errors.
    pub fn bindings(&self, server: NodeId) -> Result<Vec<BindingInfo>, OrbError> {
        let reply = self.orb.invoke(&Self::ior(server), "bindings", &[])?;
        reply
            .as_sequence()
            .ok_or_else(|| OrbError::BadParam("bindings: non-sequence reply".to_string()))?
            .iter()
            .map(BindingInfo::from_any)
            .collect()
    }

    /// The live negotiated agreements on `server`, sorted by id — what
    /// the telemetry plane turns into SLO objectives.
    ///
    /// # Errors
    ///
    /// Propagates remote failures and decode errors.
    pub fn agreements(&self, server: NodeId) -> Result<Vec<Agreement>, OrbError> {
        let reply = self.orb.invoke(&Self::ior(server), "agreements", &[])?;
        reply
            .as_sequence()
            .ok_or_else(|| OrbError::BadParam("agreements: non-sequence reply".to_string()))?
            .iter()
            .map(Agreement::from_any)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::Network;

    #[test]
    fn health_and_binding_round_trip_the_any_form() {
        let h = Health {
            node: "n1".to_string(),
            requests_handled: 7,
            replies_matched: 6,
            replies_orphaned: 1,
            packets_dropped: 2,
            collocated_calls: 3,
            flight_events: 42,
            flight_dumps: 1,
        };
        assert_eq!(Health::from_any(&h.to_any()).unwrap(), h);

        let b = BindingInfo {
            object: "bank".to_string(),
            interface: "IDL:Bank:1.0".to_string(),
            characteristics: vec!["Encryption".to_string(), "Replication".to_string()],
        };
        assert_eq!(BindingInfo::from_any(&b.to_any()).unwrap(), b);
    }

    #[test]
    fn servant_answers_every_operation_locally() {
        let net = Network::new(1);
        let orb = Orb::start(&net, "solo");
        let servant = IntrospectionServant::new(orb.clone());
        servant.set_bindings_provider(Arc::new(|| {
            vec![BindingInfo {
                object: "bank".to_string(),
                interface: "IDL:Bank:1.0".to_string(),
                characteristics: vec!["Encryption".to_string()],
            }]
        }));

        let snap = servant.dispatch("metrics_snapshot", &[]).unwrap();
        assert!(snapshot_from_any(&snap).is_ok());

        orb.flight().record_detail(
            orb::FlightEventKind::Negotiation,
            "negotiation",
            None,
            "probe".to_string(),
        );
        let tail = servant.dispatch("flight_tail", &[Any::ULongLong(8)]).unwrap();
        assert!(!tail.as_sequence().unwrap().is_empty());

        let all = servant.dispatch("flight_since", &[Any::ULongLong(0)]).unwrap();
        let events: Vec<FlightEvent> = all
            .as_sequence()
            .unwrap()
            .iter()
            .map(|v| FlightEvent::from_any(v).unwrap())
            .collect();
        assert!(!events.is_empty());
        let cursor = events.last().unwrap().seq + 1;
        let none = servant.dispatch("flight_since", &[Any::ULongLong(cursor)]).unwrap();
        assert!(none.as_sequence().unwrap().is_empty(), "cursor past the end is empty");

        servant.set_agreements_provider(Arc::new(|| {
            vec![Agreement {
                id: 9,
                object: "bank".to_string(),
                characteristic: "Replication".to_string(),
                params: vec![("deadline_ms".to_string(), Any::ULongLong(5))],
                version: 1,
            }]
        }));
        let live = servant.dispatch("agreements", &[]).unwrap();
        let decoded: Vec<Agreement> = live
            .as_sequence()
            .unwrap()
            .iter()
            .map(|v| Agreement::from_any(v).unwrap())
            .collect();
        assert_eq!(decoded.len(), 1);
        assert_eq!(decoded[0].id, 9);
        assert_eq!(decoded[0].params[0].0, "deadline_ms");

        let health = Health::from_any(&servant.dispatch("health", &[]).unwrap()).unwrap();
        assert_eq!(health.node, "solo");
        assert!(health.flight_events >= 1);

        let bindings = servant.dispatch("bindings", &[]).unwrap();
        let infos: Vec<BindingInfo> = bindings
            .as_sequence()
            .unwrap()
            .iter()
            .map(|v| BindingInfo::from_any(v).unwrap())
            .collect();
        assert_eq!(infos.len(), 1);
        assert_eq!(infos[0].object, "bank");

        assert!(servant.dispatch("bogus", &[]).is_err());
        orb.shutdown();
    }
}
