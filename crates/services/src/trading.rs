//! Trading: discovering QoS-enabled services.
//!
//! The CORBA trading service analogue the paper lists among the
//! framework's infrastructure services: servers export *offers*
//! (interface type + supported QoS characteristics + object reference),
//! clients query by type and required characteristics. Because offers
//! carry the QoS tags, a client can discover not just *a* service but a
//! service able to enter the agreement it wants.

use orb::sync::{LockRank, OrderedRwLock};
use orb::{Any, Ior, Orb, OrbError, Servant};
use netsim::NodeId;

/// Conventional object key the trader is activated under.
pub const TRADER_KEY: &str = "trader";

/// Repository id of the trader interface.
pub const TRADER_INTERFACE: &str = "IDL:maqs/Trader:1.0";

/// One exported service offer.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceOffer {
    /// Interface repository id of the offered service.
    pub type_id: String,
    /// Reference to the service object.
    pub ior: Ior,
    /// QoS characteristics the server supports for this object.
    pub qos: Vec<String>,
}

/// The trader servant.
///
/// Wire operations:
///
/// * `export(ior_uri, qos: sequence<string>)` → offer id
/// * `withdraw(offer_id)` → `void`
/// * `query(type_id, required_qos: sequence<string>)` →
///   `sequence<string>` of IOR URIs whose offers support *all* required
///   characteristics
/// * `count()` → number of live offers
pub struct Trader {
    offers: OrderedRwLock<Vec<Option<ServiceOffer>>>,
}

impl Default for Trader {
    fn default() -> Trader {
        Trader { offers: OrderedRwLock::new(LockRank::TradingOffers, Vec::new()) }
    }
}

impl Trader {
    /// An empty trader.
    pub fn new() -> Trader {
        Trader::default()
    }

    /// Export an offer locally, returning its id.
    pub fn export(&self, offer: ServiceOffer) -> u64 {
        let mut offers = self.offers.write();
        offers.push(Some(offer));
        (offers.len() - 1) as u64
    }

    /// Withdraw an offer by id; `true` if it existed.
    pub fn withdraw(&self, id: u64) -> bool {
        let mut offers = self.offers.write();
        match offers.get_mut(id as usize) {
            Some(slot @ Some(_)) => {
                *slot = None;
                true
            }
            _ => false,
        }
    }

    /// Offers of `type_id` supporting all of `required_qos`.
    pub fn query(&self, type_id: &str, required_qos: &[String]) -> Vec<ServiceOffer> {
        self.offers
            .read()
            .iter()
            .flatten()
            .filter(|o| o.type_id == type_id)
            .filter(|o| required_qos.iter().all(|q| o.qos.contains(q)))
            .cloned()
            .collect()
    }

    /// Number of live offers.
    pub fn count(&self) -> usize {
        self.offers.read().iter().flatten().count()
    }
}

impl Servant for Trader {
    fn interface_id(&self) -> &str {
        TRADER_INTERFACE
    }

    fn dispatch(&self, op: &str, args: &[Any]) -> Result<Any, OrbError> {
        match op {
            "export" => {
                let uri = args
                    .first()
                    .and_then(Any::as_str)
                    .ok_or_else(|| OrbError::BadParam("export(ior_uri, qos)".to_string()))?;
                let ior = Ior::from_uri(uri)?;
                let qos = match args.get(1) {
                    Some(Any::Sequence(items)) => items
                        .iter()
                        .filter_map(|v| v.as_str().map(str::to_string))
                        .collect(),
                    _ => ior.qos_tags.clone(),
                };
                let id = self.export(ServiceOffer { type_id: ior.type_id.clone(), ior, qos });
                Ok(Any::ULongLong(id))
            }
            "withdraw" => {
                let id = args
                    .first()
                    .and_then(Any::as_i64)
                    .ok_or_else(|| OrbError::BadParam("withdraw(offer_id)".to_string()))?;
                Ok(Any::Bool(self.withdraw(id as u64)))
            }
            "query" => {
                let type_id = args
                    .first()
                    .and_then(Any::as_str)
                    .ok_or_else(|| OrbError::BadParam("query(type_id, qos)".to_string()))?;
                let required: Vec<String> = match args.get(1) {
                    Some(Any::Sequence(items)) => items
                        .iter()
                        .filter_map(|v| v.as_str().map(str::to_string))
                        .collect(),
                    _ => Vec::new(),
                };
                Ok(Any::Sequence(
                    self.query(type_id, &required)
                        .into_iter()
                        .map(|o| Any::Str(o.ior.to_uri()))
                        .collect(),
                ))
            }
            "count" => Ok(Any::ULongLong(self.count() as u64)),
            other => Err(OrbError::BadOperation(other.to_string())),
        }
    }
}

/// Client helper: query a remote trader and parse the returned IORs.
///
/// # Errors
///
/// Propagates remote failures and malformed IOR URIs.
pub fn query_trader(
    orb: &Orb,
    trader_node: NodeId,
    type_id: &str,
    required_qos: &[&str],
) -> Result<Vec<Ior>, OrbError> {
    let trader = Ior::new(TRADER_INTERFACE, trader_node, TRADER_KEY);
    let required =
        Any::Sequence(required_qos.iter().map(|q| Any::Str(q.to_string())).collect());
    let reply = orb.invoke(&trader, "query", &[Any::from(type_id), required])?;
    reply
        .as_sequence()
        .unwrap_or(&[])
        .iter()
        .filter_map(|v| v.as_str())
        .map(Ior::from_uri)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::Network;

    fn offer(node: u32, type_id: &str, qos: &[&str]) -> ServiceOffer {
        let mut ior = Ior::new(type_id, NodeId(node), "svc");
        for q in qos {
            ior = ior.with_qos_tag(*q);
        }
        ServiceOffer {
            type_id: type_id.to_string(),
            ior,
            qos: qos.iter().map(|s| s.to_string()).collect(),
        }
    }

    #[test]
    fn export_query_withdraw() {
        let t = Trader::new();
        let id1 = t.export(offer(1, "IDL:Bank:1.0", &["Replication"]));
        let _id2 = t.export(offer(2, "IDL:Bank:1.0", &["Replication", "Encryption"]));
        let _id3 = t.export(offer(3, "IDL:Feed:1.0", &["Actuality"]));
        assert_eq!(t.count(), 3);

        assert_eq!(t.query("IDL:Bank:1.0", &[]).len(), 2);
        assert_eq!(t.query("IDL:Bank:1.0", &["Encryption".to_string()]).len(), 1);
        assert_eq!(
            t.query("IDL:Bank:1.0", &["Encryption".to_string(), "Replication".to_string()])
                .len(),
            1
        );
        assert_eq!(t.query("IDL:Bank:1.0", &["Actuality".to_string()]).len(), 0);
        assert_eq!(t.query("IDL:Ghost:1.0", &[]).len(), 0);

        assert!(t.withdraw(id1));
        assert!(!t.withdraw(id1));
        assert!(!t.withdraw(99));
        assert_eq!(t.query("IDL:Bank:1.0", &[]).len(), 1);
        assert_eq!(t.count(), 2);
    }

    #[test]
    fn wire_interface_end_to_end() {
        let net = Network::new(1);
        let host = Orb::start(&net, "trader-host");
        let server = Orb::start(&net, "bank-host");
        let client = Orb::start(&net, "client");
        host.adapter().activate(TRADER_KEY, std::sync::Arc::new(Trader::new()));

        struct Nil;
        impl Servant for Nil {
            fn interface_id(&self) -> &str {
                "IDL:Bank:1.0"
            }
            fn dispatch(&self, op: &str, _a: &[Any]) -> Result<Any, OrbError> {
                Err(OrbError::BadOperation(op.to_string()))
            }
        }
        let bank = server.activate_with_tags("svc", Box::new(Nil), &["Replication"]);

        // Export over the wire, defaulting qos to the IOR tags.
        let trader_ior = Ior::new(TRADER_INTERFACE, host.node(), TRADER_KEY);
        client.invoke(&trader_ior, "export", &[Any::Str(bank.to_uri())]).unwrap();

        let found = query_trader(&client, host.node(), "IDL:Bank:1.0", &["Replication"]).unwrap();
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].node, server.node());
        let none = query_trader(&client, host.node(), "IDL:Bank:1.0", &["Encryption"]).unwrap();
        assert!(none.is_empty());
        host.shutdown();
        server.shutdown();
        client.shutdown();
    }

    #[test]
    fn wire_errors() {
        let t = Trader::new();
        assert!(t.dispatch("export", &[Any::Long(1)]).is_err());
        assert!(t.dispatch("export", &[Any::from("junk-uri")]).is_err());
        assert!(t.dispatch("withdraw", &[]).is_err());
        assert!(t.dispatch("query", &[]).is_err());
        assert!(t.dispatch("steal", &[]).is_err());
    }
}
