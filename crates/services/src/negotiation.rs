//! QoS negotiation: establishing, renegotiating and releasing agreements.
//!
//! §3 of the paper: "each QoS agreement has to be negotiated
//! independently. Moreover, varying resource availability should be
//! addressed through adaption, i.e. renegotiations if the resource
//! availability in- or decreases." The negotiation servant runs next to
//! the application objects; a successful negotiation performs the Fig. 2
//! *delegate exchange* on the woven servant. A capacity model per
//! characteristic makes rejection — and therefore preference-driven
//! adaptation — observable.
//!
//! Because negotiation requests travel as plain GIOP (Fig. 3's unbound
//! fallback path), no QoS machinery is needed to bootstrap QoS.

use orb::sync::{LockRank, OrderedRwLock};
use crate::contract::{ContractHierarchy, Offer};
use crate::monitoring::{Bound, Monitor, Statistic};
use orb::giop::QosContext;
use orb::{Any, FlightEventKind, Orb, OrbError, Servant};
use netsim::NodeId;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use weaver::WovenServant;

/// Conventional object key the negotiation servant is activated under.
pub const NEGOTIATOR_KEY: &str = "negotiator";

/// Repository id of the negotiation interface.
pub const NEGOTIATOR_INTERFACE: &str = "IDL:maqs/Negotiator:1.0";

/// An established QoS agreement.
#[derive(Debug, Clone, PartialEq)]
pub struct Agreement {
    /// Server-assigned agreement id.
    pub id: u64,
    /// The object the agreement covers.
    pub object: String,
    /// The negotiated characteristic.
    pub characteristic: String,
    /// The agreed parameter values.
    pub params: Vec<(String, Any)>,
    /// Version, bumped by each renegotiation.
    pub version: u64,
}

impl Agreement {
    /// The wire [`QosContext`] clients attach to calls under this
    /// agreement.
    pub fn to_context(&self) -> QosContext {
        let mut ctx = QosContext::new(self.characteristic.clone());
        for (n, v) in &self.params {
            ctx = ctx.with_param(n.clone(), v.clone());
        }
        ctx.with_param("_agreement_id", Any::ULongLong(self.id))
    }

    /// Encode as a self-describing [`Any`] — the wire form returned by
    /// the negotiation and introspection servants.
    pub fn to_any(&self) -> Any {
        Any::Struct(
            "Agreement".to_string(),
            vec![
                ("id".to_string(), Any::ULongLong(self.id)),
                ("object".to_string(), Any::Str(self.object.clone())),
                ("characteristic".to_string(), Any::Str(self.characteristic.clone())),
                ("version".to_string(), Any::ULongLong(self.version)),
                (
                    "params".to_string(),
                    Any::Struct("Params".to_string(), self.params.clone()),
                ),
            ],
        )
    }

    /// Decode the [`Agreement::to_any`] wire form.
    ///
    /// # Errors
    ///
    /// [`OrbError::Marshal`] on missing fields or a malformed params
    /// struct.
    pub fn from_any(v: &Any) -> Result<Agreement, OrbError> {
        let field = |name: &str| {
            v.field(name)
                .cloned()
                .ok_or_else(|| OrbError::Marshal(format!("Agreement missing field {name}")))
        };
        let params = match field("params")? {
            Any::Struct(_, fields) => fields,
            _ => return Err(OrbError::Marshal("Agreement params must be a struct".to_string())),
        };
        Ok(Agreement {
            id: field("id")?.as_i64().unwrap_or(0) as u64,
            object: field("object")?.as_str().unwrap_or_default().to_string(),
            characteristic: field("characteristic")?.as_str().unwrap_or_default().to_string(),
            version: field("version")?.as_i64().unwrap_or(0) as u64,
            params,
        })
    }
}

struct ObjectEntry {
    woven: Arc<WovenServant>,
    /// Capacity (max concurrent agreements) per characteristic.
    capacity: HashMap<String, usize>,
    /// Live agreement count per characteristic.
    active: HashMap<String, usize>,
}

/// The server-side negotiation servant.
///
/// Wire operations:
///
/// * `offer(object)` → `sequence<string>` of characteristics with free
///   capacity that are compatible with the object's current state
/// * `negotiate(object, characteristic, params-struct)` → `Agreement`
/// * `renegotiate(agreement_id, params-struct)` → `Agreement` (version+1)
/// * `release(agreement_id)` → `void`
/// * `capacity(object, characteristic)` → remaining slots
pub struct NegotiationServant {
    objects: OrderedRwLock<HashMap<String, ObjectEntry>>,
    agreements: OrderedRwLock<HashMap<u64, Agreement>>,
    next_id: AtomicU64,
    monitor: OrderedRwLock<Option<Arc<Monitor>>>,
}

impl Default for NegotiationServant {
    fn default() -> NegotiationServant {
        NegotiationServant {
            objects: OrderedRwLock::new(LockRank::NegotiationObjects, HashMap::new()),
            agreements: OrderedRwLock::new(LockRank::NegotiationAgreements, HashMap::new()),
            next_id: AtomicU64::new(0),
            monitor: OrderedRwLock::new(LockRank::NegotiationMonitor, None),
        }
    }
}

/// The metrics an agreement's parameters can put under observation,
/// and the parameter that governs each.
const MONITORED_METRICS: &[(&str, &str)] = &[
    ("deadline_ms", "latency_us"),
    ("availability", "availability"),
    ("validity_ms", "staleness_us"),
];

impl NegotiationServant {
    /// An empty negotiator.
    pub fn new() -> NegotiationServant {
        NegotiationServant { next_id: AtomicU64::new(1), ..NegotiationServant::default() }
    }

    /// Put `object` under negotiation control. `capacity` bounds
    /// concurrent agreements per characteristic; characteristics absent
    /// from the map are unlimited (if installed on the woven servant).
    pub fn register_object(
        &self,
        object: impl Into<String>,
        woven: Arc<WovenServant>,
        capacity: HashMap<String, usize>,
    ) {
        self.objects.write().insert(
            object.into(),
            ObjectEntry { woven, capacity, active: HashMap::new() },
        );
    }

    /// Shrink a characteristic's capacity at runtime (resource decrease).
    /// Existing agreements stay valid; new ones see the lower bound.
    pub fn set_capacity(&self, object: &str, characteristic: &str, capacity: usize) {
        if let Some(entry) = self.objects.write().get_mut(object) {
            entry.capacity.insert(characteristic.to_string(), capacity);
        }
    }

    /// Number of live agreements.
    pub fn live_agreements(&self) -> usize {
        self.agreements.read().len()
    }

    /// Every live agreement, sorted by id. This is what the
    /// introspection servant's `agreements` operation ships to the
    /// telemetry plane, where each agreement's parameters become SLO
    /// objectives.
    pub fn agreements(&self) -> Vec<Agreement> {
        let mut out: Vec<Agreement> = self.agreements.read().values().cloned().collect();
        out.sort_by_key(|a| a.id);
        out
    }

    /// Attach a [`Monitor`]: from now on every concluded (or
    /// renegotiated) agreement automatically installs violation rules
    /// derived from its parameters — `deadline_ms` bounds the last
    /// observed `latency_us`, `availability` puts a floor under the mean
    /// `availability`, and `validity_ms` bounds the last `staleness_us`.
    /// Releasing the agreement removes its rules.
    pub fn set_monitor(&self, monitor: Arc<Monitor>) {
        *self.monitor.write() = Some(monitor);
    }

    /// Replace the monitored bounds for `agreement`'s object with those
    /// its parameters imply.
    fn install_monitor_rules(&self, agreement: &Agreement) {
        let Some(monitor) = self.monitor.read().clone() else { return };
        for (_param, metric) in MONITORED_METRICS {
            monitor.clear_rules(&agreement.object, metric);
        }
        for (name, value) in &agreement.params {
            let number = value.as_double().or_else(|| value.as_i64().map(|v| v as f64));
            let Some(number) = number else { continue };
            match name.as_str() {
                "deadline_ms" => monitor.add_rule(
                    &agreement.object,
                    "latency_us",
                    Statistic::Last,
                    Bound::Max,
                    number * 1_000.0,
                ),
                "availability" => monitor.add_rule(
                    &agreement.object,
                    "availability",
                    Statistic::Mean,
                    Bound::Min,
                    number,
                ),
                "validity_ms" => monitor.add_rule(
                    &agreement.object,
                    "staleness_us",
                    Statistic::Last,
                    Bound::Max,
                    number * 1_000.0,
                ),
                _ => {}
            }
        }
    }

    fn clear_monitor_rules(&self, object: &str) {
        if let Some(monitor) = self.monitor.read().clone() {
            for (_param, metric) in MONITORED_METRICS {
                monitor.clear_rules(object, metric);
            }
        }
    }

    fn offers_for(&self, object: &str) -> Result<Vec<String>, OrbError> {
        let objects = self.objects.read();
        let entry = objects
            .get(object)
            .ok_or_else(|| OrbError::ObjectNotExist(format!("negotiable object {object}")))?;
        let installed = entry.woven.installed_characteristics();
        let active_char = entry.woven.active_characteristic();
        Ok(installed
            .into_iter()
            .filter(|c| {
                // One active characteristic per object: offers are the
                // active one (if capacity remains) or, when idle, all.
                match &active_char {
                    Some(a) if a != c && total_active(&entry.active) > 0 => false,
                    _ => remaining(entry, c) > 0,
                }
            })
            .collect())
    }

    fn negotiate(
        &self,
        object: &str,
        characteristic: &str,
        params: Vec<(String, Any)>,
    ) -> Result<Agreement, OrbError> {
        let mut objects = self.objects.write();
        let entry = objects
            .get_mut(object)
            .ok_or_else(|| OrbError::ObjectNotExist(format!("negotiable object {object}")))?;
        if !entry.woven.installed_characteristics().iter().any(|c| c == characteristic) {
            return Err(OrbError::QosViolation(format!(
                "`{characteristic}` is not available on `{object}`"
            )));
        }
        if let Some(active) = entry.woven.active_characteristic() {
            if active != characteristic && total_active(&entry.active) > 0 {
                return Err(OrbError::QosViolation(format!(
                    "`{object}` is operating under `{active}`; release those agreements first"
                )));
            }
        }
        if remaining(entry, characteristic) == 0 {
            return Err(OrbError::QosViolation(format!(
                "no capacity left for `{characteristic}` on `{object}`"
            )));
        }
        entry.woven.negotiate(characteristic)?;
        *entry.active.entry(characteristic.to_string()).or_insert(0) += 1;
        let agreement = Agreement {
            id: self.next_id.fetch_add(1, Ordering::Relaxed),
            object: object.to_string(),
            characteristic: characteristic.to_string(),
            params,
            version: 1,
        };
        self.agreements.write().insert(agreement.id, agreement.clone());
        self.install_monitor_rules(&agreement);
        Ok(agreement)
    }

    fn renegotiate(&self, id: u64, params: Vec<(String, Any)>) -> Result<Agreement, OrbError> {
        let updated = {
            let mut agreements = self.agreements.write();
            let agreement = agreements
                .get_mut(&id)
                .ok_or_else(|| OrbError::ObjectNotExist(format!("agreement {id}")))?;
            agreement.params = params;
            agreement.version += 1;
            agreement.clone()
        };
        self.install_monitor_rules(&updated);
        Ok(updated)
    }

    fn release(&self, id: u64) -> Result<(), OrbError> {
        let agreement = self
            .agreements
            .write()
            .remove(&id)
            .ok_or_else(|| OrbError::ObjectNotExist(format!("agreement {id}")))?;
        let mut objects = self.objects.write();
        if let Some(entry) = objects.get_mut(&agreement.object) {
            if let Some(n) = entry.active.get_mut(&agreement.characteristic) {
                *n = n.saturating_sub(1);
            }
            if total_active(&entry.active) == 0 {
                entry.woven.release();
            }
        }
        self.clear_monitor_rules(&agreement.object);
        Ok(())
    }
}

fn total_active(active: &HashMap<String, usize>) -> usize {
    active.values().sum()
}

fn remaining(entry: &ObjectEntry, characteristic: &str) -> usize {
    let used = entry.active.get(characteristic).copied().unwrap_or(0);
    match entry.capacity.get(characteristic) {
        Some(cap) => cap.saturating_sub(used),
        None => usize::MAX,
    }
}

fn params_from_any(v: Option<&Any>) -> Vec<(String, Any)> {
    match v {
        Some(Any::Struct(_, fields)) => fields.clone(),
        _ => Vec::new(),
    }
}

impl Servant for NegotiationServant {
    fn interface_id(&self) -> &str {
        NEGOTIATOR_INTERFACE
    }

    fn dispatch(&self, op: &str, args: &[Any]) -> Result<Any, OrbError> {
        let str_arg = |i: usize| {
            args.get(i)
                .and_then(Any::as_str)
                .map(str::to_string)
                .ok_or_else(|| OrbError::BadParam(format!("{op}: argument {i} must be a string")))
        };
        let id_arg = |i: usize| {
            args.get(i)
                .and_then(Any::as_i64)
                .map(|v| v as u64)
                .ok_or_else(|| OrbError::BadParam(format!("{op}: argument {i} must be an id")))
        };
        match op {
            "offer" => {
                let object = str_arg(0)?;
                Ok(Any::Sequence(
                    self.offers_for(&object)?.into_iter().map(Any::Str).collect(),
                ))
            }
            "negotiate" => {
                let object = str_arg(0)?;
                let characteristic = str_arg(1)?;
                let params = params_from_any(args.get(2));
                Ok(self.negotiate(&object, &characteristic, params)?.to_any())
            }
            "renegotiate" => {
                let id = id_arg(0)?;
                let params = params_from_any(args.get(1));
                Ok(self.renegotiate(id, params)?.to_any())
            }
            "release" => {
                self.release(id_arg(0)?)?;
                Ok(Any::Void)
            }
            "capacity" => {
                let object = str_arg(0)?;
                let characteristic = str_arg(1)?;
                let objects = self.objects.read();
                let entry = objects
                    .get(&object)
                    .ok_or_else(|| OrbError::ObjectNotExist(object.clone()))?;
                let r = remaining(entry, &characteristic);
                Ok(Any::ULongLong(r.min(u64::MAX as usize) as u64))
            }
            other => Err(OrbError::BadOperation(other.to_string())),
        }
    }
}

/// The client-side negotiation helper.
#[derive(Debug, Clone)]
pub struct Negotiator {
    orb: Orb,
}

impl Negotiator {
    /// A negotiator invoking through `orb`.
    pub fn new(orb: Orb) -> Negotiator {
        Negotiator { orb }
    }

    fn negotiator_ior(server: NodeId) -> orb::Ior {
        orb::Ior::new(NEGOTIATOR_INTERFACE, server, NEGOTIATOR_KEY)
    }

    /// Characteristics currently offered for `object` on `server`.
    ///
    /// # Errors
    ///
    /// Propagates remote failures.
    pub fn offers(&self, server: NodeId, object: &str) -> Result<Vec<String>, OrbError> {
        let reply =
            self.orb.invoke(&Self::negotiator_ior(server), "offer", &[Any::from(object)])?;
        Ok(reply
            .as_sequence()
            .unwrap_or(&[])
            .iter()
            .filter_map(|v| v.as_str().map(str::to_string))
            .collect())
    }

    /// Negotiate one concrete offer.
    ///
    /// # Errors
    ///
    /// [`OrbError::QosViolation`] when the server rejects (no capacity,
    /// conflicting active characteristic, not installed).
    pub fn negotiate_offer(
        &self,
        server: NodeId,
        object: &str,
        offer: &Offer,
    ) -> Result<Agreement, OrbError> {
        let params = Any::Struct("Params".to_string(), offer.params.clone());
        let reply = self.orb.invoke(
            &Self::negotiator_ior(server),
            "negotiate",
            &[Any::from(object), Any::from(offer.characteristic.as_str()), params],
        );
        self.note_outcome("negotiate", object, &offer.characteristic, reply.is_ok());
        Agreement::from_any(&reply?)
    }

    /// Negotiate the best satisfiable alternative of a client preference
    /// hierarchy, adapting when the server rejects: rejected
    /// characteristics are marked infeasible and the hierarchy is
    /// re-resolved, until agreement or exhaustion.
    ///
    /// Returns the concluded agreements and the achieved utility.
    ///
    /// # Errors
    ///
    /// [`OrbError::QosViolation`] if no alternative can be satisfied.
    pub fn negotiate_preferences(
        &self,
        server: NodeId,
        object: &str,
        preferences: &ContractHierarchy,
    ) -> Result<(Vec<Agreement>, f64), OrbError> {
        let offered = self.offers(server, object)?;
        let mut rejected: Vec<String> = Vec::new();
        loop {
            let feasible = |o: &Offer| {
                offered.iter().any(|c| c == &o.characteristic)
                    && !rejected.contains(&o.characteristic)
            };
            let Some((offers, utility)) = preferences.resolve(&feasible) else {
                return Err(OrbError::QosViolation(format!(
                    "no satisfiable alternative in `{}` for `{object}`",
                    preferences.name
                )));
            };
            let mut agreements = Vec::new();
            let mut failed = None;
            for offer in &offers {
                match self.negotiate_offer(server, object, offer) {
                    Ok(a) => agreements.push(a),
                    Err(_) => {
                        failed = Some(offer.characteristic.clone());
                        break;
                    }
                }
            }
            match failed {
                None => return Ok((agreements, utility)),
                Some(characteristic) => {
                    // Roll back partial progress, mark and re-resolve.
                    for a in agreements {
                        let _ = self.release(server, &a);
                    }
                    rejected.push(characteristic);
                }
            }
        }
    }

    /// Renegotiate an agreement's parameters (adaptation).
    ///
    /// # Errors
    ///
    /// Propagates remote failures.
    pub fn renegotiate(
        &self,
        server: NodeId,
        agreement: &Agreement,
        params: Vec<(String, Any)>,
    ) -> Result<Agreement, OrbError> {
        let reply = self.orb.invoke(
            &Self::negotiator_ior(server),
            "renegotiate",
            &[Any::ULongLong(agreement.id), Any::Struct("Params".to_string(), params)],
        );
        self.note_outcome("renegotiate", &agreement.object, &agreement.characteristic, reply.is_ok());
        Agreement::from_any(&reply?)
    }

    /// Release an agreement.
    ///
    /// # Errors
    ///
    /// Propagates remote failures.
    pub fn release(&self, server: NodeId, agreement: &Agreement) -> Result<(), OrbError> {
        let reply = self
            .orb
            .invoke(&Self::negotiator_ior(server), "release", &[Any::ULongLong(agreement.id)]);
        self.note_outcome("release", &agreement.object, &agreement.characteristic, reply.is_ok());
        reply?;
        Ok(())
    }

    /// Land the negotiation outcome in the client ORB's flight recorder,
    /// so black-box dumps show which agreements were in force when a
    /// failure hit.
    fn note_outcome(&self, verb: &str, object: &str, characteristic: &str, ok: bool) {
        self.orb.flight().record_detail(
            FlightEventKind::Negotiation,
            "negotiation",
            None,
            format!("{verb} {characteristic}@{object}: {}", if ok { "ok" } else { "rejected" }),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contract::ContractNode;
    use netsim::Network;
    use qosmech::replication::ReplicationQosImpl;
    use qosmech::actuality::FreshnessStampQosImpl;

    struct Value;
    impl Servant for Value {
        fn interface_id(&self) -> &str {
            "IDL:Store:1.0"
        }
        fn dispatch(&self, op: &str, _args: &[Any]) -> Result<Any, OrbError> {
            match op {
                "get" => Ok(Any::Long(7)),
                _ => Err(OrbError::BadOperation(op.to_string())),
            }
        }
    }

    const SPEC: &str = r#"
        interface Store with qos Replication, Actuality {
            long get();
        };
    "#;

    fn woven() -> Arc<WovenServant> {
        let mut repo = qosmech::specs::standard_repository();
        repo.load(&qidl::parser::parse(&qidl::lexer::lex(SPEC).unwrap()).unwrap()).unwrap();
        let woven = WovenServant::new(Arc::new(Value), Arc::new(repo), "Store");
        woven.install_qos(Arc::new(ReplicationQosImpl::new())).unwrap();
        woven.install_qos(Arc::new(FreshnessStampQosImpl::new())).unwrap();
        Arc::new(woven)
    }

    fn setup(capacity: usize) -> (Network, Orb, Orb, Arc<WovenServant>, Arc<NegotiationServant>) {
        let net = Network::new(1);
        let server = Orb::start(&net, "server");
        let client = Orb::start(&net, "client");
        let w = woven();
        let negotiator = Arc::new(NegotiationServant::new());
        negotiator.register_object(
            "store",
            Arc::clone(&w),
            HashMap::from([("Replication".to_string(), capacity)]),
        );
        server
            .adapter()
            .activate(NEGOTIATOR_KEY, Arc::clone(&negotiator) as Arc<dyn Servant>);
        (net, server, client, w, negotiator)
    }

    #[test]
    fn negotiate_activates_delegate_and_release_clears_it() {
        let (_net, server, client, w, negotiator) = setup(2);
        let n = Negotiator::new(client.clone());
        assert_eq!(n.offers(server.node(), "store").unwrap().len(), 2);
        let a = n
            .negotiate_offer(server.node(), "store", &Offer::new("Replication", 1.0))
            .unwrap();
        assert_eq!(w.active_characteristic().as_deref(), Some("Replication"));
        assert_eq!(a.version, 1);
        assert_eq!(negotiator.live_agreements(), 1);
        n.release(server.node(), &a).unwrap();
        assert_eq!(w.active_characteristic(), None);
        assert_eq!(negotiator.live_agreements(), 0);
        server.shutdown();
        client.shutdown();
    }

    #[test]
    fn capacity_exhaustion_rejects() {
        let (_net, server, client, _w, _neg) = setup(1);
        let n = Negotiator::new(client.clone());
        let offer = Offer::new("Replication", 1.0);
        let _a = n.negotiate_offer(server.node(), "store", &offer).unwrap();
        let err = n.negotiate_offer(server.node(), "store", &offer).unwrap_err();
        assert!(matches!(err, OrbError::QosViolation(_)));
        server.shutdown();
        client.shutdown();
    }

    #[test]
    fn conflicting_characteristic_rejected_while_active() {
        let (_net, server, client, _w, _neg) = setup(5);
        let n = Negotiator::new(client.clone());
        let a = n
            .negotiate_offer(server.node(), "store", &Offer::new("Replication", 1.0))
            .unwrap();
        // Actuality conflicts with the active Replication agreements.
        let err = n
            .negotiate_offer(server.node(), "store", &Offer::new("Actuality", 1.0))
            .unwrap_err();
        assert!(matches!(err, OrbError::QosViolation(_)));
        // Offers shrink to the active characteristic.
        assert_eq!(n.offers(server.node(), "store").unwrap(), vec!["Replication"]);
        // After release, the other characteristic becomes negotiable.
        n.release(server.node(), &a).unwrap();
        n.negotiate_offer(server.node(), "store", &Offer::new("Actuality", 1.0)).unwrap();
        server.shutdown();
        client.shutdown();
    }

    #[test]
    fn preference_hierarchy_adapts_on_rejection() {
        let (_net, server, client, w, negotiator) = setup(0); // Replication capacity 0
        let n = Negotiator::new(client.clone());
        let prefs = ContractHierarchy::new(
            "availability-then-freshness",
            ContractNode::Any(vec![
                ContractNode::Leaf(Offer::new("Replication", 10.0)),
                ContractNode::Leaf(Offer::new("Actuality", 4.0)),
            ]),
        );
        let (agreements, utility) =
            n.negotiate_preferences(server.node(), "store", &prefs).unwrap();
        assert_eq!(agreements.len(), 1);
        assert_eq!(agreements[0].characteristic, "Actuality");
        assert_eq!(utility, 4.0);
        assert_eq!(w.active_characteristic().as_deref(), Some("Actuality"));
        // Nothing satisfiable => error.
        negotiator.set_capacity("store", "Actuality", 0);
        let n2 = Negotiator::new(client.clone());
        let lone = ContractHierarchy::new(
            "only-replication",
            ContractNode::Leaf(Offer::new("Replication", 1.0)),
        );
        assert!(n2.negotiate_preferences(server.node(), "store", &lone).is_err());
        server.shutdown();
        client.shutdown();
    }

    #[test]
    fn renegotiation_bumps_version() {
        let (_net, server, client, _w, _neg) = setup(2);
        let n = Negotiator::new(client.clone());
        let a = n
            .negotiate_offer(
                server.node(),
                "store",
                &Offer::new("Replication", 1.0).with_param("replicas", Any::ULong(3)),
            )
            .unwrap();
        assert_eq!(a.params[0].1, Any::ULong(3));
        let a2 = n
            .renegotiate(server.node(), &a, vec![("replicas".to_string(), Any::ULong(5))])
            .unwrap();
        assert_eq!(a2.version, 2);
        assert_eq!(a2.params[0].1, Any::ULong(5));
        server.shutdown();
        client.shutdown();
    }

    #[test]
    fn agreement_any_roundtrip_and_context() {
        let a = Agreement {
            id: 9,
            object: "store".to_string(),
            characteristic: "Actuality".to_string(),
            params: vec![("validity_ms".to_string(), Any::ULongLong(100))],
            version: 3,
        };
        let back = Agreement::from_any(&a.to_any()).unwrap();
        assert_eq!(back, a);
        let ctx = a.to_context();
        assert_eq!(ctx.characteristic, "Actuality");
        assert_eq!(ctx.param("validity_ms"), Some(&Any::ULongLong(100)));
        assert_eq!(ctx.param("_agreement_id"), Some(&Any::ULongLong(9)));
    }

    #[test]
    fn agreement_params_drive_monitor_rules() {
        let (_net, server, client, _w, negotiator) = setup(2);
        let monitor = Arc::new(Monitor::new(8));
        negotiator.set_monitor(Arc::clone(&monitor));
        let n = Negotiator::new(client.clone());
        let a = n
            .negotiate_offer(
                server.node(),
                "store",
                &Offer::new("Replication", 1.0)
                    .with_param("deadline_ms", Any::ULongLong(2))
                    .with_param("availability", Any::Double(0.9)),
            )
            .unwrap();
        // Measured latency above the agreed 2 ms deadline violates.
        assert!(monitor.record("store", "latency_us", 1_500.0).is_empty());
        assert_eq!(monitor.record("store", "latency_us", 5_000.0).len(), 1);
        // Availability floor: three failures drag the mean below 0.9.
        monitor.record("store", "availability", 1.0);
        assert!(!monitor.record("store", "availability", 0.0).is_empty());

        // Renegotiating replaces the bounds: a looser deadline silences
        // the previous rule.
        n.renegotiate(
            server.node(),
            &a,
            vec![("deadline_ms".to_string(), Any::ULongLong(100))],
        )
        .unwrap();
        assert!(monitor.record("store", "latency_us", 5_000.0).is_empty());
        // ...and the availability rule is gone (not part of the new terms).
        assert!(monitor.record("store", "availability", 0.0).is_empty());

        // Release removes all agreed bounds.
        n.release(server.node(), &a).unwrap();
        assert!(monitor.record("store", "latency_us", 1_000_000.0).is_empty());
        server.shutdown();
        client.shutdown();
    }

    #[test]
    fn unknown_objects_and_agreements_error() {
        let (_net, server, client, _w, _neg) = setup(1);
        let n = Negotiator::new(client.clone());
        assert!(n.offers(server.node(), "ghost").is_err());
        assert!(n
            .negotiate_offer(server.node(), "ghost", &Offer::new("Replication", 1.0))
            .is_err());
        let fake = Agreement {
            id: 999,
            object: "store".to_string(),
            characteristic: "Replication".to_string(),
            params: vec![],
            version: 1,
        };
        assert!(n.release(server.node(), &fake).is_err());
        assert!(n.renegotiate(server.node(), &fake, vec![]).is_err());
        server.shutdown();
        client.shutdown();
    }
}
