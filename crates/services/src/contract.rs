//! Hierarchies of contracts: client QoS preferences.
//!
//! "The rating of which QoS characteristic and its level is preferable
//! to another is depending on the client. There is no system wide shared
//! view on QoS levels … Therefore, client preferences have to be
//! incorporated in the negotiation process" (§6, pointing at ref. \[5\],
//! *Representing Quality of Service Preferences by Hierarchies of
//! Contracts*). A hierarchy is a tree: leaves are concrete contract
//! offers (characteristic + parameters + a client-assigned utility),
//! inner nodes combine children conjunctively (`All`) or as ranked
//! alternatives (`Any`).

use orb::Any;
use std::fmt;

/// A concrete contract offer a client is willing to accept.
#[derive(Debug, Clone, PartialEq)]
pub struct Offer {
    /// QoS characteristic name.
    pub characteristic: String,
    /// Desired parameter values.
    pub params: Vec<(String, Any)>,
    /// Client utility of this offer (higher is better).
    pub utility: f64,
}

impl Offer {
    /// An offer with no parameters.
    pub fn new(characteristic: impl Into<String>, utility: f64) -> Offer {
        Offer { characteristic: characteristic.into(), params: Vec::new(), utility }
    }

    /// Builder-style parameter.
    pub fn with_param(mut self, name: impl Into<String>, value: Any) -> Offer {
        self.params.push((name.into(), value));
        self
    }
}

/// A node in a contract hierarchy.
#[derive(Debug, Clone, PartialEq)]
pub enum ContractNode {
    /// A concrete offer.
    Leaf(Offer),
    /// All children must be satisfiable; utility is the sum.
    All(Vec<ContractNode>),
    /// Ranked alternatives; the feasible child with the highest utility
    /// wins.
    Any(Vec<ContractNode>),
}

impl ContractNode {
    /// Tree depth (a leaf has depth 1).
    pub fn depth(&self) -> usize {
        match self {
            ContractNode::Leaf(_) => 1,
            ContractNode::All(cs) | ContractNode::Any(cs) => {
                1 + cs.iter().map(ContractNode::depth).max().unwrap_or(0)
            }
        }
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        match self {
            ContractNode::Leaf(_) => 1,
            ContractNode::All(cs) | ContractNode::Any(cs) => {
                cs.iter().map(ContractNode::leaf_count).sum()
            }
        }
    }

    /// Resolve against a feasibility predicate: returns the accepted
    /// offers and their total utility, or `None` if unsatisfiable.
    pub fn resolve(&self, feasible: &dyn Fn(&Offer) -> bool) -> Option<(Vec<Offer>, f64)> {
        match self {
            ContractNode::Leaf(offer) => {
                if feasible(offer) {
                    Some((vec![offer.clone()], offer.utility))
                } else {
                    None
                }
            }
            ContractNode::All(children) => {
                let mut offers = Vec::new();
                let mut utility = 0.0;
                for child in children {
                    let (mut o, u) = child.resolve(feasible)?;
                    offers.append(&mut o);
                    utility += u;
                }
                Some((offers, utility))
            }
            ContractNode::Any(children) => children
                .iter()
                .filter_map(|c| c.resolve(feasible))
                .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal)),
        }
    }
}

/// A named client preference hierarchy.
#[derive(Debug, Clone, PartialEq)]
pub struct ContractHierarchy {
    /// Human-readable name of the preference profile.
    pub name: String,
    /// The preference tree.
    pub root: ContractNode,
}

impl ContractHierarchy {
    /// A hierarchy named `name` with root `root`.
    pub fn new(name: impl Into<String>, root: ContractNode) -> ContractHierarchy {
        ContractHierarchy { name: name.into(), root }
    }

    /// Resolve the hierarchy (see [`ContractNode::resolve`]).
    pub fn resolve(&self, feasible: &dyn Fn(&Offer) -> bool) -> Option<(Vec<Offer>, f64)> {
        self.root.resolve(feasible)
    }

    /// Tree depth.
    pub fn depth(&self) -> usize {
        self.root.depth()
    }
}

impl fmt::Display for ContractHierarchy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} leaves, depth {})",
            self.name,
            self.root.leaf_count(),
            self.depth()
        )
    }
}

/// Build a synthetic hierarchy of the given depth and branching factor —
/// used by experiment E9 to scale negotiation inputs.
pub fn synthetic_hierarchy(depth: usize, branching: usize) -> ContractHierarchy {
    fn build(level: usize, branching: usize, counter: &mut usize) -> ContractNode {
        if level == 0 {
            let offer = Offer::new(format!("Char{counter}"), *counter as f64);
            *counter += 1;
            ContractNode::Leaf(offer)
        } else {
            let children =
                (0..branching).map(|_| build(level - 1, branching, counter)).collect();
            if level % 2 == 0 {
                ContractNode::All(children)
            } else {
                ContractNode::Any(children)
            }
        }
    }
    let mut counter = 0;
    ContractHierarchy::new(
        format!("synthetic-d{depth}-b{branching}"),
        build(depth, branching, &mut counter),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(name: &str, utility: f64) -> ContractNode {
        ContractNode::Leaf(Offer::new(name, utility))
    }

    #[test]
    fn leaf_resolution_respects_feasibility() {
        let node = leaf("Encryption", 5.0);
        let yes = node.resolve(&|_| true).unwrap();
        assert_eq!(yes.1, 5.0);
        assert_eq!(yes.0[0].characteristic, "Encryption");
        assert!(node.resolve(&|_| false).is_none());
    }

    #[test]
    fn any_picks_highest_feasible_utility() {
        let node = ContractNode::Any(vec![
            leaf("Replication", 10.0),
            leaf("Compression", 3.0),
            leaf("Actuality", 7.0),
        ]);
        let (offers, u) = node.resolve(&|_| true).unwrap();
        assert_eq!(u, 10.0);
        assert_eq!(offers[0].characteristic, "Replication");
        // Best infeasible: falls back to second best.
        let (offers, u) = node.resolve(&|o| o.characteristic != "Replication").unwrap();
        assert_eq!(u, 7.0);
        assert_eq!(offers[0].characteristic, "Actuality");
        assert!(node.resolve(&|_| false).is_none());
    }

    #[test]
    fn all_requires_every_child() {
        let node = ContractNode::All(vec![leaf("Encryption", 2.0), leaf("Compression", 3.0)]);
        let (offers, u) = node.resolve(&|_| true).unwrap();
        assert_eq!(offers.len(), 2);
        assert_eq!(u, 5.0);
        assert!(node.resolve(&|o| o.characteristic != "Encryption").is_none());
    }

    #[test]
    fn nested_hierarchy() {
        // (Encryption AND (Replication OR Actuality))
        let h = ContractHierarchy::new(
            "secure-and-available",
            ContractNode::All(vec![
                leaf("Encryption", 1.0),
                ContractNode::Any(vec![leaf("Replication", 8.0), leaf("Actuality", 4.0)]),
            ]),
        );
        assert_eq!(h.depth(), 3);
        let (offers, u) = h.resolve(&|_| true).unwrap();
        assert_eq!(u, 9.0);
        assert_eq!(offers.len(), 2);
        // No replication capacity: degrade to actuality.
        let (offers, u) = h.resolve(&|o| o.characteristic != "Replication").unwrap();
        assert_eq!(u, 5.0);
        assert!(offers.iter().any(|o| o.characteristic == "Actuality"));
    }

    #[test]
    fn offer_params_travel_through_resolution() {
        let node = ContractNode::Leaf(
            Offer::new("Actuality", 2.0).with_param("validity_ms", Any::ULongLong(500)),
        );
        let (offers, _) = node.resolve(&|_| true).unwrap();
        assert_eq!(offers[0].params[0].1, Any::ULongLong(500));
    }

    #[test]
    fn synthetic_hierarchies_scale() {
        for depth in 1..=4 {
            let h = synthetic_hierarchy(depth, 2);
            assert_eq!(h.depth(), depth + 1);
            assert_eq!(h.root.leaf_count(), 1 << depth);
            assert!(h.resolve(&|_| true).is_some());
        }
        assert!(synthetic_hierarchy(2, 3).to_string().contains("9 leaves"));
    }
}
