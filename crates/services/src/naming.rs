//! A naming service (CORBA Naming analogue).
//!
//! The one piece of a deployable "distribution infrastructure that
//! already offers the interaction of remote objects" (§1) still missing
//! from the stack: hierarchical name → object-reference resolution, so
//! clients can bootstrap from a single well-known node instead of
//! passing IOR strings out of band. Names are `/`-separated paths
//! (`finance/bank/frankfurt`); contexts are created implicitly on bind.

use orb::sync::{LockRank, OrderedRwLock};
use orb::{Any, Ior, Orb, OrbError, Servant};
use netsim::NodeId;
use std::collections::BTreeMap;

/// Conventional object key the naming service is activated under.
pub const NAMING_KEY: &str = "naming";

/// Repository id of the naming interface.
pub const NAMING_INTERFACE: &str = "IDL:maqs/Naming:1.0";

/// The naming servant.
///
/// Wire operations:
///
/// * `bind(path, ior_uri)` → `void` (fails if bound)
/// * `rebind(path, ior_uri)` → `void` (replaces)
/// * `resolve(path)` → `string` IOR URI
/// * `unbind(path)` → `boolean` (was it bound?)
/// * `list(prefix)` → `sequence<string>` of bound paths under `prefix`
pub struct NamingService {
    bindings: OrderedRwLock<BTreeMap<String, String>>,
}

impl Default for NamingService {
    fn default() -> NamingService {
        NamingService { bindings: OrderedRwLock::new(LockRank::NamingBindings, BTreeMap::new()) }
    }
}

fn normalize(path: &str) -> Result<String, OrbError> {
    let parts: Vec<&str> = path.split('/').filter(|p| !p.is_empty()).collect();
    if parts.is_empty() {
        return Err(OrbError::BadParam("empty name".to_string()));
    }
    if parts.iter().any(|p| p.contains(char::is_whitespace)) {
        return Err(OrbError::BadParam(format!("whitespace in name `{path}`")));
    }
    Ok(parts.join("/"))
}

impl NamingService {
    /// An empty naming service.
    pub fn new() -> NamingService {
        NamingService::default()
    }

    /// Bind `path` to `ior` (local API). Fails if already bound.
    ///
    /// # Errors
    ///
    /// [`OrbError::BadParam`] for malformed names or an existing binding.
    pub fn bind(&self, path: &str, ior: &Ior) -> Result<(), OrbError> {
        let path = normalize(path)?;
        let mut bindings = self.bindings.write();
        if bindings.contains_key(&path) {
            return Err(OrbError::BadParam(format!("`{path}` is already bound")));
        }
        bindings.insert(path, ior.to_uri());
        Ok(())
    }

    /// Bind or replace (local API).
    ///
    /// # Errors
    ///
    /// [`OrbError::BadParam`] for malformed names.
    pub fn rebind(&self, path: &str, ior: &Ior) -> Result<(), OrbError> {
        let path = normalize(path)?;
        self.bindings.write().insert(path, ior.to_uri());
        Ok(())
    }

    /// Resolve a name (local API).
    ///
    /// # Errors
    ///
    /// [`OrbError::ObjectNotExist`] if unbound.
    pub fn resolve(&self, path: &str) -> Result<Ior, OrbError> {
        let path = normalize(path)?;
        let bindings = self.bindings.read();
        let uri = bindings
            .get(&path)
            .ok_or_else(|| OrbError::ObjectNotExist(format!("name `{path}`")))?;
        Ior::from_uri(uri)
    }

    /// Remove a binding; returns whether it existed.
    pub fn unbind(&self, path: &str) -> bool {
        match normalize(path) {
            Ok(path) => self.bindings.write().remove(&path).is_some(),
            Err(_) => false,
        }
    }

    /// All bound paths under `prefix` (empty prefix = everything), sorted.
    pub fn list(&self, prefix: &str) -> Vec<String> {
        let prefix = prefix.trim_matches('/');
        self.bindings
            .read()
            .keys()
            .filter(|k| {
                prefix.is_empty()
                    || k.as_str() == prefix
                    || k.starts_with(&format!("{prefix}/"))
            })
            .cloned()
            .collect()
    }
}

impl Servant for NamingService {
    fn interface_id(&self) -> &str {
        NAMING_INTERFACE
    }

    fn dispatch(&self, op: &str, args: &[Any]) -> Result<Any, OrbError> {
        let str_arg = |i: usize| {
            args.get(i)
                .and_then(Any::as_str)
                .ok_or_else(|| OrbError::BadParam(format!("{op}: argument {i} must be a string")))
        };
        match op {
            "bind" | "rebind" => {
                let path = str_arg(0)?;
                let ior = Ior::from_uri(str_arg(1)?)?;
                if op == "bind" {
                    self.bind(path, &ior)?;
                } else {
                    self.rebind(path, &ior)?;
                }
                Ok(Any::Void)
            }
            "resolve" => Ok(Any::Str(self.resolve(str_arg(0)?)?.to_uri())),
            "unbind" => Ok(Any::Bool(self.unbind(str_arg(0)?))),
            "list" => Ok(Any::Sequence(
                self.list(str_arg(0).unwrap_or_default()).into_iter().map(Any::Str).collect(),
            )),
            other => Err(OrbError::BadOperation(other.to_string())),
        }
    }
}

/// Client helper: resolve `path` at the naming service on `naming_node`.
///
/// # Errors
///
/// Propagates remote failures; [`OrbError::ObjectNotExist`] if unbound.
pub fn resolve_name(orb: &Orb, naming_node: NodeId, path: &str) -> Result<Ior, OrbError> {
    let naming = Ior::new(NAMING_INTERFACE, naming_node, NAMING_KEY);
    let reply = orb.invoke(&naming, "resolve", &[Any::from(path)])?;
    Ior::from_uri(reply.as_str().unwrap_or_default())
}

/// Client helper: bind `ior` under `path` at the remote naming service.
///
/// # Errors
///
/// Propagates remote failures.
pub fn bind_name(orb: &Orb, naming_node: NodeId, path: &str, ior: &Ior) -> Result<(), OrbError> {
    let naming = Ior::new(NAMING_INTERFACE, naming_node, NAMING_KEY);
    orb.invoke(&naming, "rebind", &[Any::from(path), Any::Str(ior.to_uri())])?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::Network;

    fn ior(node: u32, key: &str) -> Ior {
        Ior::new("IDL:X:1.0", NodeId(node), key)
    }

    #[test]
    fn bind_resolve_unbind() {
        let ns = NamingService::new();
        ns.bind("finance/bank", &ior(1, "b")).unwrap();
        assert_eq!(ns.resolve("finance/bank").unwrap().node, NodeId(1));
        // Normalization: leading/trailing/double slashes are equivalent.
        assert_eq!(ns.resolve("/finance//bank/").unwrap().node, NodeId(1));
        // bind refuses to replace, rebind replaces.
        assert!(ns.bind("finance/bank", &ior(2, "b")).is_err());
        ns.rebind("finance/bank", &ior(2, "b")).unwrap();
        assert_eq!(ns.resolve("finance/bank").unwrap().node, NodeId(2));
        assert!(ns.unbind("finance/bank"));
        assert!(!ns.unbind("finance/bank"));
        assert!(matches!(ns.resolve("finance/bank"), Err(OrbError::ObjectNotExist(_))));
    }

    #[test]
    fn malformed_names_rejected() {
        let ns = NamingService::new();
        assert!(ns.bind("", &ior(1, "x")).is_err());
        assert!(ns.bind("///", &ior(1, "x")).is_err());
        assert!(ns.bind("a b/c", &ior(1, "x")).is_err());
    }

    #[test]
    fn list_filters_by_prefix() {
        let ns = NamingService::new();
        ns.bind("a/x", &ior(1, "1")).unwrap();
        ns.bind("a/y", &ior(2, "2")).unwrap();
        ns.bind("b/z", &ior(3, "3")).unwrap();
        ns.bind("ab", &ior(4, "4")).unwrap();
        assert_eq!(ns.list(""), vec!["a/x", "a/y", "ab", "b/z"]);
        assert_eq!(ns.list("a"), vec!["a/x", "a/y"]); // not "ab"
        assert_eq!(ns.list("a/x"), vec!["a/x"]);
        assert!(ns.list("ghost").is_empty());
    }

    #[test]
    fn remote_bootstrap_via_naming() {
        let net = Network::new(1);
        let registry = Orb::start(&net, "registry");
        let server = Orb::start(&net, "server");
        let client = Orb::start(&net, "client");
        registry.adapter().activate(NAMING_KEY, std::sync::Arc::new(NamingService::new()));

        struct Hello;
        impl Servant for Hello {
            fn interface_id(&self) -> &str {
                "IDL:Hello:1.0"
            }
            fn dispatch(&self, op: &str, _a: &[Any]) -> Result<Any, OrbError> {
                match op {
                    "hi" => Ok(Any::Str("hi".into())),
                    other => Err(OrbError::BadOperation(other.to_string())),
                }
            }
        }
        let hello = server.activate("hello", Box::new(Hello));
        bind_name(&server, registry.node(), "apps/hello", &hello).unwrap();

        // The client only knows the registry node.
        let found = resolve_name(&client, registry.node(), "apps/hello").unwrap();
        assert_eq!(client.invoke(&found, "hi", &[]).unwrap(), Any::Str("hi".into()));
        assert!(resolve_name(&client, registry.node(), "apps/ghost").is_err());

        // list over the wire.
        let naming = Ior::new(NAMING_INTERFACE, registry.node(), NAMING_KEY);
        let listed = client.invoke(&naming, "list", &[Any::from("apps")]).unwrap();
        assert_eq!(listed, Any::Sequence(vec![Any::Str("apps/hello".into())]));
        registry.shutdown();
        server.shutdown();
        client.shutdown();
    }

    #[test]
    fn wire_errors() {
        let ns = NamingService::new();
        assert!(ns.dispatch("bind", &[Any::Long(1)]).is_err());
        assert!(ns.dispatch("bind", &[Any::from("a"), Any::from("junk")]).is_err());
        assert!(ns.dispatch("resolve", &[]).is_err());
        assert!(ns.dispatch("steal", &[]).is_err());
    }
}
