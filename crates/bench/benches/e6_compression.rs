//! E6: compression on small-bandwidth channels.
//!
//! Virtual (modelled) transfer time for a fixed workload, compressed vs
//! plain, across a bandwidth sweep and payload compressibilities, plus
//! raw codec throughput.
//!
//! Expected shape: compression wins by ~1/ratio on narrow links and the
//! advantage shrinks as bandwidth grows (the codec's CPU cost is real
//! time, the wire time is virtual, so the crossover appears as the wire
//! saving approaching zero); incompressible payloads never win.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use maqs_bench::{banner, payload, row, Echo};
use netsim::{LinkModel, Network};
use orb::giop::QosContext;
use orb::qos_binding::BindingKey;
use orb::{Any, Orb};
use qosmech::compress::{codec, CompressionModule, COMPRESSION_MODULE};
use std::sync::Arc;

/// Virtual time to push `frames` payloads over a link of `kbps`,
/// optionally through the compression module.
fn virtual_push_ms(kbps: u64, compressed: bool, redundancy: f64) -> f64 {
    let net = Network::new(60);
    let server = Orb::start(&net, "server");
    let client = Orb::start(&net, "client");
    net.set_link(client.node(), server.node(), LinkModel::narrowband(kbps));
    let ior = server.activate_with_tags("echo", Box::new(Echo), &["Compression"]);
    if compressed {
        client.qos_transport().install(Arc::new(CompressionModule::new()));
        server.qos_transport().install(Arc::new(CompressionModule::new()));
        client
            .qos_transport()
            .bind(BindingKey { peer: None, key: ior.key.clone() }, COMPRESSION_MODULE)
            .unwrap();
    }
    let qos = compressed.then(|| QosContext::new("Compression"));
    let start = client.net_handle().now();
    for frame in 0..4u64 {
        let data = Any::Bytes(payload(8192, redundancy, frame));
        client.invoke_qos(&ior, "echo", &[data], qos.clone()).unwrap();
    }
    let elapsed = client.net_handle().now() - start;
    server.shutdown();
    client.shutdown();
    elapsed.as_millis_f64()
}

fn summary() {
    banner("E6", "4x8 KiB request/reply over a narrowband link (virtual time, redundancy 0.9)");
    row(
        "bandwidth",
        &["plain ms".into(), "compressed ms".into(), "speedup".into()],
    );
    for kbps in [8u64, 64, 512, 10_000] {
        let plain = virtual_push_ms(kbps, false, 0.9);
        let comp = virtual_push_ms(kbps, true, 0.9);
        row(
            &format!("{kbps} kbit/s"),
            &[
                format!("{plain:10.1}"),
                format!("{comp:10.1}"),
                format!("{:6.2}x", plain / comp.max(1e-9)),
            ],
        );
    }

    banner("E6b", "compressibility sweep at 64 kbit/s");
    row("redundancy", &["ratio".into(), "plain ms".into(), "compressed ms".into()]);
    for redundancy in [0.05, 0.5, 0.95] {
        let data = payload(8192, redundancy, 1);
        let ratio = codec::compress(&data).len() as f64 / data.len() as f64;
        let plain = virtual_push_ms(64, false, redundancy);
        let comp = virtual_push_ms(64, true, redundancy);
        row(
            &format!("{redundancy:.2}"),
            &[format!("{ratio:5.2}"), format!("{plain:10.1}"), format!("{comp:10.1}")],
        );
    }
}

fn bench(c: &mut Criterion) {
    summary();

    let mut group = c.benchmark_group("e6_codec_throughput");
    for (redundancy, name) in [(0.95, "redundant"), (0.05, "noisy")] {
        let data = payload(64 * 1024, redundancy, 9);
        group.throughput(Throughput::Bytes(data.len() as u64));
        group.bench_with_input(BenchmarkId::new("compress", name), &data, |b, data| {
            b.iter(|| codec::compress(data))
        });
        let compressed = codec::compress(&data);
        group.bench_with_input(BenchmarkId::new("decompress", name), &compressed, |b, c| {
            b.iter(|| codec::decompress(c).unwrap())
        });
    }
    group.finish();

    // End-to-end call cost with/without the module (wall time; wire is
    // instant in the simulator, so this isolates the CPU overhead).
    let net = Network::new(61);
    let server = Orb::start(&net, "server");
    let client = Orb::start(&net, "client");
    let ior = server.activate_with_tags("echo", Box::new(Echo), &["Compression"]);
    client.qos_transport().install(Arc::new(CompressionModule::new()));
    server.qos_transport().install(Arc::new(CompressionModule::new()));
    let arg = [Any::Bytes(payload(8192, 0.9, 3))];
    let mut group = c.benchmark_group("e6_call_cpu_cost");
    group.bench_function("plain", |b| b.iter(|| client.invoke(&ior, "echo", &arg).unwrap()));
    client
        .qos_transport()
        .bind(BindingKey { peer: None, key: ior.key.clone() }, COMPRESSION_MODULE)
        .unwrap();
    group.bench_function("compressed", |b| {
        b.iter(|| {
            client
                .invoke_qos(&ior, "echo", &arg, Some(QosContext::new("Compression")))
                .unwrap()
        })
    });
    group.finish();
    server.shutdown();
    client.shutdown();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3));
    targets = bench
}
criterion_main!(benches);
