//! E2 (Fig. 2): weaving overhead on the server and client side.
//!
//! Compares an unwoven servant against the woven skeleton with 0–2
//! active QoS brackets and mediator chains of depth 0–4, and measures
//! the cost of the runtime delegate exchange itself.
//!
//! Expected shape: prolog/epilog and each mediator add a small constant;
//! the delegate exchange is O(1) and cheap enough to do per
//! renegotiation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use maqs_bench::{banner, row, Echo};
use orb::{Any, OrbError, Servant};
use qosmech::loadbalance::LoadReportingQosImpl;
use std::sync::Arc;
use weaver::{Call, Mediator, Next, WovenServant};

const SPEC: &str = r#"
    interface Echo with qos LoadBalancing, Actuality {
        any echo(in any v);
    };
"#;

struct PassThrough(&'static str);
impl Mediator for PassThrough {
    fn characteristic(&self) -> &str {
        self.0
    }
    fn around(&self, call: Call, next: Next<'_>) -> Result<Any, OrbError> {
        next(call)
    }
}

fn woven() -> WovenServant {
    let mut repo = qosmech::specs::standard_repository();
    repo.load(&qidl::parser::parse(&qidl::lexer::lex(SPEC).unwrap()).unwrap()).unwrap();
    WovenServant::new(Arc::new(Echo), Arc::new(repo), "Echo")
}

fn summary() {
    banner("E2 / Fig.2", "weaving overhead (collocated dispatch, 100k calls each)");
    let n = 100_000u32;
    let arg = [Any::Long(7)];
    let time = |f: &mut dyn FnMut()| {
        let start = std::time::Instant::now();
        for _ in 0..n {
            f();
        }
        start.elapsed().as_secs_f64() * 1e9 / n as f64
    };

    let plain = Echo;
    let t_plain = time(&mut || {
        let _ = plain.dispatch("echo", &arg);
    });

    let w = woven();
    let t_unneg = time(&mut || {
        let _ = w.dispatch("echo", &arg);
    });

    w.install_qos(Arc::new(LoadReportingQosImpl::new())).unwrap();
    w.negotiate("LoadBalancing").unwrap();
    let t_bracket = time(&mut || {
        let _ = w.dispatch("echo", &arg);
    });

    row("server side", &["ns/call".into()]);
    row("bare servant", &[format!("{t_plain:9.1}")]);
    row("woven, no active QoS", &[format!("{t_unneg:9.1}")]);
    row("woven + prolog/epilog", &[format!("{t_bracket:9.1}")]);

    // Delegate exchange cost.
    let t_exchange = {
        let start = std::time::Instant::now();
        for _ in 0..n {
            w.negotiate("LoadBalancing").unwrap();
        }
        start.elapsed().as_secs_f64() * 1e9 / n as f64
    };
    row("delegate exchange (negotiate)", &[format!("{t_exchange:9.1}")]);

    // Client side: mediator chain depth sweep over a collocated stub.
    let net = netsim::Network::new(1);
    let orb = orb::Orb::start(&net, "solo");
    let ior = orb.activate("echo", Box::new(Echo));
    println!("  client side (collocated stub):");
    for depth in [0usize, 1, 2, 4] {
        let stub = weaver::ClientStub::new(orb.clone(), ior.clone());
        for i in 0..depth {
            stub.push_mediator(Arc::new(PassThrough(match i {
                0 => "m0",
                1 => "m1",
                2 => "m2",
                _ => "m3",
            })));
        }
        let t = time(&mut || {
            let _ = stub.invoke("echo", &arg);
        });
        row(&format!("mediator chain depth {depth}"), &[format!("{t:9.1}")]);
    }
    orb.shutdown();
}

fn bench(c: &mut Criterion) {
    summary();

    let arg = [Any::Long(7)];
    let mut group = c.benchmark_group("fig2_weaving");

    let plain = Echo;
    group.bench_function("bare_servant", |b| b.iter(|| plain.dispatch("echo", &arg).unwrap()));

    let w = woven();
    group.bench_function("woven_idle", |b| b.iter(|| w.dispatch("echo", &arg).unwrap()));

    w.install_qos(Arc::new(LoadReportingQosImpl::new())).unwrap();
    w.negotiate("LoadBalancing").unwrap();
    group.bench_function("woven_bracketed", |b| b.iter(|| w.dispatch("echo", &arg).unwrap()));
    group.bench_function("delegate_exchange", |b| {
        b.iter(|| w.negotiate("LoadBalancing").unwrap())
    });

    let net = netsim::Network::new(1);
    let orb = orb::Orb::start(&net, "solo");
    let ior = orb.activate("echo", Box::new(Echo));
    for depth in [0usize, 2, 4] {
        let stub = weaver::ClientStub::new(orb.clone(), ior.clone());
        for _ in 0..depth {
            stub.push_mediator(Arc::new(PassThrough("m")));
        }
        group.bench_with_input(BenchmarkId::new("mediator_chain", depth), &stub, |b, stub| {
            b.iter(|| stub.invoke("echo", &arg).unwrap())
        });
    }
    group.finish();
    orb.shutdown();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30).measurement_time(std::time::Duration::from_secs(3));
    targets = bench
}
criterion_main!(benches);
