//! E10: the QIDL compiler (aspect weaver) itself.
//!
//! Front-end (lex+parse+check) and code-generation throughput vs
//! interface size, generated-code size vs input size, and repository
//! lookup costs on the reflective path.
//!
//! Expected shape: compilation linear in source size; woven lookup is a
//! hash probe plus a small scan — cheap enough to sit on the dispatch
//! path of every request.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use maqs_bench::{banner, row};
use std::fmt::Write;

/// A synthetic spec with `interfaces` interfaces of `ops` operations,
/// all assigned two QoS characteristics.
fn synthetic_spec(interfaces: usize, ops: usize) -> String {
    let mut src = String::from(
        "qos Rep category fault_tolerance { param unsigned long replicas = 3; \
         management { void start(); }; };\n\
         qos Act category timeliness { management { void refresh(); }; };\n",
    );
    for i in 0..interfaces {
        let _ = writeln!(src, "interface Iface{i} with qos Rep, Act {{");
        for o in 0..ops {
            let _ = writeln!(
                src,
                "    long long op{o}(in string key, in long long value, in sequence<octet> blob);"
            );
        }
        let _ = writeln!(src, "}};");
    }
    src
}

fn summary() {
    banner("E10", "QIDL compiler throughput (front-end + codegen)");
    row(
        "spec size",
        &["source B".into(), "compile µs".into(), "codegen µs".into(), "generated B".into()],
    );
    for (interfaces, ops) in [(1usize, 5usize), (5, 10), (20, 20)] {
        let src = synthetic_spec(interfaces, ops);
        let n = 50u32;
        let start = std::time::Instant::now();
        let mut spec = None;
        for _ in 0..n {
            spec = Some(qidl::compile(&src).unwrap());
        }
        let compile_us = start.elapsed().as_secs_f64() * 1e6 / n as f64;
        let spec = spec.unwrap();
        let start = std::time::Instant::now();
        let mut generated = String::new();
        for _ in 0..n {
            generated = qidl::codegen::generate(&spec);
        }
        let codegen_us = start.elapsed().as_secs_f64() * 1e6 / n as f64;
        row(
            &format!("{interfaces} ifaces x {ops} ops"),
            &[
                format!("{:8}", src.len()),
                format!("{compile_us:9.1}"),
                format!("{codegen_us:9.1}"),
                format!("{:8}", generated.len()),
            ],
        );
    }

    banner("E10b", "interface repository lookups (the reflective dispatch path)");
    let mut repo = qosmech::specs::standard_repository();
    let spec = qidl::parser::parse(
        &qidl::lexer::lex(&synthetic_spec(10, 10).replace("Rep", "Replication").replace(
            "qos Replication category fault_tolerance { param unsigned long replicas = 3; management { void start(); }; };\n",
            "",
        ))
        .unwrap(),
    );
    // Simpler: load a fresh synthetic spec against the standard repo.
    let src = "interface Probe with qos Replication, Actuality { long long op0(in string k); };";
    repo.load(&qidl::parser::parse(&qidl::lexer::lex(src).unwrap()).unwrap()).unwrap();
    drop(spec);
    let n = 1_000_000u32;
    let start = std::time::Instant::now();
    for _ in 0..n {
        let _ = repo.lookup_woven("Probe", "op0");
    }
    row("application op lookup", &[format!("{:7.1} ns", start.elapsed().as_secs_f64() * 1e9 / n as f64)]);
    let start = std::time::Instant::now();
    for _ in 0..n {
        let _ = repo.lookup_woven("Probe", "export_state");
    }
    row("qos op lookup", &[format!("{:7.1} ns", start.elapsed().as_secs_f64() * 1e9 / n as f64)]);
    let start = std::time::Instant::now();
    for _ in 0..n {
        let _ = repo.lookup_woven("Probe", "missing_op");
    }
    row("miss lookup", &[format!("{:7.1} ns", start.elapsed().as_secs_f64() * 1e9 / n as f64)]);
}

fn bench(c: &mut Criterion) {
    summary();

    let mut group = c.benchmark_group("e10_qidl");
    for (interfaces, ops) in [(1usize, 5usize), (20, 20)] {
        let src = synthetic_spec(interfaces, ops);
        group.throughput(Throughput::Bytes(src.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("compile", format!("{interfaces}x{ops}")),
            &src,
            |b, src| b.iter(|| qidl::compile(src).unwrap()),
        );
        let spec = qidl::compile(&src).unwrap();
        group.bench_with_input(
            BenchmarkId::new("codegen", format!("{interfaces}x{ops}")),
            &spec,
            |b, spec| b.iter(|| qidl::codegen::generate(spec)),
        );
        group.bench_with_input(
            BenchmarkId::new("pretty_print", format!("{interfaces}x{ops}")),
            &spec,
            |b, spec| b.iter(|| qidl::pretty::pretty(spec)),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3));
    targets = bench
}
criterion_main!(benches);
