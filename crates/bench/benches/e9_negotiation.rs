//! E9: negotiation and preference resolution.
//!
//! Agreement latency over the wire, renegotiation cost, contract
//! hierarchy resolution vs depth/branching, and the adaptation loop
//! (rejection → re-resolve → retry) under shrinking capacity.
//!
//! Expected shape: a negotiation costs ~two round-trips (offer +
//! negotiate); hierarchy resolution is linear in leaf count; each
//! rejected alternative adds one round-trip to adaptation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use maqs_bench::{banner, row};
use maqs::prelude::*;
use qosmech::actuality::FreshnessStampQosImpl;
use qosmech::loadbalance::LoadReportingQosImpl;
use qosmech::replication::ReplicationQosImpl;
use services::contract::synthetic_hierarchy;
use std::sync::Arc;

struct Nil;
impl Servant for Nil {
    fn interface_id(&self) -> &str {
        "IDL:Store:1.0"
    }
    fn dispatch(&self, op: &str, _a: &[Any]) -> Result<Any, OrbError> {
        match op {
            "get" => Ok(Any::Long(0)),
            _ => Err(OrbError::BadOperation(op.to_string())),
        }
    }
}

const SPEC: &str = r#"
    interface Store with qos Replication, Actuality, LoadBalancing {
        long get();
    };
"#;

fn setup(capacity: usize) -> (MaqsNode, MaqsNode) {
    let net = Network::new(90);
    let server = MaqsNode::builder(&net, "server").spec(SPEC).build().unwrap();
    let client = MaqsNode::builder(&net, "client").build().unwrap();
    server
        .serve(
            "store",
            Arc::new(Nil),
            ServeOptions::interface("Store")
                .qos_impl(Arc::new(ReplicationQosImpl::new()))
                .qos_impl(Arc::new(FreshnessStampQosImpl::new()))
                .qos_impl(Arc::new(LoadReportingQosImpl::new()))
                .capacity("Replication", capacity),
        )
        .unwrap();
    (server, client)
}

fn summary() {
    banner("E9", "negotiation protocol latency (wall time, 300 iterations)");
    let (server, client) = setup(usize::MAX / 2);
    let node = server.orb().node();
    let negotiator = client.negotiator();
    let n = 300u32;

    let start = std::time::Instant::now();
    for _ in 0..n {
        negotiator.offers(node, "store").unwrap();
    }
    row("offer query", &[format!("{:8.1} µs", start.elapsed().as_secs_f64() * 1e6 / n as f64)]);

    let start = std::time::Instant::now();
    let mut last = None;
    for _ in 0..n {
        let a = negotiator
            .negotiate_offer(node, "store", &Offer::new("Replication", 1.0))
            .unwrap();
        last = Some(a);
    }
    row("negotiate", &[format!("{:8.1} µs", start.elapsed().as_secs_f64() * 1e6 / n as f64)]);

    let agreement = last.unwrap();
    let start = std::time::Instant::now();
    for i in 0..n {
        negotiator
            .renegotiate(node, &agreement, vec![("replicas".to_string(), Any::ULong(i))])
            .unwrap();
    }
    row("renegotiate", &[format!("{:8.1} µs", start.elapsed().as_secs_f64() * 1e6 / n as f64)]);
    server.shutdown();
    client.shutdown();

    banner("E9b", "hierarchy resolution scaling (pure computation)");
    row("depth x branching", &["leaves".into(), "ns/resolve".into()]);
    for (depth, branching) in [(1usize, 2usize), (2, 2), (4, 2), (2, 4), (3, 4)] {
        let h = synthetic_hierarchy(depth, branching);
        let leaves = h.root.leaf_count();
        let n = 10_000u32;
        let start = std::time::Instant::now();
        for _ in 0..n {
            let _ = h.resolve(&|_| true);
        }
        let ns = start.elapsed().as_secs_f64() * 1e9 / n as f64;
        row(&format!("d={depth} b={branching}"), &[format!("{leaves:6}"), format!("{ns:10.1}")]);
    }

    banner("E9c", "adaptation: rejections before agreement vs preference rank achieved");
    // Capacity 0 for the top alternative forces the client down its list.
    let (server, client) = setup(0);
    let node = server.orb().node();
    let prefs = ContractHierarchy::new(
        "ranked",
        ContractNode::Any(vec![
            ContractNode::Leaf(Offer::new("Replication", 10.0)),
            ContractNode::Leaf(Offer::new("Actuality", 6.0)),
            ContractNode::Leaf(Offer::new("LoadBalancing", 2.0)),
        ]),
    );
    let (agreements, utility) =
        client.negotiator().negotiate_preferences(node, "store", &prefs).unwrap();
    row(
        "top choice at capacity 0",
        &[format!(
            "settled on {} (utility {utility}, 1 alternative skipped)",
            agreements[0].characteristic
        )],
    );
    server.shutdown();
    client.shutdown();
}

fn bench(c: &mut Criterion) {
    summary();

    let (server, client) = setup(usize::MAX / 2);
    let node = server.orb().node();
    let negotiator = client.negotiator();

    let mut group = c.benchmark_group("e9_negotiation");
    group.bench_function("offer_query", |b| {
        b.iter(|| negotiator.offers(node, "store").unwrap())
    });
    group.bench_function("negotiate_release", |b| {
        b.iter(|| {
            let a = negotiator
                .negotiate_offer(node, "store", &Offer::new("Replication", 1.0))
                .unwrap();
            negotiator.release(node, &a).unwrap();
        })
    });
    for depth in [2usize, 4] {
        let h = synthetic_hierarchy(depth, 2);
        group.bench_with_input(BenchmarkId::new("resolve_depth", depth), &h, |b, h| {
            b.iter(|| h.resolve(&|_| true))
        });
    }
    group.finish();
    server.shutdown();
    client.shutdown();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3));
    targets = bench
}
criterion_main!(benches);
