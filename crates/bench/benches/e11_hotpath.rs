//! E11: closed-loop hot-path throughput/latency sweep.
//!
//! Multi-client closed-loop null-call and 1KiB-payload sweeps against one
//! servant, for `dispatch_threads` ∈ {1, 2, 4} and plain vs QoS-tagged
//! (identity-module-bound) traffic. Reports throughput plus p50/p99
//! latency and emits `BENCH_hotpath.json` at the repo root so the perf
//! trajectory stays machine-readable across PRs.
//!
//! Unlike the Criterion benches this is a hand-rolled harness
//! (`harness = false`, no criterion dependency): the closed-loop
//! multi-thread shape does not fit `b.iter`, and the JSON artifact must
//! come out byte-stable. `--quick` runs a fixed low iteration count for
//! CI smoke; `BENCH_OUT=<path>` overrides the artifact location.

use netsim::{Network, NodeId};
use orb::giop::QosContext;
use orb::qos_binding::BindingKey;
use orb::wire::{TcpTransport, WireTransport};
use orb::{Any, Ior, Orb, OrbConfig, OrbError, QosModule, Servant};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

/// Servant answering `echo` with its argument.
struct Echo;
impl Servant for Echo {
    fn interface_id(&self) -> &str {
        "IDL:Echo:1.0"
    }
    fn dispatch(&self, op: &str, args: &[Any]) -> Result<Any, OrbError> {
        match op {
            "echo" => Ok(args.first().cloned().unwrap_or(Any::Void)),
            _ => Err(OrbError::BadOperation(op.to_string())),
        }
    }
}

/// Identity transform module: measures pure QoS-dispatch-path cost.
struct Identity;
impl QosModule for Identity {
    fn name(&self) -> &str {
        "identity"
    }
    fn command(&self, op: &str, _args: &[Any]) -> Result<Any, OrbError> {
        Err(OrbError::BadOperation(op.to_string()))
    }
}

const CLIENT_THREADS: usize = 4;

struct CaseResult {
    transport: &'static str,
    payload: &'static str,
    qos: bool,
    dispatch_threads: usize,
    clients: usize,
    calls: u64,
    throughput_rps: f64,
    p50_us: f64,
    p99_us: f64,
}

fn percentile_us(sorted_ns: &[u64], q: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ns.len() - 1) as f64 * q).round() as usize;
    sorted_ns[idx] as f64 / 1_000.0
}

fn run_case(
    transport: &'static str,
    payload: &'static str,
    qos: bool,
    dispatch_threads: usize,
    iters_per_client: u64,
) -> CaseResult {
    // The simulator must outlive netsim-backed ORBs.
    let mut _net = None;
    let (server, client) = match transport {
        "netsim" => {
            let net = Network::new(1);
            let server = Orb::start_with(
                &net,
                "server",
                OrbConfig { dispatch_threads, ..OrbConfig::default() },
            );
            let client = Orb::start(&net, "client");
            _net = Some(net);
            (server, client)
        }
        "tcp" => {
            let ws: Arc<dyn WireTransport> =
                Arc::new(TcpTransport::bind(NodeId(1), "127.0.0.1:0").expect("bind server"));
            let wc: Arc<dyn WireTransport> =
                Arc::new(TcpTransport::bind(NodeId(2), "127.0.0.1:0").expect("bind client"));
            let server = Orb::start_wire(
                ws,
                "server",
                OrbConfig { dispatch_threads, ..OrbConfig::default() },
            );
            let client = Orb::start_wire(wc, "client", OrbConfig::default());
            (server, client)
        }
        other => panic!("unknown transport {other}"),
    };
    // Over TCP the IOR carries the listener endpoint; the client's
    // first invoke registers and dials it, exactly as across processes.
    let ior = server.activate("echo", Box::new(Echo));
    let qos_ctx = if qos {
        client.qos_transport().install(Arc::new(Identity));
        server.qos_transport().install(Arc::new(Identity));
        client
            .qos_transport()
            .bind(BindingKey { peer: None, key: ior.key.clone() }, "identity")
            .unwrap();
        Some(QosContext::new("identity"))
    } else {
        None
    };
    let args: Vec<Any> = match payload {
        "null" => Vec::new(),
        "1KiB" => vec![Any::Bytes(vec![0xA5u8; 1024])],
        other => panic!("unknown payload shape {other}"),
    };

    // Warm-up outside the measured window.
    for _ in 0..16 {
        client.invoke_qos(&ior, "echo", &args, qos_ctx.clone()).unwrap();
    }

    let start = Instant::now();
    let workers: Vec<_> = (0..CLIENT_THREADS)
        .map(|_| {
            let client = client.clone();
            let ior: Ior = ior.clone();
            let qos_ctx = qos_ctx.clone();
            let args = args.clone();
            std::thread::spawn(move || {
                let mut lat_ns = Vec::with_capacity(iters_per_client as usize);
                for _ in 0..iters_per_client {
                    let t0 = Instant::now();
                    client.invoke_qos(&ior, "echo", &args, qos_ctx.clone()).unwrap();
                    lat_ns.push(t0.elapsed().as_nanos() as u64);
                }
                lat_ns
            })
        })
        .collect();
    let mut all_ns: Vec<u64> = Vec::new();
    for w in workers {
        all_ns.extend(w.join().expect("client worker panicked"));
    }
    let wall = start.elapsed().as_secs_f64();
    all_ns.sort_unstable();

    let calls = all_ns.len() as u64;
    let result = CaseResult {
        transport,
        payload,
        qos,
        dispatch_threads,
        clients: CLIENT_THREADS,
        calls,
        throughput_rps: calls as f64 / wall,
        p50_us: percentile_us(&all_ns, 0.50),
        p99_us: percentile_us(&all_ns, 0.99),
    };
    server.shutdown();
    client.shutdown();
    result
}

/// Repo root = nearest ancestor containing ROADMAP.md (cargo bench runs
/// with the package directory as CWD, bare rustc runs from the root).
/// TCP sweeps land in their own artifact so the committed netsim
/// trajectory (exactly 12 deterministic cases) stays comparable.
fn artifact_path(transport: &str) -> PathBuf {
    if let Ok(p) = std::env::var("BENCH_OUT") {
        return PathBuf::from(p);
    }
    let name =
        if transport == "tcp" { "BENCH_hotpath.tcp.json" } else { "BENCH_hotpath.json" };
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        if dir.join("ROADMAP.md").is_file() {
            return dir.join(name);
        }
        if !dir.pop() {
            return PathBuf::from(name);
        }
    }
}

fn json_escape_free(s: &str) -> &str {
    debug_assert!(!s.contains('"') && !s.contains('\\'));
    s
}

fn render_json(mode: &str, cases: &[CaseResult]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"experiment\": \"e11_hotpath\",\n");
    out.push_str(&format!("  \"mode\": \"{}\",\n", json_escape_free(mode)));
    out.push_str(&format!("  \"client_threads\": {CLIENT_THREADS},\n"));
    out.push_str("  \"cases\": [\n");
    for (i, c) in cases.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"transport\": \"{}\", \"payload\": \"{}\", \"qos\": {}, \
             \"dispatch_threads\": {}, \
             \"clients\": {}, \"calls\": {}, \"throughput_rps\": {:.1}, \
             \"p50_us\": {:.3}, \"p99_us\": {:.3}}}{}\n",
            json_escape_free(c.transport),
            json_escape_free(c.payload),
            c.qos,
            c.dispatch_threads,
            c.clients,
            c.calls,
            c.throughput_rps,
            c.p50_us,
            c.p99_us,
            if i + 1 == cases.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    // Tolerate harness flags cargo bench passes (`--bench`, filters).
    let quick = std::env::args().any(|a| a == "--quick");
    let transport: &'static str =
        if std::env::args().any(|a| a == "--tcp") { "tcp" } else { "netsim" };
    let iters_per_client: u64 = if quick { 200 } else { 2000 };
    let mode = if quick { "quick" } else { "full" };

    println!("\n=== E11: closed-loop hot path ({CLIENT_THREADS} clients × {iters_per_client} calls each, {mode}, {transport}) ===");
    println!(
        "  {:<8} {:<8} {:<6} {:>9} {:>12} {:>10} {:>10}",
        "wire", "payload", "qos", "disp_thr", "rps", "p50_us", "p99_us"
    );

    let mut cases = Vec::new();
    for payload in ["null", "1KiB"] {
        for qos in [false, true] {
            for dispatch_threads in [1usize, 2, 4] {
                let c = run_case(transport, payload, qos, dispatch_threads, iters_per_client);
                println!(
                    "  {:<8} {:<8} {:<6} {:>9} {:>12.0} {:>10.1} {:>10.1}",
                    c.transport,
                    c.payload,
                    c.qos,
                    c.dispatch_threads,
                    c.throughput_rps,
                    c.p50_us,
                    c.p99_us
                );
                cases.push(c);
            }
        }
    }

    let path = artifact_path(transport);
    std::fs::write(&path, render_json(mode, &cases)).expect("write bench artifact");
    println!("\n  wrote {}", path.display());
}
