//! E11: closed-loop hot-path throughput/latency sweep.
//!
//! Multi-client closed-loop null-call and 1KiB-payload sweeps against a
//! bank of servants, for `dispatch_threads` ∈ {1, 2, 4} and plain vs
//! QoS-tagged (identity-module-bound) traffic. Reports throughput plus
//! p50/p99 latency and emits `BENCH_hotpath.json` at the repo root so
//! the perf trajectory stays machine-readable across PRs.
//!
//! The workload spreads calls over [`KEYS`] object keys (round-robin per
//! client thread): under the default `DispatchRouting::KeyAffinity` a
//! single-key workload would pin every request to one dispatcher and the
//! sweep over `dispatch_threads` would measure nothing.
//!
//! Extra modes (neither touches the committed artifact):
//! * `--open-loop` — fixed offered load through `invoke_async` with a
//!   bounded in-flight window; latency is measured from each call's
//!   *scheduled* send time, so queueing delay under overload is visible
//!   instead of silently throttling the load like closed loops do.
//!   Writes `BENCH_hotpath.openloop.json` (gitignored).
//! * `--profile` — one case per dispatch-thread count, then a per-stage
//!   µs breakdown (recv, route, queue-wait, dispatch, reply-match) from
//!   the server's and client's metric histograms.
//!
//! Unlike the Criterion benches this is a hand-rolled harness
//! (`harness = false`, no criterion dependency): the closed-loop
//! multi-thread shape does not fit `b.iter`, and the JSON artifact must
//! come out byte-stable. `--quick` runs a fixed low iteration count for
//! CI smoke; `BENCH_OUT=<path>` overrides the artifact location.

use netsim::{Network, NodeId};
use orb::giop::QosContext;
use orb::qos_binding::BindingKey;
use orb::wire::{TcpTransport, WireTransport};
use orb::{Any, Ior, Orb, OrbConfig, OrbError, QosModule, Servant};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Servant answering `echo` with its argument.
struct Echo;
impl Servant for Echo {
    fn interface_id(&self) -> &str {
        "IDL:Echo:1.0"
    }
    fn dispatch(&self, op: &str, args: &[Any]) -> Result<Any, OrbError> {
        match op {
            "echo" => Ok(args.first().cloned().unwrap_or(Any::Void)),
            _ => Err(OrbError::BadOperation(op.to_string())),
        }
    }
}

/// Identity transform module: measures pure QoS-dispatch-path cost.
struct Identity;
impl QosModule for Identity {
    fn name(&self) -> &str {
        "identity"
    }
    fn command(&self, op: &str, _args: &[Any]) -> Result<Any, OrbError> {
        Err(OrbError::BadOperation(op.to_string()))
    }
}

const CLIENT_THREADS: usize = 4;
/// Distinct object keys the workload cycles over, so key-affinity
/// routing has something to shard.
const KEYS: usize = 32;
/// In-flight pipelining window per client thread in the closed-loop
/// sweep. The loop stays closed (self-clocked, bounded in-flight =
/// `CLIENT_THREADS × PIPELINE`), but a deep window keeps the server-side
/// queues warm enough that dispatcher wakeups amortize over batches —
/// with strictly serial clients every sharded dispatcher parks between
/// items and the park/unpark cost, not dispatch, dominates the sweep.
/// Per Little's law the per-call latency is then queue-dominated
/// (p50 ≈ in-flight / throughput), which is why the absolute p50 in the
/// artifact is far above the pre-pipelining trajectory.
const PIPELINE: usize = 8;

struct CaseResult {
    transport: &'static str,
    payload: &'static str,
    qos: bool,
    dispatch_threads: usize,
    clients: usize,
    calls: u64,
    throughput_rps: f64,
    p50_us: f64,
    p99_us: f64,
}

/// One row of the `--profile` per-stage breakdown.
struct StageRow {
    stage: &'static str,
    count: u64,
    mean_us: f64,
    p50: String,
    p99: String,
}

fn percentile_us(sorted_ns: &[u64], q: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ns.len() - 1) as f64 * q).round() as usize;
    sorted_ns[idx] as f64 / 1_000.0
}

/// Start a (server, client) pair on the requested wire; `_net` keeps a
/// netsim alive for the ORBs' lifetime.
fn start_pair(
    transport: &'static str,
    dispatch_threads: usize,
    net_slot: &mut Option<Network>,
) -> (Orb, Orb) {
    match transport {
        "netsim" => {
            let net = Network::new(1);
            let server = Orb::start_with(
                &net,
                "server",
                OrbConfig { dispatch_threads, ..OrbConfig::default() },
            );
            let client = Orb::start(&net, "client");
            *net_slot = Some(net);
            (server, client)
        }
        "tcp" => {
            let ws: Arc<dyn WireTransport> =
                Arc::new(TcpTransport::bind(NodeId(1), "127.0.0.1:0").expect("bind server"));
            let wc: Arc<dyn WireTransport> =
                Arc::new(TcpTransport::bind(NodeId(2), "127.0.0.1:0").expect("bind client"));
            let server = Orb::start_wire(
                ws,
                "server",
                OrbConfig { dispatch_threads, ..OrbConfig::default() },
            );
            let client = Orb::start_wire(wc, "client", OrbConfig::default());
            (server, client)
        }
        other => panic!("unknown transport {other}"),
    }
}

/// Activate the servant bank and (optionally) bind every key to the
/// identity module on the client side.
fn setup_objects(server: &Orb, client: &Orb, qos: bool) -> (Vec<Ior>, Option<QosContext>) {
    // Over TCP the IOR carries the listener endpoint; the client's
    // first invoke registers and dials it, exactly as across processes.
    let iors: Vec<Ior> =
        (0..KEYS).map(|i| server.activate(&format!("echo{i:02}"), Box::new(Echo))).collect();
    let qos_ctx = if qos {
        client.qos_transport().install(Arc::new(Identity));
        server.qos_transport().install(Arc::new(Identity));
        for ior in &iors {
            client
                .qos_transport()
                .bind(BindingKey { peer: None, key: ior.key.clone() }, "identity")
                .unwrap();
        }
        Some(QosContext::new("identity"))
    } else {
        None
    };
    (iors, qos_ctx)
}

fn payload_args(payload: &str) -> Vec<Any> {
    match payload {
        "null" => Vec::new(),
        "1KiB" => vec![Any::Bytes(vec![0xA5u8; 1024])],
        other => panic!("unknown payload shape {other}"),
    }
}

fn stage_rows(server: &Orb, client: &Orb) -> Vec<StageRow> {
    let srv = server.metrics().snapshot();
    let cli = client.metrics().snapshot();
    let mut rows = Vec::new();
    for (stage, snap, name) in [
        ("recv (wire transit)", &srv, "wire.transit_vus"),
        ("route (peek+shard)", &srv, "orb.recv_route_us"),
        ("queue-wait", &srv, "orb.queue_wait_us"),
        ("dispatch (decode+servant+reply)", &srv, "orb.dispatch_us"),
        ("reply-match (client)", &cli, "orb.reply_match_us"),
        ("roundtrip (client)", &cli, "orb.roundtrip_us"),
    ] {
        if let Some(h) = snap.histogram(name) {
            rows.push(StageRow {
                stage,
                count: h.count,
                mean_us: h.mean_us(),
                p50: h.quantile(0.50).map_or_else(|| "-".into(), |q| q.to_string()),
                p99: h.quantile(0.99).map_or_else(|| "-".into(), |q| q.to_string()),
            });
        }
    }
    rows
}

/// Put a live telemetry aggregator behind the measured window: the
/// server answers introspection scrapes while the sweep hammers it, so
/// the committed trajectory carries the telemetry plane's steady-state
/// cost. `MAQS_SCRAPE_INTERVAL_MS` overrides the default period; `0`
/// disables the aggregator entirely (the pre-telemetry baseline).
fn start_scraper(
    server: &Orb,
    client: &Orb,
) -> Option<(Arc<services::TelemetryAggregator>, services::ScrapeDriver)> {
    let interval_ms = std::env::var("MAQS_SCRAPE_INTERVAL_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(services::telemetry::DEFAULT_SCRAPE_INTERVAL_MS);
    if interval_ms == 0 {
        return None;
    }
    server.adapter().activate(
        services::INTROSPECTION_KEY,
        Arc::new(services::IntrospectionServant::new(server.clone())) as Arc<dyn Servant>,
    );
    // Over TCP the client must learn the server's listener up front —
    // the scrape Ior is built from a bare node id, not an IOR exchange.
    let intro_ior = server.attach_endpoint(Ior::new(
        services::introspection::INTROSPECTION_INTERFACE,
        server.node(),
        services::INTROSPECTION_KEY,
    ));
    client.register_endpoints(&intro_ior).expect("register introspection endpoint");
    let agg = Arc::new(services::TelemetryAggregator::new(
        client.clone(),
        services::TelemetryConfig { scrape_interval_ms: interval_ms, ..Default::default() },
    ));
    agg.watch(server.node());
    let driver = agg.start();
    Some((agg, driver))
}

fn run_case(
    transport: &'static str,
    payload: &'static str,
    qos: bool,
    dispatch_threads: usize,
    iters_per_client: u64,
    profile: bool,
) -> (CaseResult, Vec<StageRow>) {
    // The simulator must outlive netsim-backed ORBs.
    let mut _net = None;
    let (server, client) = start_pair(transport, dispatch_threads, &mut _net);
    let (iors, qos_ctx) = setup_objects(&server, &client, qos);
    let scraper = start_scraper(&server, &client);
    let args = payload_args(payload);

    // Warm-up outside the measured window, touching every key.
    for ior in &iors {
        client.invoke_qos(ior, "echo", &args, qos_ctx.clone()).unwrap();
    }

    let start = Instant::now();
    let workers: Vec<_> = (0..CLIENT_THREADS)
        .map(|t| {
            let client = client.clone();
            let iors: Vec<Ior> = iors.clone();
            let qos_ctx = qos_ctx.clone();
            let args = args.clone();
            std::thread::spawn(move || {
                let mut lat_ns = Vec::with_capacity(iters_per_client as usize);
                let mut window: std::collections::VecDeque<(orb::PendingCall, Instant)> =
                    std::collections::VecDeque::with_capacity(PIPELINE);
                for n in 0..iters_per_client {
                    if window.len() == PIPELINE {
                        let (call, t0) = window.pop_front().unwrap();
                        call.wait().unwrap();
                        lat_ns.push(t0.elapsed().as_nanos() as u64);
                    }
                    // Stagger threads so they are not all hammering the
                    // same key (and hence dispatcher) in lockstep.
                    let ior = &iors[(t + n as usize) % KEYS];
                    let t0 = Instant::now();
                    let call = client.invoke_async(ior, "echo", &args, qos_ctx.clone()).unwrap();
                    window.push_back((call, t0));
                }
                for (call, t0) in window {
                    call.wait().unwrap();
                    lat_ns.push(t0.elapsed().as_nanos() as u64);
                }
                lat_ns
            })
        })
        .collect();
    let mut all_ns: Vec<u64> = Vec::new();
    for w in workers {
        all_ns.extend(w.join().expect("client worker panicked"));
    }
    let wall = start.elapsed().as_secs_f64();
    all_ns.sort_unstable();

    let calls = all_ns.len() as u64;
    let result = CaseResult {
        transport,
        payload,
        qos,
        dispatch_threads,
        clients: CLIENT_THREADS,
        calls,
        throughput_rps: calls as f64 / wall,
        p50_us: percentile_us(&all_ns, 0.50),
        p99_us: percentile_us(&all_ns, 0.99),
    };
    let rows = if profile { stage_rows(&server, &client) } else { Vec::new() };
    // Join the scrape driver before tearing the pair down so no scrape
    // races the shutdown.
    drop(scraper);
    server.shutdown();
    client.shutdown();
    (result, rows)
}

/// One open-loop measurement: issue `calls` pipelined requests at a
/// fixed offered rate from a single thread, harvesting through a
/// bounded in-flight window so memory stays flat under overload.
struct OpenLoopResult {
    offered_rps: u64,
    achieved_rps: f64,
    calls: u64,
    p50_us: f64,
    p95_us: f64,
    p99_us: f64,
}

fn run_open_loop(
    transport: &'static str,
    dispatch_threads: usize,
    offered_rps: u64,
    calls: u64,
) -> OpenLoopResult {
    const WINDOW: usize = 64;
    let mut _net = None;
    let (server, client) = start_pair(transport, dispatch_threads, &mut _net);
    let (iors, _) = setup_objects(&server, &client, false);

    for ior in &iors {
        client.invoke_qos(ior, "echo", &[], None).unwrap();
    }

    let interval = Duration::from_nanos(1_000_000_000 / offered_rps.max(1));
    let mut window: std::collections::VecDeque<(orb::PendingCall, Instant)> =
        std::collections::VecDeque::with_capacity(WINDOW);
    let mut lat_ns: Vec<u64> = Vec::with_capacity(calls as usize);
    let start = Instant::now();
    for n in 0..calls {
        // Open loop: call n is *due* at start + n·interval regardless of
        // how the system is coping; latency runs from that due time.
        let due = start + interval * n as u32;
        while Instant::now() < due {
            std::hint::spin_loop();
        }
        if window.len() == WINDOW {
            let (call, sched) = window.pop_front().unwrap();
            call.wait().unwrap();
            lat_ns.push(sched.elapsed().as_nanos() as u64);
        }
        let ior = &iors[n as usize % KEYS];
        let call = client.invoke_async(ior, "echo", &[], None).unwrap();
        window.push_back((call, due));
    }
    for (call, sched) in window {
        call.wait().unwrap();
        lat_ns.push(sched.elapsed().as_nanos() as u64);
    }
    let wall = start.elapsed().as_secs_f64();
    lat_ns.sort_unstable();
    let result = OpenLoopResult {
        offered_rps,
        achieved_rps: calls as f64 / wall,
        calls,
        p50_us: percentile_us(&lat_ns, 0.50),
        p95_us: percentile_us(&lat_ns, 0.95),
        p99_us: percentile_us(&lat_ns, 0.99),
    };
    server.shutdown();
    client.shutdown();
    result
}

/// Repo root = nearest ancestor containing ROADMAP.md (cargo bench runs
/// with the package directory as CWD, bare rustc runs from the root).
/// TCP and open-loop sweeps land in their own artifacts so the committed
/// netsim trajectory (exactly 12 deterministic cases) stays comparable.
fn artifact_path(name: &str) -> PathBuf {
    if let Ok(p) = std::env::var("BENCH_OUT") {
        return PathBuf::from(p);
    }
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        if dir.join("ROADMAP.md").is_file() {
            return dir.join(name);
        }
        if !dir.pop() {
            return PathBuf::from(name);
        }
    }
}

fn closed_loop_artifact(transport: &str) -> PathBuf {
    artifact_path(if transport == "tcp" { "BENCH_hotpath.tcp.json" } else { "BENCH_hotpath.json" })
}

fn json_escape_free(s: &str) -> &str {
    debug_assert!(!s.contains('"') && !s.contains('\\'));
    s
}

fn render_json(mode: &str, cases: &[CaseResult]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"experiment\": \"e11_hotpath\",\n");
    out.push_str(&format!("  \"mode\": \"{}\",\n", json_escape_free(mode)));
    out.push_str(&format!("  \"client_threads\": {CLIENT_THREADS},\n"));
    out.push_str(&format!("  \"keys\": {KEYS},\n"));
    out.push_str("  \"cases\": [\n");
    for (i, c) in cases.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"transport\": \"{}\", \"payload\": \"{}\", \"qos\": {}, \
             \"dispatch_threads\": {}, \
             \"clients\": {}, \"calls\": {}, \"throughput_rps\": {:.1}, \
             \"p50_us\": {:.3}, \"p99_us\": {:.3}}}{}\n",
            json_escape_free(c.transport),
            json_escape_free(c.payload),
            c.qos,
            c.dispatch_threads,
            c.clients,
            c.calls,
            c.throughput_rps,
            c.p50_us,
            c.p99_us,
            if i + 1 == cases.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn render_open_loop_json(mode: &str, dispatch_threads: usize, rows: &[OpenLoopResult]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"experiment\": \"e11_hotpath_open_loop\",\n");
    out.push_str(&format!("  \"mode\": \"{}\",\n", json_escape_free(mode)));
    out.push_str(&format!("  \"dispatch_threads\": {dispatch_threads},\n"));
    out.push_str(&format!("  \"keys\": {KEYS},\n"));
    out.push_str("  \"cases\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"offered_rps\": {}, \"achieved_rps\": {:.1}, \"calls\": {}, \
             \"p50_us\": {:.3}, \"p95_us\": {:.3}, \"p99_us\": {:.3}}}{}\n",
            r.offered_rps,
            r.achieved_rps,
            r.calls,
            r.p50_us,
            r.p95_us,
            r.p99_us,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    // Tolerate harness flags cargo bench passes (`--bench`, filters).
    let quick = std::env::args().any(|a| a == "--quick");
    let profile = std::env::args().any(|a| a == "--profile");
    let open_loop = std::env::args().any(|a| a == "--open-loop");
    let transport: &'static str =
        if std::env::args().any(|a| a == "--tcp") { "tcp" } else { "netsim" };
    let iters_per_client: u64 = if quick { 200 } else { 2000 };
    let mode = if quick { "quick" } else { "full" };

    if open_loop {
        let dispatch_threads = 4;
        let calls: u64 = if quick { 5_000 } else { 50_000 };
        println!("\n=== E11 open loop: fixed offered load, 1 client thread, window 64 ({mode}, {transport}, {dispatch_threads} dispatchers) ===");
        println!(
            "  {:>12} {:>12} {:>8} {:>10} {:>10} {:>10}",
            "offered_rps", "achieved", "calls", "p50_us", "p95_us", "p99_us"
        );
        let mut rows = Vec::new();
        for offered in [50_000u64, 100_000, 200_000, 300_000] {
            let r = run_open_loop(transport, dispatch_threads, offered, calls);
            println!(
                "  {:>12} {:>12.0} {:>8} {:>10.1} {:>10.1} {:>10.1}",
                r.offered_rps, r.achieved_rps, r.calls, r.p50_us, r.p95_us, r.p99_us
            );
            rows.push(r);
        }
        let path = artifact_path("BENCH_hotpath.openloop.json");
        std::fs::write(&path, render_open_loop_json(mode, dispatch_threads, &rows))
            .expect("write open-loop artifact");
        println!("\n  wrote {}", path.display());
        return;
    }

    if profile {
        println!("\n=== E11 --profile: per-stage breakdown, null/plain ({mode}, {transport}) ===");
        for dispatch_threads in [1usize, 4] {
            let (c, rows) =
                run_case(transport, "null", false, dispatch_threads, iters_per_client, true);
            println!(
                "\n  {} dispatcher(s): {:.0} rps, p50 {:.1} µs, p99 {:.1} µs",
                dispatch_threads, c.throughput_rps, c.p50_us, c.p99_us
            );
            println!(
                "  {:<32} {:>9} {:>9} {:>8} {:>8}",
                "stage", "count", "mean_us", "p50", "p99"
            );
            for r in rows {
                println!(
                    "  {:<32} {:>9} {:>9.2} {:>8} {:>8}",
                    r.stage, r.count, r.mean_us, r.p50, r.p99
                );
            }
        }
        return;
    }

    println!("\n=== E11: closed-loop hot path ({CLIENT_THREADS} clients × {iters_per_client} calls each over {KEYS} keys, {mode}, {transport}) ===");
    println!(
        "  {:<8} {:<8} {:<6} {:>9} {:>12} {:>10} {:>10}",
        "wire", "payload", "qos", "disp_thr", "rps", "p50_us", "p99_us"
    );

    let mut cases = Vec::new();
    for payload in ["null", "1KiB"] {
        for qos in [false, true] {
            for dispatch_threads in [1usize, 2, 4] {
                let (c, _) =
                    run_case(transport, payload, qos, dispatch_threads, iters_per_client, false);
                println!(
                    "  {:<8} {:<8} {:<6} {:>9} {:>12.0} {:>10.1} {:>10.1}",
                    c.transport,
                    c.payload,
                    c.qos,
                    c.dispatch_threads,
                    c.throughput_rps,
                    c.p50_us,
                    c.p99_us
                );
                cases.push(c);
            }
        }
    }

    let path = closed_loop_artifact(transport);
    std::fs::write(&path, render_json(mode, &cases)).expect("write bench artifact");
    println!("\n  wrote {}", path.display());
}
