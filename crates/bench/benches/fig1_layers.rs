//! E1 (Fig. 1): per-layer request cost.
//!
//! Measures the same `echo` invocation at each layer of the Fig. 1
//! stack: direct servant call, adapter dispatch, collocated ORB call,
//! full remote round-trip, and the remote round-trip with a woven stub
//! (mediator + prolog/epilog). Payloads sweep 16 B – 64 KiB.
//!
//! Expected shape: each layer adds cost; the weaving increment is small
//! relative to the marshalling + network increment — the paper's
//! separation of concerns is affordable.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use maqs_bench::{banner, payload, row, Echo};
use netsim::Network;
use orb::adapter::ObjectAdapter;
use orb::ior::ObjectKey;
use orb::{Any, Orb, Servant};
use std::sync::Arc;
use weaver::{Call, ClientStub, Mediator, Next};

struct PassThrough;
impl Mediator for PassThrough {
    fn characteristic(&self) -> &str {
        "passthrough"
    }
    fn around(&self, call: Call, next: Next<'_>) -> Result<Any, orb::OrbError> {
        next(call)
    }
}

fn summary() {
    banner("E1 / Fig.1", "per-layer request cost (1000 echo calls each, 1 KiB payload)");
    let arg = Any::Bytes(payload(1024, 0.5, 1));
    let n = 1000u32;

    let time = |f: &mut dyn FnMut()| {
        let start = std::time::Instant::now();
        for _ in 0..n {
            f();
        }
        start.elapsed().as_secs_f64() * 1e6 / n as f64
    };

    // Layer 0: direct call on the servant.
    let servant = Echo;
    let direct = time(&mut || {
        let _ = servant.dispatch("echo", std::slice::from_ref(&arg));
    });

    // Layer 1: object-adapter dispatch.
    let adapter = ObjectAdapter::new();
    adapter.activate("echo", Arc::new(Echo));
    let key = ObjectKey("echo".into());
    let adapter_cost = time(&mut || {
        let _ = adapter.dispatch(&key, "echo", std::slice::from_ref(&arg));
    });

    // Layer 2: collocated ORB invocation.
    let net = Network::new(1);
    let orb = Orb::start(&net, "solo");
    let ior = orb.activate("echo", Box::new(Echo));
    let collocated = time(&mut || {
        let _ = orb.invoke(&ior, "echo", std::slice::from_ref(&arg));
    });

    // Layer 3: full remote round-trip (marshalling + simulated wire).
    let server = Orb::start(&net, "server");
    let client = Orb::start(&net, "client");
    let remote_ior = server.activate("echo", Box::new(Echo));
    let remote = time(&mut || {
        let _ = client.invoke(&remote_ior, "echo", std::slice::from_ref(&arg));
    });

    // Layer 4: remote + woven stub (one pass-through mediator).
    let stub = ClientStub::new(client.clone(), remote_ior.clone());
    stub.set_mediator(Arc::new(PassThrough));
    let woven = time(&mut || {
        let _ = stub.invoke("echo", std::slice::from_ref(&arg));
    });

    row("layer", &["µs/call".into()]);
    row("0 direct servant call", &[format!("{direct:9.3}")]);
    row("1 + object adapter", &[format!("{adapter_cost:9.3}")]);
    row("2 + ORB (collocated shortcut)", &[format!("{collocated:9.3}")]);
    row("3 + marshalling + wire (remote)", &[format!("{remote:9.3}")]);
    row("4 + mediator weaving (remote)", &[format!("{woven:9.3}")]);
    println!(
        "  weaving increment: {:.3} µs ({:.1}% of a remote call)",
        woven - remote,
        (woven - remote) / remote * 100.0
    );

    orb.shutdown();
    server.shutdown();
    client.shutdown();
}

fn bench(c: &mut Criterion) {
    summary();

    let net = Network::new(1);
    let server = Orb::start(&net, "server");
    let client = Orb::start(&net, "client");
    let ior = server.activate("echo", Box::new(Echo));
    let stub = ClientStub::new(client.clone(), ior.clone());
    stub.set_mediator(Arc::new(PassThrough));

    let mut group = c.benchmark_group("fig1_layers");
    for size in [16usize, 1024, 65536] {
        let arg = Any::Bytes(payload(size, 0.5, 2));
        group.bench_with_input(BenchmarkId::new("remote_plain", size), &arg, |b, arg| {
            b.iter(|| client.invoke(&ior, "echo", std::slice::from_ref(arg)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("remote_woven", size), &arg, |b, arg| {
            b.iter(|| stub.invoke("echo", std::slice::from_ref(arg)).unwrap())
        });
    }
    group.finish();
    server.shutdown();
    client.shutdown();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30).measurement_time(std::time::Duration::from_secs(3));
    targets = bench
}
criterion_main!(benches);
