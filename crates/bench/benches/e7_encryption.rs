//! E7: privacy through encryption.
//!
//! Round-trip overhead of the encryption module across payload sizes,
//! raw cipher throughput, and the cost of the key-agreement and rekey
//! operations (the QoS-to-QoS path).
//!
//! Expected shape: overhead linear in payload with a small constant;
//! rekeying is microseconds, so on-the-fly key changes are viable.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use maqs_bench::{banner, payload, row, Echo};
use netsim::Network;
use orb::giop::QosContext;
use orb::qos_binding::BindingKey;
use orb::{Any, Orb};
use qosmech::crypt::{keyex, open, seal, EncryptionModule, ENCRYPTION_MODULE};
use std::sync::Arc;

fn setup(bound: bool) -> (Orb, Orb, orb::Ior) {
    let net = Network::new(70);
    let server = Orb::start(&net, "server");
    let client = Orb::start(&net, "client");
    let ior = server.activate_with_tags("echo", Box::new(Echo), &["Encryption"]);
    client.qos_transport().install(Arc::new(EncryptionModule::new(42)));
    server.qos_transport().install(Arc::new(EncryptionModule::new(42)));
    if bound {
        client
            .qos_transport()
            .bind(BindingKey { peer: None, key: ior.key.clone() }, ENCRYPTION_MODULE)
            .unwrap();
    }
    (server, client, ior)
}

fn summary() {
    banner("E7", "encrypted vs plain round-trip (wall time, 500 calls each)");
    row("payload", &["plain µs".into(), "encrypted µs".into(), "overhead".into()]);
    for size in [64usize, 1024, 16384, 262144] {
        let arg = [Any::Bytes(payload(size, 0.5, 4))];
        let n = 500u32;
        let time = |client: &Orb, ior: &orb::Ior, qos: Option<QosContext>| {
            let start = std::time::Instant::now();
            for _ in 0..n {
                client.invoke_qos(ior, "echo", &arg, qos.clone()).unwrap();
            }
            start.elapsed().as_secs_f64() * 1e6 / n as f64
        };
        let (server_p, client_p, ior_p) = setup(false);
        let plain = time(&client_p, &ior_p, None);
        server_p.shutdown();
        client_p.shutdown();
        let (server_e, client_e, ior_e) = setup(true);
        let enc = time(&client_e, &ior_e, Some(QosContext::new("Encryption")));
        server_e.shutdown();
        client_e.shutdown();
        row(
            &format!("{size} B"),
            &[
                format!("{plain:9.1}"),
                format!("{enc:9.1}"),
                format!("{:5.1}%", (enc - plain) / plain * 100.0),
            ],
        );
    }

    banner("E7b", "key agreement and rekey");
    let n = 10_000u32;
    let start = std::time::Instant::now();
    let mut acc = 0u64;
    for i in 1..=n as u64 {
        acc ^= keyex::shared(i, keyex::public(i + 1));
    }
    criterion::black_box(acc);
    row("DH-style agreement", &[format!("{:8.2} µs/op", start.elapsed().as_secs_f64() * 1e6 / n as f64)]);
    let module = EncryptionModule::new(1);
    let start = std::time::Instant::now();
    for i in 0..n as u64 {
        module.rekey(i);
    }
    criterion::black_box(module.frames());
    row("module rekey", &[format!("{:8.2} µs/op", start.elapsed().as_secs_f64() * 1e6 / n as f64)]);
}

fn bench(c: &mut Criterion) {
    summary();

    // Raw cipher throughput.
    let mut group = c.benchmark_group("e7_cipher_throughput");
    for size in [1024usize, 65536] {
        let data = payload(size, 0.5, 5);
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("seal", size), &data, |b, data| {
            b.iter(|| seal(42, 7, data))
        });
        let frame = seal(42, 7, &data);
        group.bench_with_input(BenchmarkId::new("open", size), &frame, |b, frame| {
            b.iter(|| open(42, frame).unwrap())
        });
    }
    group.finish();

    // End-to-end encrypted round-trips.
    let (server, client, ior) = setup(true);
    let qos = QosContext::new("Encryption");
    let mut group = c.benchmark_group("e7_roundtrip");
    for size in [64usize, 16384] {
        let arg = [Any::Bytes(payload(size, 0.5, 6))];
        group.bench_with_input(BenchmarkId::new("encrypted", size), &arg, |b, arg| {
            b.iter(|| client.invoke_qos(&ior, "echo", arg, Some(qos.clone())).unwrap())
        });
    }
    group.finish();
    server.shutdown();
    client.shutdown();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3));
    targets = bench
}
criterion_main!(benches);
