//! E3 (Fig. 3): the ORB invocation-interface decision tree.
//!
//! Measures every branch of the Fig. 3 dispatch: plain GIOP requests,
//! QoS-tagged-but-unbound requests (fallback path), module-bound
//! requests (identity module), transport commands, module commands, and
//! the cost of reflective module loading/unloading.
//!
//! Expected shape: the QoS-aware branch costs one binding lookup more
//! than plain GIOP; commands cost about a service request; module
//! loading is microseconds — cheap enough for on-demand reflection.

use criterion::{criterion_group, criterion_main, Criterion};
use maqs_bench::{banner, row, Echo};
use netsim::Network;
use orb::giop::{CommandTarget, QosContext};
use orb::qos_binding::{BindingKey, Outbound, QosModule};
use orb::{Any, Orb, OrbError};
use std::sync::Arc;

/// Identity transform module: pure dispatch-path cost.
struct Identity;
impl QosModule for Identity {
    fn name(&self) -> &str {
        "identity"
    }
    fn command(&self, op: &str, _args: &[Any]) -> Result<Any, OrbError> {
        match op {
            "ping" => Ok(Any::Void),
            other => Err(OrbError::BadOperation(other.to_string())),
        }
    }
    fn outbound(&self, dst: netsim::NodeId, bytes: Vec<u8>) -> Result<Outbound, OrbError> {
        Ok(vec![(dst, bytes)])
    }
}

fn setup() -> (Network, Orb, Orb, orb::Ior) {
    let net = Network::new(1);
    let server = Orb::start(&net, "server");
    let client = Orb::start(&net, "client");
    let ior = server.activate_with_tags("echo", Box::new(Echo), &["identity"]);
    client.qos_transport().install(Arc::new(Identity));
    server.qos_transport().install(Arc::new(Identity));
    (net, server, client, ior)
}

fn summary() {
    banner("E3 / Fig.3", "invocation-interface dispatch branches (2000 calls each)");
    let (_net, server, client, ior) = setup();
    let n = 2000u32;
    let arg = [Any::Long(1)];
    let time = |f: &mut dyn FnMut()| {
        let start = std::time::Instant::now();
        for _ in 0..n {
            f();
        }
        start.elapsed().as_secs_f64() * 1e6 / n as f64
    };

    row("branch", &["µs/request".into()]);
    let t = time(&mut || {
        client.invoke(&ior, "echo", &arg).unwrap();
    });
    row("plain GIOP service request", &[format!("{t:9.3}")]);

    let qos = QosContext::new("identity");
    let t = time(&mut || {
        client.invoke_qos(&ior, "echo", &arg, Some(qos.clone())).unwrap();
    });
    row("QoS-tagged, unbound (fallback)", &[format!("{t:9.3}")]);

    client
        .qos_transport()
        .bind(BindingKey { peer: None, key: ior.key.clone() }, "identity")
        .unwrap();
    let t = time(&mut || {
        client.invoke_qos(&ior, "echo", &arg, Some(qos.clone())).unwrap();
    });
    row("QoS-bound via identity module", &[format!("{t:9.3}")]);

    let t = time(&mut || {
        client
            .send_command(server.node(), CommandTarget::Transport, "list_modules", &[])
            .unwrap();
    });
    row("transport command", &[format!("{t:9.3}")]);

    let t = time(&mut || {
        client
            .send_command(server.node(), CommandTarget::Module("identity".into()), "ping", &[])
            .unwrap();
    });
    row("module command", &[format!("{t:9.3}")]);

    // Reflective loading: local factory instantiation + install + remove.
    server.qos_transport().register_factory(
        "identity-type",
        Arc::new(|_cfg: &Any| Ok(Arc::new(Identity) as Arc<dyn QosModule>)),
    );
    let t = time(&mut || {
        server.qos_transport().load_module("identity-type", &Any::Void).unwrap();
        server.qos_transport().unload_module("identity").unwrap();
    });
    row("module load+unload (local)", &[format!("{t:9.3}")]);
    server.qos_transport().install(Arc::new(Identity)); // restore

    server.shutdown();
    client.shutdown();
}

fn bench(c: &mut Criterion) {
    summary();

    let (_net, server, client, ior) = setup();
    let arg = [Any::Long(1)];
    let qos = QosContext::new("identity");
    let mut group = c.benchmark_group("fig3_dispatch");

    group.bench_function("plain_giop", |b| {
        b.iter(|| client.invoke(&ior, "echo", &arg).unwrap())
    });
    group.bench_function("qos_unbound_fallback", |b| {
        b.iter(|| client.invoke_qos(&ior, "echo", &arg, Some(qos.clone())).unwrap())
    });
    client
        .qos_transport()
        .bind(BindingKey { peer: None, key: ior.key.clone() }, "identity")
        .unwrap();
    group.bench_function("qos_bound_module", |b| {
        b.iter(|| client.invoke_qos(&ior, "echo", &arg, Some(qos.clone())).unwrap())
    });
    group.bench_function("transport_command", |b| {
        b.iter(|| {
            client
                .send_command(server.node(), CommandTarget::Transport, "list_modules", &[])
                .unwrap()
        })
    });
    group.bench_function("module_command", |b| {
        b.iter(|| {
            client
                .send_command(server.node(), CommandTarget::Module("identity".into()), "ping", &[])
                .unwrap()
        })
    });
    group.finish();
    server.shutdown();
    client.shutdown();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30).measurement_time(std::time::Duration::from_secs(3));
    targets = bench
}
criterion_main!(benches);
