//! E5: performance through load balancing.
//!
//! Routing distribution and completion time for the three strategies
//! over heterogeneous servers (one deliberately slow).
//!
//! Expected shape: round-robin ≈ random ≈ uniform shares; least-loaded
//! steers traffic away from the slow server and finishes the batch
//! fastest when service times are skewed.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use maqs_bench::{banner, row};
use netsim::Network;
use orb::{Any, Orb, OrbError, Servant};
use qosmech::loadbalance::{deploy_servers, distribution, LoadBalancingMediator, Strategy};
use std::sync::Arc;
use weaver::ClientStub;

struct Worker {
    delay_us: u64,
}
impl Servant for Worker {
    fn interface_id(&self) -> &str {
        "IDL:Worker:1.0"
    }
    fn dispatch(&self, op: &str, _args: &[Any]) -> Result<Any, OrbError> {
        match op {
            "work" => {
                if self.delay_us > 0 {
                    // Busy-wait: sleep() granularity is too coarse at µs scale.
                    let start = std::time::Instant::now();
                    while start.elapsed().as_micros() < self.delay_us as u128 {}
                }
                Ok(Any::Void)
            }
            _ => Err(OrbError::BadOperation(op.to_string())),
        }
    }
}

fn run(strategy: Strategy, delays_us: &[u64], calls: usize) -> (Vec<u64>, f64) {
    let net = Network::new(50);
    let delays = delays_us.to_vec();
    let (orbs, iors) =
        deploy_servers(&net, delays.len(), "w", |i| Box::new(Worker { delay_us: delays[i] }));
    let client = Orb::start(&net, "client");
    let mediator = Arc::new(LoadBalancingMediator::new(iors.clone(), strategy, 42));
    let stub = ClientStub::new(client.clone(), iors[0].clone());
    stub.set_mediator(mediator.clone());
    let start = std::time::Instant::now();
    for _ in 0..calls {
        stub.invoke("work", &[]).unwrap();
    }
    let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;
    let routed = mediator.routed();
    for o in orbs {
        o.shutdown();
    }
    client.shutdown();
    (routed, elapsed_ms)
}

fn summary() {
    banner("E5", "load balancing: 4 servers, server 3 is 50x slower (120 calls)");
    let delays = [20u64, 20, 20, 1000];
    row(
        "strategy",
        &["s0%".into(), "s1%".into(), "s2%".into(), "s3%(slow)".into(), "batch ms".into()],
    );
    for (strategy, label) in [
        (Strategy::RoundRobin, "round-robin"),
        (Strategy::Random, "random"),
        (Strategy::LeastLoaded, "least-loaded"),
    ] {
        let (routed, ms) = run(strategy, &delays, 120);
        let dist = distribution(&routed);
        let mut cols: Vec<String> =
            (0..4).map(|i| format!("{:5.1}", dist[&i] * 100.0)).collect();
        cols.push(format!("{ms:8.1}"));
        row(label, &cols);
    }

    banner("E5b", "uniform servers: all strategies spread evenly");
    for (strategy, label) in [
        (Strategy::RoundRobin, "round-robin"),
        (Strategy::Random, "random"),
        (Strategy::LeastLoaded, "least-loaded"),
    ] {
        let (routed, _) = run(strategy, &[20, 20, 20, 20], 120);
        let dist = distribution(&routed);
        let cols: Vec<String> = (0..4).map(|i| format!("{:5.1}", dist[&i] * 100.0)).collect();
        row(label, &cols);
    }
}

fn bench(c: &mut Criterion) {
    summary();

    let mut group = c.benchmark_group("e5_loadbalance");
    let delays = [20u64, 20, 20, 1000];
    for (strategy, name) in [
        (Strategy::RoundRobin, "round_robin"),
        (Strategy::Random, "random"),
        (Strategy::LeastLoaded, "least_loaded"),
    ] {
        let net = Network::new(51);
        let d = delays;
        let (orbs, iors) =
            deploy_servers(&net, d.len(), "w", move |i| Box::new(Worker { delay_us: d[i] }));
        let client = Orb::start(&net, "client");
        let mediator = Arc::new(LoadBalancingMediator::new(iors.clone(), strategy, 42));
        let stub = ClientStub::new(client.clone(), iors[0].clone());
        stub.set_mediator(mediator);
        group.bench_with_input(BenchmarkId::new("skewed_call", name), &stub, |b, stub| {
            b.iter(|| stub.invoke("work", &[]).unwrap())
        });
        for o in orbs {
            o.shutdown();
        }
        client.shutdown();
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3));
    targets = bench
}
criterion_main!(benches);
