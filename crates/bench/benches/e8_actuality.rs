//! E8: actuality (bounded staleness) of data.
//!
//! Cache hit ratio and server offload vs the negotiated validity
//! interval under a fixed read rate, measured staleness bounds, and the
//! per-call cost of cache hits vs misses.
//!
//! Expected shape: hit ratio grows with the validity interval (≈ 1 -
//! inter-arrival/validity); staleness stays below the validity bound; a
//! cache hit costs ~100x less than a remote miss.

use criterion::{criterion_group, criterion_main, Criterion};
use maqs_bench::{banner, row};
use netsim::Network;
use orb::{Any, Orb, OrbError, Servant};
use qosmech::actuality::ActualityMediator;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use weaver::ClientStub;

struct Source(AtomicU64);
impl Servant for Source {
    fn interface_id(&self) -> &str {
        "IDL:Source:1.0"
    }
    fn dispatch(&self, op: &str, _args: &[Any]) -> Result<Any, OrbError> {
        match op {
            "read" => Ok(Any::ULongLong(self.0.fetch_add(1, Ordering::Relaxed))),
            _ => Err(OrbError::BadOperation(op.to_string())),
        }
    }
}

fn run(validity_ms: u64, reads: usize, interarrival_ms: u64) -> (f64, u64) {
    let net = Network::new(80);
    let server = Orb::start(&net, "server");
    let client = Orb::start(&net, "client");
    let ior = server.activate("src", Box::new(Source(AtomicU64::new(0))));
    let stub = ClientStub::new(client.clone(), ior);
    let mediator = Arc::new(ActualityMediator::new(
        Duration::from_millis(validity_ms),
        vec!["read".to_string()],
    ));
    stub.set_mediator(mediator.clone());
    for _ in 0..reads {
        stub.invoke("read", &[]).unwrap();
        std::thread::sleep(Duration::from_millis(interarrival_ms));
    }
    let hit_ratio = mediator.hit_ratio();
    let server_requests = server.stats().requests_handled;
    server.shutdown();
    client.shutdown();
    (hit_ratio, server_requests)
}

fn summary() {
    banner("E8", "hit ratio vs validity interval (40 reads, 5 ms apart)");
    row("validity", &["hit ratio".into(), "server reqs".into(), "offload".into()]);
    for validity_ms in [0u64, 5, 20, 100, 1000] {
        let (hit, served) = run(validity_ms, 40, 5);
        row(
            &format!("{validity_ms:4} ms"),
            &[
                format!("{hit:8.2}"),
                format!("{served:8}"),
                format!("{:6.0}%", hit * 100.0),
            ],
        );
    }

    banner("E8b", "measured staleness stays under the validity bound");
    // Read a monotonically increasing counter: staleness in "versions"
    // = how far the cached value lags the true one.
    let net = Network::new(81);
    let server = Orb::start(&net, "server");
    let client = Orb::start(&net, "client");
    let source = Arc::new(Source(AtomicU64::new(0)));
    struct Shared(Arc<Source>);
    impl Servant for Shared {
        fn interface_id(&self) -> &str {
            "IDL:Source:1.0"
        }
        fn dispatch(&self, op: &str, args: &[Any]) -> Result<Any, OrbError> {
            self.0.dispatch(op, args)
        }
    }
    let ior = server.activate("src", Box::new(Shared(Arc::clone(&source))));
    let stub = ClientStub::new(client.clone(), ior);
    let mediator = Arc::new(ActualityMediator::new(
        Duration::from_millis(50),
        vec!["read".to_string()],
    ));
    stub.set_mediator(mediator);
    let mut max_lag = 0i64;
    for _ in 0..30 {
        let seen = stub.invoke("read", &[]).unwrap().as_i64().unwrap_or(0);
        let truth = source.0.load(Ordering::Relaxed) as i64;
        max_lag = max_lag.max(truth - seen);
        // Source advances ~1 version per 10 ms (cache validity 50 ms =>
        // lag bounded by ~5 versions).
        source.0.fetch_add(1, Ordering::Relaxed);
        std::thread::sleep(Duration::from_millis(10));
    }
    row("validity 50ms, source +1/10ms", &[format!("max version lag {max_lag} (bound ≈ 6)")]);
    server.shutdown();
    client.shutdown();
}

fn bench(c: &mut Criterion) {
    summary();

    let net = Network::new(82);
    let server = Orb::start(&net, "server");
    let client = Orb::start(&net, "client");
    let ior = server.activate("src", Box::new(Source(AtomicU64::new(0))));

    let mut group = c.benchmark_group("e8_actuality");
    // Miss path: validity zero => every read goes to the server.
    let stub_miss = ClientStub::new(client.clone(), ior.clone());
    stub_miss.set_mediator(Arc::new(ActualityMediator::new(
        Duration::ZERO,
        vec!["read".to_string()],
    )));
    group.bench_function("cache_miss_remote", |b| {
        b.iter(|| stub_miss.invoke("read", &[]).unwrap())
    });
    // Hit path: long validity => served locally.
    let stub_hit = ClientStub::new(client.clone(), ior.clone());
    stub_hit.set_mediator(Arc::new(ActualityMediator::new(
        Duration::from_secs(3600),
        vec!["read".to_string()],
    )));
    stub_hit.invoke("read", &[]).unwrap(); // warm
    group.bench_function("cache_hit_local", |b| {
        b.iter(|| stub_hit.invoke("read", &[]).unwrap())
    });
    group.finish();
    server.shutdown();
    client.shutdown();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3));
    targets = bench
}
criterion_main!(benches);
