//! E4: fault tolerance via replica groups.
//!
//! Availability under crash faults vs group size k, correctness of
//! majority voting under value faults, per-call cost of failover vs
//! voting, and the state-transfer cost for replica (re)initialization.
//!
//! Expected shape: availability rises with k (1 - p^k for failover);
//! majority voting pays ~k unicast calls per invocation but masks value
//! faults that failover cannot; state-transfer cost is linear in state
//! size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use maqs_bench::{banner, row};
use netsim::Network;
use orb::{Any, Orb, OrbError, Servant};
use parking_lot::Mutex;
use qosmech::replication::{deploy_replicas, ReplicationMediator, ReplicationStrategy};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Duration;
use weaver::ClientStub;

struct Register(Mutex<Vec<u8>>);
impl Register {
    fn boxed(size: usize) -> Box<dyn Servant> {
        Box::new(Register(Mutex::new(vec![7; size])))
    }
}
impl Servant for Register {
    fn interface_id(&self) -> &str {
        "IDL:Register:1.0"
    }
    fn dispatch(&self, op: &str, _args: &[Any]) -> Result<Any, OrbError> {
        match op {
            "get" => Ok(Any::LongLong(self.0.lock().len() as i64)),
            _ => Err(OrbError::BadOperation(op.to_string())),
        }
    }
    fn get_state(&self) -> Result<Any, OrbError> {
        Ok(Any::Bytes(self.0.lock().clone()))
    }
    fn set_state(&self, state: &Any) -> Result<(), OrbError> {
        *self.0.lock() = state.as_bytes().unwrap_or(&[]).to_vec();
        Ok(())
    }
}

fn fast_client(net: &Network) -> Orb {
    Orb::start_with(
        net,
        "client",
        orb::OrbConfig { request_timeout: Duration::from_millis(150), ..Default::default() },
    )
}

/// Availability = fraction of calls answered, with each replica crashed
/// independently with probability `p` before each call batch.
fn availability(k: usize, p: f64, rounds: usize, seed: u64) -> f64 {
    let net = Network::new(seed);
    let (orbs, iors) = deploy_replicas(&net, k, "reg", |_| Register::boxed(8));
    let client = fast_client(&net);
    let mediator = Arc::new(ReplicationMediator::new(
        client.clone(),
        iors.clone(),
        ReplicationStrategy::Failover,
    ));
    let stub = ClientStub::new(client.clone(), iors[0].clone());
    stub.set_mediator(mediator);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ok = 0usize;
    for _ in 0..rounds {
        for orb in &orbs {
            if rng.gen_bool(p) {
                net.crash(orb.node());
            } else {
                net.revive(orb.node());
            }
        }
        if stub.invoke("get", &[]).is_ok() {
            ok += 1;
        }
    }
    for o in &orbs {
        o.shutdown();
    }
    client.shutdown();
    ok as f64 / rounds as f64
}

fn summary() {
    banner("E4", "availability vs replica count under crash faults (40 rounds/cell)");
    row("k \\ crash prob p", &["p=0.1".into(), "p=0.3".into(), "p=0.5".into(), "1-p^k (p=0.3)".into()]);
    for k in [1usize, 3, 5] {
        let mut cols = Vec::new();
        for p in [0.1, 0.3, 0.5] {
            cols.push(format!("{:5.2}", availability(k, p, 40, 100 + k as u64)));
        }
        cols.push(format!("{:5.2}", 1.0 - 0.3f64.powi(k as i32)));
        row(&format!("k={k}"), &cols);
    }

    banner("E4b", "majority voting masks value faults failover cannot");
    // 3 replicas, one value-corrupt: failover to the corrupt one gives
    // the wrong answer when it is first; voting never does.
    struct Fixed(i64);
    impl Servant for Fixed {
        fn interface_id(&self) -> &str {
            "IDL:Register:1.0"
        }
        fn dispatch(&self, _op: &str, _a: &[Any]) -> Result<Any, OrbError> {
            Ok(Any::LongLong(self.0))
        }
    }
    let net = Network::new(3);
    let values = [99i64, 5, 5]; // first replica corrupt
    let (orbs, iors) = deploy_replicas(&net, 3, "reg", |i| Box::new(Fixed(values[i])));
    let client = fast_client(&net);
    for (strategy, label) in [
        (ReplicationStrategy::Failover, "failover answer"),
        (ReplicationStrategy::MajorityVote, "majority answer"),
    ] {
        let mediator =
            Arc::new(ReplicationMediator::new(client.clone(), iors.clone(), strategy));
        let stub = ClientStub::new(client.clone(), iors[0].clone());
        stub.set_mediator(mediator);
        let answer = stub.invoke("get", &[]).unwrap();
        row(label, &[format!("{answer}")]);
    }
    for o in &orbs {
        o.shutdown();
    }
    client.shutdown();

    banner("E4c", "state-transfer cost vs state size");
    row("state size", &["µs/transfer".into()]);
    for size in [256usize, 4096, 65536] {
        let net = Network::new(4);
        let a = Orb::start(&net, "a");
        let b = Orb::start(&net, "b");
        let c = Orb::start(&net, "c");
        let src = a.activate("reg", Register::boxed(size));
        let dst = b.activate("reg", Register::boxed(0));
        let n = 50;
        let start = std::time::Instant::now();
        for _ in 0..n {
            groupcomm::transfer_state(&c, &src, &dst).unwrap();
        }
        let us = start.elapsed().as_secs_f64() * 1e6 / n as f64;
        row(&format!("{size} B"), &[format!("{us:9.1}")]);
        a.shutdown();
        b.shutdown();
        c.shutdown();
    }
}

fn bench(c: &mut Criterion) {
    summary();

    let mut group = c.benchmark_group("e4_replication");
    for k in [1usize, 3, 5] {
        let net = Network::new(10 + k as u64);
        let (orbs, iors) = deploy_replicas(&net, k, "reg", |_| Register::boxed(8));
        let client = Orb::start(&net, "client");
        for (strategy, name) in [
            (ReplicationStrategy::Failover, "failover"),
            (ReplicationStrategy::MajorityVote, "majority"),
        ] {
            let mediator =
                Arc::new(ReplicationMediator::new(client.clone(), iors.clone(), strategy));
            let stub = ClientStub::new(client.clone(), iors[0].clone());
            stub.set_mediator(mediator);
            group.bench_with_input(BenchmarkId::new(name, k), &stub, |b, stub| {
                b.iter(|| stub.invoke("get", &[]).unwrap())
            });
        }
        for o in &orbs {
            o.shutdown();
        }
        client.shutdown();
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3));
    targets = bench
}
criterion_main!(benches);
