//! Shared helpers for the MAQS-RS benchmark harness.
//!
//! Every bench target regenerates one experiment of `EXPERIMENTS.md`:
//! it first prints the experiment's summary table (deterministic,
//! virtual-time or count based results), then runs Criterion timing
//! groups for the latency-shaped rows.

#![forbid(unsafe_code)]

use orb::{Any, OrbError, Servant};

/// A servant answering `echo` with its argument — the standard workload
/// object of the microbenchmarks.
pub struct Echo;

impl Servant for Echo {
    fn interface_id(&self) -> &str {
        "IDL:Echo:1.0"
    }
    fn dispatch(&self, op: &str, args: &[Any]) -> Result<Any, OrbError> {
        match op {
            "echo" => Ok(args.first().cloned().unwrap_or(Any::Void)),
            _ => Err(OrbError::BadOperation(op.to_string())),
        }
    }
}

/// Print an experiment header in a uniform format.
pub fn banner(id: &str, title: &str) {
    println!("\n=== {id}: {title} ===");
}

/// Print one table row: a label plus value columns.
pub fn row(label: &str, cols: &[String]) {
    println!("  {label:<34} {}", cols.join("  "));
}

/// Synthetic payload with tunable compressibility: `redundancy` in
/// `[0, 1]` is the fraction of repeated content.
pub fn payload(len: usize, redundancy: f64, seed: u64) -> Vec<u8> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(len);
    let pattern = b"MAQS-frame-metadata;codec=sim;";
    while out.len() < len {
        if rng.gen_bool(redundancy) {
            out.extend_from_slice(pattern);
        } else {
            for _ in 0..8 {
                out.push(rng.gen());
            }
        }
    }
    out.truncate(len);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_len_and_determinism() {
        let a = payload(1000, 0.5, 7);
        let b = payload(1000, 0.5, 7);
        assert_eq!(a.len(), 1000);
        assert_eq!(a, b);
        assert_ne!(a, payload(1000, 0.5, 8));
    }

    #[test]
    fn redundant_payload_compresses_better() {
        let dense = payload(8192, 0.95, 1);
        let noisy = payload(8192, 0.05, 1);
        let c_dense = qosmech::compress::codec::compress(&dense).len();
        let c_noisy = qosmech::compress::codec::compress(&noisy).len();
        assert!(c_dense < c_noisy);
    }
}
