#!/usr/bin/env sh
# Offline build-and-test harness for containers with no crates.io access.
#
# The CI container bakes in the Rust toolchain but has no network and an
# empty cargo registry, so `cargo build` at the repo root cannot resolve
# the external dependencies (parking_lot, bytes, crossbeam, rand,
# criterion, proptest). This script copies the workspace into a shadow
# directory, patches those dependencies to the API-subset stand-ins under
# `tools/offline/`, and builds + tests there. The real tree is never
# modified, and real builds (with network) never see the stubs.
#
# Usage:
#   tools/offline-check.sh              # build + test the whole shadow
#   tools/offline-check.sh <cargo args> # e.g. `test -p orb --lib`
#
# Caveats:
# - proptest-based tests (tests/proptests.rs, crates/netsim/tests/
#   properties.rs) are removed from the shadow; everything else compiles
#   and runs.
# - The stand-ins are simplified (std-mutex parking_lot, a few-iteration
#   criterion); timing-sensitive results are NOT representative. This is
#   a correctness gate, not a benchmark environment.
set -eu

REPO="$(cd "$(dirname "$0")/.." && pwd)"
SHADOW="${MAQS_SHADOW_DIR:-/tmp/maqs-shadow}"

# Mirror the workspace (sources only; the shadow keeps its own target/).
mkdir -p "$SHADOW"
python3 - "$REPO" "$SHADOW" <<'EOF'
import os, shutil, sys
repo, shadow = sys.argv[1], sys.argv[2]
skip = {".git", "target", "tools"}
live = set()
for entry in os.listdir(repo):
    if entry in skip:
        continue
    live.add(entry)
    src, dst = os.path.join(repo, entry), os.path.join(shadow, entry)
    if os.path.isdir(src):
        shutil.copytree(src, dst, dirs_exist_ok=True)
    else:
        shutil.copy2(src, dst)
# Delete shadow entries that no longer exist in the repo (stale sources
# would otherwise keep compiling), but keep the shadow's own target/.
for entry in os.listdir(shadow):
    if entry == "target" or entry in live:
        continue
    path = os.path.join(shadow, entry)
    shutil.rmtree(path) if os.path.isdir(path) else os.remove(path)
# Prune files deleted from still-present directories.
for entry in live:
    src_root, dst_root = os.path.join(repo, entry), os.path.join(shadow, entry)
    if not os.path.isdir(dst_root):
        continue
    for dirpath, dirnames, filenames in os.walk(dst_root, topdown=False):
        rel = os.path.relpath(dirpath, shadow)
        for f in filenames:
            if not os.path.exists(os.path.join(repo, rel, f)):
                os.remove(os.path.join(dirpath, f))
        if not os.listdir(dirpath):
            os.rmdir(dirpath)
EOF

# Point every external dependency at the offline stand-ins.
cat >>"$SHADOW/Cargo.toml" <<EOF

[patch.crates-io]
parking_lot = { path = "$REPO/tools/offline/parking_lot" }
bytes = { path = "$REPO/tools/offline/bytes" }
crossbeam = { path = "$REPO/tools/offline/crossbeam" }
rand = { path = "$REPO/tools/offline/rand" }
criterion = { path = "$REPO/tools/offline/criterion" }
proptest = { path = "$REPO/tools/offline/proptest" }
EOF

# The proptest stand-in only satisfies dependency resolution; drop the
# tests that would link against it.
rm -f "$SHADOW/tests/proptests.rs" "$SHADOW/crates/netsim/tests/properties.rs"
python3 - "$SHADOW/crates/maqs/Cargo.toml" <<'EOF'
import re, sys
path = sys.argv[1]
text = open(path).read()
text = re.sub(r'\[\[test\]\]\nname = "proptests"\npath = "[^"]*"\n?', "", text)
open(path, "w").write(text)
EOF

export CARGO_NET_OFFLINE=true
cd "$SHADOW"
if [ "$#" -gt 0 ]; then
    exec cargo "$@"
fi
cargo build --workspace
cargo test -q --workspace
