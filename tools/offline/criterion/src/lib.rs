//! Offline stand-in for `criterion`, used only by `tools/offline-check.sh`.
//! Compiles the Criterion-based benches and runs each closure a handful of
//! times so bench targets can be smoke-executed offline; performs no
//! statistics and writes no reports.

use std::fmt;
use std::time::Duration;

pub use std::hint::black_box;

/// How many times the stub runs each bench closure.
const STUB_ITERS: u64 = 3;

#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, param: impl fmt::Display) -> BenchmarkId {
        BenchmarkId { id: format!("{}/{}", name.into(), param) }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

pub struct Bencher {
    _private: (),
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..STUB_ITERS {
            black_box(f());
        }
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    _c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, _t: Throughput) {}

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        eprintln!("[criterion-stub] {}/{}", self.name, id.id);
        f(&mut Bencher { _private: () });
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        eprintln!("[criterion-stub] {}/{}", self.name, id.id);
        f(&mut Bencher { _private: () }, input);
        self
    }

    pub fn finish(self) {}
}

#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), _c: self }
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        eprintln!("[criterion-stub] {id}");
        f(&mut Bencher { _private: () });
        self
    }

    pub fn final_summary(&mut self) {}
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
