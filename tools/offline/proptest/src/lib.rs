//! Offline stand-in for `proptest` that exists only so cargo can resolve
//! the dev-dependency without network access. It implements nothing: the
//! offline check (`tools/offline-check.sh`) removes the proptest-based
//! test files from its shadow workspace before building, so nothing links
//! against this crate.
