//! Offline stand-in for `rand`, used only by `tools/offline-check.sh`.
//! Deterministic splitmix64-based `StdRng` plus the `Rng`/`RngCore`/
//! `SeedableRng` trait subset this repo uses. Not statistically serious;
//! good enough to exercise seeded simulation paths in tests.

use std::ops::{Range, RangeInclusive};

pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types `Rng::gen` can produce.
pub trait Standard: Sized {
    fn from_rng(rng: &mut dyn RngCore) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_rng(rng: &mut dyn RngCore) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn from_rng(rng: &mut dyn RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn from_rng(rng: &mut dyn RngCore) -> f64 {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Ranges `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}
sample_range_int!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        self.start + f64::from_rng(rng) * (self.end - self.start)
    }
}

pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0,1]");
        f64::from_rng(self) < p
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic splitmix64 generator standing in for rand's StdRng.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15) }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }
}
