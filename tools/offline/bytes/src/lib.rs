//! Offline stand-in for `bytes`, used only by `tools/offline-check.sh`.
//! A cheaply-cloneable shared byte buffer (shared allocation plus a
//! window) covering the API subset this repo uses. `From<Vec<u8>>` keeps
//! the vector's own allocation, matching the real crate's move semantics
//! (the repo's alloc_framing test asserts pointer identity on that path).

use std::fmt;
use std::ops::{Bound, RangeBounds};
use std::sync::Arc;

#[derive(Clone)]
enum Repr {
    Static(&'static [u8]),
    Shared(Arc<Vec<u8>>),
}

impl Repr {
    fn as_slice(&self) -> &[u8] {
        match self {
            Repr::Static(s) => s,
            Repr::Shared(v) => v,
        }
    }
}

#[derive(Clone)]
pub struct Bytes {
    data: Repr,
    start: usize,
    end: usize,
}

impl Bytes {
    pub fn new() -> Bytes {
        Bytes { data: Repr::Static(&[]), start: 0, end: 0 }
    }

    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes::from(data.to_vec())
    }

    pub fn from_static(data: &'static [u8]) -> Bytes {
        Bytes { data: Repr::Static(data), start: 0, end: data.len() }
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    pub fn as_ref_slice(&self) -> &[u8] {
        &self.data.as_slice()[self.start..self.end]
    }

    /// A zero-copy sub-window sharing the same allocation.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(begin <= end && end <= len, "slice {begin}..{end} out of range {len}");
        Bytes { data: self.data.clone(), start: self.start + begin, end: self.start + end }
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref_slice().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_ref_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_ref_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes { data: Repr::Shared(Arc::new(v)), start: 0, end }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Bytes {
        Bytes::from_static(v)
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Bytes {
        Bytes::from(v.into_bytes())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Bytes {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_ref_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_ref_slice() == other.as_ref_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref_slice() == other.as_slice()
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_ref_slice()
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_ref_slice() == *other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_ref_slice().hash(state);
    }
}
