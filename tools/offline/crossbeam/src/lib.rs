//! Offline stand-in for `crossbeam`, used only by `tools/offline-check.sh`.
//! Provides `crossbeam::channel` (multi-producer multi-consumer unbounded
//! channel) on top of a mutex-and-condvar queue.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex, PoisonError};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        cv: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    impl<T> Shared<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
            self.queue.lock().unwrap_or_else(PoisonError::into_inner)
        }
    }

    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
    }

    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.shared.receivers.load(Ordering::SeqCst) == 0 {
                return Err(SendError(value));
            }
            self.shared.lock().push_back(value);
            self.shared.cv.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            self.shared.senders.fetch_add(1, Ordering::SeqCst);
            Sender { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                self.shared.cv.notify_all();
            }
        }
    }

    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Receiver<T> {
        fn disconnected(&self) -> bool {
            self.shared.senders.load(Ordering::SeqCst) == 0
        }

        pub fn len(&self) -> usize {
            self.shared.lock().len()
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.shared.lock();
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.disconnected() {
                    return Err(RecvError);
                }
                q = self.shared.cv.wait(q).unwrap_or_else(PoisonError::into_inner);
            }
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.shared.lock();
            match q.pop_front() {
                Some(v) => Ok(v),
                None if self.disconnected() => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut q = self.shared.lock();
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.disconnected() {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self
                    .shared
                    .cv
                    .wait_timeout(q, deadline - now)
                    .unwrap_or_else(PoisonError::into_inner);
                q = guard;
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            self.shared.receivers.fetch_add(1, Ordering::SeqCst);
            Receiver { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.receivers.fetch_sub(1, Ordering::SeqCst);
        }
    }
}
