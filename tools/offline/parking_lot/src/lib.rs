//! Offline stand-in for `parking_lot`, used only by `tools/offline-check.sh`
//! to type-check and test the workspace in a container with no crates.io
//! access. Implements the API subset this repo uses on top of `std::sync`
//! (poisoning is swallowed, matching parking_lot's no-poisoning semantics).

use std::fmt;
use std::sync::{self, PoisonError};
use std::time::{Duration, Instant};

/// Mutex with the `parking_lot` API shape (non-poisoning `lock()`).
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex { inner: sync::Mutex::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard { inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)) }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(p)) => {
                Some(MutexGuard { inner: Some(p.into_inner()) })
            }
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

pub struct MutexGuard<'a, T: ?Sized> {
    // Option so Condvar can temporarily take the std guard during waits.
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken")
    }
}

/// RwLock with the `parking_lot` API shape.
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> RwLock<T> {
        RwLock { inner: sync::RwLock::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard { inner: self.inner.read().unwrap_or_else(PoisonError::into_inner) }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard { inner: self.inner.write().unwrap_or_else(PoisonError::into_inner) }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> RwLock<T> {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Result of a timed condvar wait.
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condvar operating on this module's `MutexGuard` (parking_lot shape:
/// waits take `&mut MutexGuard`).
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Condvar {
        Condvar { inner: sync::Condvar::new() }
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard taken");
        let g = self.inner.wait(g).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard taken");
        let (g, res) =
            self.inner.wait_timeout(g, timeout).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
        WaitTimeoutResult { timed_out: res.timed_out() }
    }

    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let timeout = deadline.saturating_duration_since(Instant::now());
        self.wait_for(guard, timeout)
    }
}

impl Default for Condvar {
    fn default() -> Condvar {
        Condvar::new()
    }
}
