//! Integration: negotiation, preference adaptation, monitoring and
//! accounting working together (the §2.2 infrastructure services).

use maqs::prelude::*;
use parking_lot::Mutex;
use qosmech::actuality::FreshnessStampQosImpl;
use qosmech::loadbalance::LoadReportingQosImpl;
use qosmech::replication::ReplicationQosImpl;
use services::accounting::{Accountant, PriceModel};
use services::monitoring::{Bound, Monitor, Statistic};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

const SPEC: &str = r#"
    interface Store with qos Replication, Actuality, LoadBalancing {
        long long read(in string key);
        void write(in string key, in long long value);
    };
"#;

struct Store(Mutex<HashMap<String, i64>>);
impl Store {
    fn new() -> Arc<dyn Servant> {
        Arc::new(Store(Mutex::new(HashMap::new())))
    }
}
impl Servant for Store {
    fn interface_id(&self) -> &str {
        "IDL:Store:1.0"
    }
    fn dispatch(&self, op: &str, args: &[Any]) -> Result<Any, OrbError> {
        match op {
            "read" => {
                let k = args[0].as_str().unwrap_or("");
                Ok(Any::LongLong(self.0.lock().get(k).copied().unwrap_or(0)))
            }
            "write" => {
                let k = args[0].as_str().unwrap_or("").to_string();
                self.0.lock().insert(k, args[1].as_i64().unwrap_or(0));
                Ok(Any::Void)
            }
            _ => Err(OrbError::BadOperation(op.to_string())),
        }
    }
}

fn setup(replication_capacity: usize) -> (Network, MaqsNode, MaqsNode, Ior) {
    let net = Network::new(31);
    let server = MaqsNode::builder(&net, "server").spec(SPEC).build().unwrap();
    let client = MaqsNode::builder(&net, "client").build().unwrap();
    let ior = server
        .serve(
            "store",
            Store::new(),
            ServeOptions::interface("Store")
                .qos_impl(Arc::new(ReplicationQosImpl::new()))
                .qos_impl(Arc::new(FreshnessStampQosImpl::new()))
                .qos_impl(Arc::new(LoadReportingQosImpl::new()))
                .capacity("Replication", replication_capacity),
        )
        .unwrap();
    (net, server, client, ior)
}

#[test]
fn preferences_pick_best_offer_and_degrade_under_capacity_pressure() {
    let (_net, server, client, _ior) = setup(1);
    let node = server.orb().node();
    let prefs = ContractHierarchy::new(
        "prefer-replication",
        ContractNode::Any(vec![
            ContractNode::Leaf(Offer::new("Replication", 10.0)),
            ContractNode::Leaf(Offer::new("Actuality", 6.0)),
            ContractNode::Leaf(Offer::new("LoadBalancing", 2.0)),
        ]),
    );
    // First client gets the top choice.
    let (a1, u1) = client.negotiator().negotiate_preferences(node, "store", &prefs).unwrap();
    assert_eq!(a1[0].characteristic, "Replication");
    assert_eq!(u1, 10.0);
    // Second client: Replication is both out of capacity *and*
    // conflicting; with the paper's one-active-characteristic rule, no
    // other characteristic can be activated while Replication is live.
    let err = client.negotiator().negotiate_preferences(node, "store", &prefs);
    assert!(err.is_err());
    // After release, the next client negotiates the best remaining.
    client.negotiator().release(node, &a1[0]).unwrap();
    let (a2, u2) = client.negotiator().negotiate_preferences(node, "store", &prefs).unwrap();
    // Replication capacity was freed too, so the top choice wins again.
    assert_eq!(a2[0].characteristic, "Replication");
    assert_eq!(u2, 10.0);
    server.shutdown();
    client.shutdown();
}

#[test]
fn capacity_decrease_forces_degraded_renegotiation() {
    let (_net, server, client, _ior) = setup(3);
    let node = server.orb().node();
    let prefs = ContractHierarchy::new(
        "p",
        ContractNode::Any(vec![
            ContractNode::Leaf(Offer::new("Replication", 10.0)),
            ContractNode::Leaf(Offer::new("Actuality", 5.0)),
        ]),
    );
    let (a1, _) = client.negotiator().negotiate_preferences(node, "store", &prefs).unwrap();
    assert_eq!(a1[0].characteristic, "Replication");
    // Operator shrinks capacity (resource decrease) and the client
    // releases + renegotiates: only the degraded option remains.
    server.negotiation().set_capacity("store", "Replication", 0);
    client.negotiator().release(node, &a1[0]).unwrap();
    let (a2, u2) = client.negotiator().negotiate_preferences(node, "store", &prefs).unwrap();
    assert_eq!(a2[0].characteristic, "Actuality");
    assert_eq!(u2, 5.0);
    server.shutdown();
    client.shutdown();
}

#[test]
fn monitor_violation_triggers_renegotiation_handler() {
    let (_net, server, client, ior) = setup(1);
    let node = server.orb().node();
    let agreement = client
        .negotiator()
        .negotiate_offer(node, "store", &Offer::new("Actuality", 1.0))
        .unwrap();

    let monitor = Monitor::new(8);
    monitor.add_rule("store", "latency_ms", Statistic::Mean, Bound::Max, 5.0);
    let violations = Arc::new(AtomicUsize::new(0));
    let seen = Arc::clone(&violations);
    monitor.on_violation(Arc::new(move |_| {
        seen.fetch_add(1, Ordering::Relaxed);
    }));

    // Simulate measured latencies drifting over the agreed bound.
    for latency in [1.0, 2.0, 9.0, 30.0] {
        monitor.record("store", "latency_ms", latency);
    }
    assert!(violations.load(Ordering::Relaxed) >= 1);

    // The violation handler's real-world action: renegotiate.
    let relaxed = client
        .negotiator()
        .renegotiate(node, &agreement, vec![("validity_ms".to_string(), Any::ULongLong(5000))])
        .unwrap();
    assert_eq!(relaxed.version, 2);
    assert_eq!(relaxed.params[0].1, Any::ULongLong(5000));
    let _ = ior;
    server.shutdown();
    client.shutdown();
}

#[test]
fn accounting_meters_agreement_usage() {
    let (_net, server, client, ior) = setup(1);
    let node = server.orb().node();
    let agreement = client
        .negotiator()
        .negotiate_offer(node, "store", &Offer::new("Replication", 1.0))
        .unwrap();

    let accountant = Accountant::new();
    accountant.set_tariff(
        "Replication",
        PriceModel { per_call: 0.05, per_byte: 0.001, per_second: 0.0 },
    );
    // Meter the woven traffic (in a deployment the prolog would do this).
    for i in 0..10 {
        let args = [Any::from("k"), Any::LongLong(i)];
        client.orb().invoke(&ior, "write", &args).unwrap();
        let bytes: usize = args.iter().map(|a| a.to_bytes().len()).sum();
        accountant.record_call(agreement.id, &agreement.characteristic, bytes as u64);
    }
    let invoice = accountant.invoice(agreement.id);
    assert_eq!(invoice.calls, 10);
    assert!(invoice.bytes > 0);
    assert!(invoice.total > 0.5); // 10 calls * 0.05 plus bytes
    let closed = accountant.close(agreement.id);
    assert_eq!(closed.total, invoice.total);
    assert_eq!(accountant.total_due(), 0.0);
    server.shutdown();
    client.shutdown();
}

#[test]
fn all_contract_combines_characteristics_across_objects() {
    // The `All` combinator needs multiple objects (one active
    // characteristic each): weave two objects and satisfy an All-contract
    // spanning them.
    let net = Network::new(33);
    let server = MaqsNode::builder(&net, "server").spec(SPEC).build().unwrap();
    let client = MaqsNode::builder(&net, "client").build().unwrap();
    let _a = server
        .serve(
            "store-a",
            Store::new(),
            ServeOptions::interface("Store").qos_impl(Arc::new(ReplicationQosImpl::new())),
        )
        .unwrap();
    let _b = server
        .serve(
            "store-b",
            Store::new(),
            ServeOptions::interface("Store").qos_impl(Arc::new(FreshnessStampQosImpl::new())),
        )
        .unwrap();
    let node = server.orb().node();
    let n = client.negotiator();
    let ra = n.negotiate_offer(node, "store-a", &Offer::new("Replication", 2.0)).unwrap();
    let rb = n.negotiate_offer(node, "store-b", &Offer::new("Actuality", 1.0)).unwrap();
    assert_eq!(ra.characteristic, "Replication");
    assert_eq!(rb.characteristic, "Actuality");
    assert_eq!(server.negotiation().live_agreements(), 2);
    server.shutdown();
    client.shutdown();
}

#[test]
fn offers_reflect_installed_implementations_only() {
    let net = Network::new(34);
    let server = MaqsNode::builder(&net, "server").spec(SPEC).build().unwrap();
    let client = MaqsNode::builder(&net, "client").build().unwrap();
    // Only Actuality installed, although three are assigned in QIDL.
    server
        .serve(
            "store",
            Store::new(),
            ServeOptions::interface("Store").qos_impl(Arc::new(FreshnessStampQosImpl::new())),
        )
        .unwrap();
    let offers = client.negotiator().offers(server.orb().node(), "store").unwrap();
    assert_eq!(offers, vec!["Actuality"]);
    // Negotiating a merely assigned (but uninstalled) characteristic fails.
    assert!(client
        .negotiator()
        .negotiate_offer(server.orb().node(), "store", &Offer::new("Replication", 1.0))
        .is_err());
    server.shutdown();
    client.shutdown();
}
