//! Integration: remote introspection over the ORB.
//!
//! The acceptance path for the telemetry plane: a client node pulls a
//! *remote* server's metrics snapshot, flight-recorder tail, health
//! counters and woven-deployment shape through plain GIOP requests to
//! the well-known `introspection` servant — no side channel, no shared
//! memory. The same snapshots then feed the exporters, so what a
//! dashboard renders is exactly what travelled the wire.

use maqs::prelude::*;
use maqs::services::introspection::INTROSPECTION_KEY;
use netsim::NodeId;
use orb::export::prometheus_text;
use orb::{FlightEventKind, TcpTransport, WireTransport};
use std::sync::Arc;

const SPEC: &str = r#"
    interface Counter with qos Replication {
        void bump();
        long long total();
    };
"#;

struct Counter(parking_lot::Mutex<i64>);

impl Servant for Counter {
    fn interface_id(&self) -> &str {
        "IDL:Counter:1.0"
    }
    fn dispatch(&self, op: &str, _args: &[Any]) -> Result<Any, OrbError> {
        match op {
            "bump" => {
                *self.0.lock() += 1;
                Ok(Any::Void)
            }
            "total" => Ok(Any::LongLong(*self.0.lock())),
            _ => Err(OrbError::BadOperation(op.to_string())),
        }
    }
}

#[test]
fn remote_client_pulls_metrics_flight_health_and_bindings_over_giop() {
    let net = Network::new(7);
    let server = MaqsNode::builder(&net, "server").spec(SPEC).build().unwrap();
    let client = MaqsNode::builder(&net, "client").build().unwrap();

    let ior = server
        .serve(
            "counter",
            Arc::new(Counter(parking_lot::Mutex::new(0))),
            ServeOptions::interface("Counter")
                .qos_impl(Arc::new(maqs::qosmech::replication::ReplicationQosImpl::new())),
        )
        .unwrap();
    let stub = client.stub(&ior);
    for _ in 0..3 {
        stub.invoke("bump", &[]).unwrap();
    }
    assert_eq!(stub.invoke("total", &[]).unwrap(), Any::LongLong(3));

    let introspector = client.introspector();
    let server_node = server.orb().node();

    // Health: the server's own view of its wire counters, fetched remotely.
    let health = introspector.health(server_node).unwrap();
    assert_eq!(health.node, "server");
    assert!(health.requests_handled >= 4, "{health:?}");
    assert!(health.flight_events >= 4, "{health:?}");

    // Metrics: the full snapshot crosses the wire in Any form, ordered.
    let snapshot = introspector.metrics_snapshot(server_node).unwrap();
    let handled = snapshot
        .counters
        .iter()
        .find(|(name, _)| name == "orb.requests_handled")
        .map(|(_, v)| *v)
        .expect("orb.requests_handled in remote snapshot");
    assert!(handled >= 4, "{handled}");
    assert!(snapshot.histograms.iter().any(|(name, _)| name == "orb.dispatch_us"));
    let mut sorted = snapshot.counters.clone();
    sorted.sort_by(|a, b| a.0.cmp(&b.0));
    assert_eq!(snapshot.counters, sorted, "remote snapshot arrives sorted");

    // The remote snapshot feeds the exporter directly.
    let exposition = prometheus_text(&snapshot);
    assert!(exposition.contains("# TYPE maqs_orb_requests_handled counter"), "{exposition}");
    assert!(exposition.contains("maqs_orb_dispatch_us_count"), "{exposition}");

    // Flight tail: recent lifecycle events, dispatches included.
    let tail = introspector.flight_tail(server_node, 64).unwrap();
    assert!(!tail.is_empty());
    assert!(
        tail.iter().any(|e| e.kind == FlightEventKind::RequestDispatched && &*e.node == "server"),
        "{tail:?}"
    );
    assert!(tail.windows(2).all(|w| w[0].seq < w[1].seq), "tail ordered by seq");
    let short = introspector.flight_tail(server_node, 2).unwrap();
    assert!(short.len() <= 2);

    // Bindings: the woven deployment as served, with installed QoS.
    let bindings = introspector.bindings(server_node).unwrap();
    assert_eq!(bindings.len(), 1, "{bindings:?}");
    assert_eq!(bindings[0].object, "counter");
    assert_eq!(bindings[0].interface, "IDL:Counter:1.0");
    assert!(bindings[0].characteristics.iter().any(|c| c == "Replication"), "{bindings:?}");

    // Cursor poll: `flight_since` ships each event exactly once across
    // consecutive pulls — the tail-and-dedupe dance is the server's job
    // now.
    let first = introspector.flight_since(server_node, 0).unwrap();
    assert!(!first.is_empty());
    assert!(first.windows(2).all(|w| w[0].seq < w[1].seq), "since(0) ordered by seq");
    let cursor = first.last().unwrap().seq + 1;
    stub.invoke("bump", &[]).unwrap();
    let fresh = introspector.flight_since(server_node, cursor).unwrap();
    assert!(!fresh.is_empty(), "new traffic must appear after the cursor");
    assert!(fresh.iter().all(|e| e.seq >= cursor), "{fresh:?}");

    // Agreements: none negotiated yet, then exactly the one we strike.
    assert!(introspector.agreements(server_node).unwrap().is_empty());
    let agreement = client
        .negotiator()
        .negotiate_offer(
            server_node,
            "counter",
            &Offer::new("Replication", 1.0).with_param("deadline_ms", Any::ULongLong(5)),
        )
        .unwrap();
    let live = introspector.agreements(server_node).unwrap();
    assert_eq!(live.len(), 1, "{live:?}");
    assert_eq!(live[0].id, agreement.id);
    assert_eq!(live[0].object, "counter");
    assert_eq!(live[0].params, vec![("deadline_ms".to_string(), Any::ULongLong(5))]);

    server.shutdown();
    client.shutdown();
}

/// The full introspection exchange over a real socket backend: what the
/// netsim test proves, proven again across an actual OS transport.
fn introspection_over_sockets(server_wire: Arc<dyn WireTransport>, client_wire: Arc<dyn WireTransport>) {
    let server = MaqsNode::builder_wire(server_wire, "server").spec(SPEC).build().unwrap();
    let client = MaqsNode::builder_wire(client_wire, "client").build().unwrap();

    let ior = server
        .serve(
            "counter",
            Arc::new(Counter(parking_lot::Mutex::new(0))),
            ServeOptions::interface("Counter")
                .qos_impl(Arc::new(maqs::qosmech::replication::ReplicationQosImpl::new())),
        )
        .unwrap();
    // Socket backends bootstrap from the IOR's endpoint profile; the
    // introspection servant itself is reached by bare node id after.
    client.orb().register_endpoints(&ior).unwrap();
    let stub = client.stub(&ior);
    for _ in 0..3 {
        stub.invoke("bump", &[]).unwrap();
    }

    let introspector = client.introspector();
    let health = introspector.health(ior.node).unwrap();
    assert_eq!(health.node, "server");
    assert!(health.requests_handled >= 3, "{health:?}");

    let snapshot = introspector.metrics_snapshot(ior.node).unwrap();
    assert!(snapshot.counter("orb.requests_handled") >= 3);
    assert!(snapshot.histograms.iter().any(|(name, _)| name == "orb.dispatch_us"));

    let since = introspector.flight_since(ior.node, 0).unwrap();
    assert!(
        since.iter().any(|e| e.kind == FlightEventKind::RequestDispatched),
        "{since:?}"
    );
    let cursor = since.last().unwrap().seq + 1;
    stub.invoke("bump", &[]).unwrap();
    let fresh = introspector.flight_since(ior.node, cursor).unwrap();
    assert!(fresh.iter().all(|e| e.seq >= cursor), "{fresh:?}");

    let agreement = client
        .negotiator()
        .negotiate_offer(
            ior.node,
            "counter",
            &Offer::new("Replication", 1.0).with_param("deadline_ms", Any::ULongLong(5)),
        )
        .unwrap();
    let live = introspector.agreements(ior.node).unwrap();
    assert_eq!(live.len(), 1, "{live:?}");
    assert_eq!(live[0].id, agreement.id);

    let bindings = introspector.bindings(ior.node).unwrap();
    assert_eq!(bindings.len(), 1, "{bindings:?}");
    assert_eq!(bindings[0].object, "counter");

    server.shutdown();
    client.shutdown();
}

#[test]
fn introspection_over_tcp_loopback() {
    let server = TcpTransport::bind(NodeId(1), "127.0.0.1:0").expect("bind server");
    let client = TcpTransport::bind(NodeId(2), "127.0.0.1:0").expect("bind client");
    introspection_over_sockets(Arc::new(server), Arc::new(client));
}

#[cfg(unix)]
#[test]
fn introspection_over_unix_sockets() {
    let dir = std::env::temp_dir();
    let pid = std::process::id();
    let server_path = dir.join(format!("maqs-intro-srv-{pid}.sock"));
    let client_path = dir.join(format!("maqs-intro-cli-{pid}.sock"));
    let server = orb::UdsTransport::bind(NodeId(1), server_path.to_str().unwrap())
        .expect("bind server uds");
    let client = orb::UdsTransport::bind(NodeId(2), client_path.to_str().unwrap())
        .expect("bind client uds");
    introspection_over_sockets(Arc::new(server), Arc::new(client));
    let _ = std::fs::remove_file(&server_path);
    let _ = std::fs::remove_file(&client_path);
}

#[test]
fn introspection_works_collocated_and_rejects_unknown_operations() {
    let net = Network::new(8);
    let node = MaqsNode::builder(&net, "solo").build().unwrap();

    // A node can introspect itself through its own ORB (collocated path).
    let health = node.introspector().health(node.orb().node()).unwrap();
    assert_eq!(health.node, "solo");

    // Unknown operations surface as remote BadOperation, not a hang.
    let ior = orb::Ior::new("IDL:maqs/Introspection:1.0", node.orb().node(), INTROSPECTION_KEY);
    let err = node.orb().invoke(&ior, "not_an_op", &[]).unwrap_err();
    assert!(matches!(err, OrbError::BadOperation(_)), "{err:?}");

    node.shutdown();
}
