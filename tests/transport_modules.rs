//! Integration: the Fig. 3 ORB dispatch tree and reflective module
//! loading across nodes.

use maqs::prelude::*;
use orb::dii::{DynamicCommand, DynamicRequest};
use orb::giop::{CommandTarget, QosContext};
use orb::qos_binding::BindingKey;
use qosmech::compress::{CompressionModule, COMPRESSION_MODULE};
use qosmech::crypt::{keyex, EncryptionModule, ENCRYPTION_MODULE};
use std::sync::Arc;

struct Echo;
impl Servant for Echo {
    fn interface_id(&self) -> &str {
        "IDL:Echo:1.0"
    }
    fn dispatch(&self, op: &str, args: &[Any]) -> Result<Any, OrbError> {
        match op {
            "echo" => Ok(args.first().cloned().unwrap_or(Any::Void)),
            _ => Err(OrbError::BadOperation(op.to_string())),
        }
    }
}

fn pair() -> (Network, Orb, Orb, Ior) {
    let net = Network::new(41);
    let server = Orb::start(&net, "server");
    let client = Orb::start(&net, "client");
    let ior = server.activate_with_tags("echo", Box::new(Echo), &["Compression", "Encryption"]);
    (net, server, client, ior)
}

#[test]
fn remote_dynamic_module_loading_via_transport_command() {
    let (_net, server, client, ior) = pair();
    // The server registers a factory; the *client* loads the module
    // remotely through the transport's command interface — the paper's
    // "dynamic loading of QoS modules on request".
    server.qos_transport().register_factory(
        "compression",
        Arc::new(|_cfg: &Any| Ok(Arc::new(CompressionModule::new()) as Arc<dyn orb::QosModule>)),
    );
    let loaded = DynamicCommand::to_transport(server.node(), "load_module")
        .arg(Any::from("compression"))
        .invoke(&client)
        .unwrap();
    assert_eq!(loaded, Any::Str(COMPRESSION_MODULE.into()));
    let listed = DynamicCommand::to_transport(server.node(), "list_modules")
        .invoke(&client)
        .unwrap();
    assert_eq!(listed, Any::Sequence(vec![Any::Str(COMPRESSION_MODULE.into())]));

    // Client side loads its own and binds; compressed traffic flows.
    client.qos_transport().install(Arc::new(CompressionModule::new()));
    client
        .qos_transport()
        .bind(BindingKey { peer: None, key: ior.key.clone() }, COMPRESSION_MODULE)
        .unwrap();
    let reply = client
        .invoke_qos(
            &ior,
            "echo",
            &[Any::Bytes(b"abc ".repeat(512))],
            Some(QosContext::new("Compression")),
        )
        .unwrap();
    assert_eq!(reply.as_bytes().unwrap().len(), 2048);
    server.shutdown();
    client.shutdown();
}

#[test]
fn module_dynamic_interface_reached_through_dii() {
    let (_net, server, client, _ior) = pair();
    server.qos_transport().install(Arc::new(EncryptionModule::new(5)));
    // Module-specific command via DII: rekey, then read the key id.
    let id_before = DynamicCommand::to_module(server.node(), ENCRYPTION_MODULE, "key_id")
        .invoke(&client)
        .unwrap();
    DynamicCommand::to_module(server.node(), ENCRYPTION_MODULE, "rekey")
        .arg(Any::ULongLong(99))
        .invoke(&client)
        .unwrap();
    let id_after = DynamicCommand::to_module(server.node(), ENCRYPTION_MODULE, "key_id")
        .invoke(&client)
        .unwrap();
    assert_ne!(id_before, id_after);
    server.shutdown();
    client.shutdown();
}

#[test]
fn unbound_qos_traffic_falls_back_to_plain_giop() {
    let (net, server, client, ior) = pair();
    // QoS context present but nothing bound: Fig. 3's fallback arrow.
    let reply = client
        .invoke_qos(&ior, "echo", &[Any::Long(1)], Some(QosContext::new("Compression")))
        .unwrap();
    assert_eq!(reply, Any::Long(1));
    assert_eq!(net.stats().total_msgs(), 2); // request + reply, unicast
    server.shutdown();
    client.shutdown();
}

#[test]
fn command_and_service_request_take_different_paths() {
    let (_net, server, client, ior) = pair();
    // A service request reaches the adapter...
    client.invoke(&ior, "echo", &[Any::Void]).unwrap();
    // ...a command with the same operation name reaches the transport
    // (and fails there, since the transport has no such command).
    let err = client
        .send_command(server.node(), CommandTarget::Transport, "echo", &[])
        .unwrap_err();
    assert!(matches!(err, OrbError::BadOperation(_)));
    // Commands to missing modules report ModuleNotFound.
    let err = client
        .send_command(server.node(), CommandTarget::Module("ghost".into()), "x", &[])
        .unwrap_err();
    assert!(matches!(err, OrbError::ModuleNotFound(_)));
    server.shutdown();
    client.shutdown();
}

#[test]
fn end_to_end_encrypted_channel_with_key_agreement() {
    let (_net, server, client, ior) = pair();
    let (cs, ss) = (1234u64, 5678u64);
    let shared = keyex::shared(cs, keyex::public(ss));
    client.qos_transport().install(Arc::new(EncryptionModule::new(shared)));
    server.qos_transport().install(Arc::new(EncryptionModule::new(
        keyex::shared(ss, keyex::public(cs)),
    )));
    client
        .qos_transport()
        .bind(BindingKey { peer: None, key: ior.key.clone() }, ENCRYPTION_MODULE)
        .unwrap();
    let secret = Any::Str("top secret".into());
    let reply = client
        .invoke_qos(&ior, "echo", &[secret.clone()], Some(QosContext::new("Encryption")))
        .unwrap();
    assert_eq!(reply, secret);
    server.shutdown();
    client.shutdown();
}

#[test]
fn wrong_key_traffic_is_rejected_not_delivered() {
    let (net, server, client, ior) = pair();
    client.qos_transport().install(Arc::new(EncryptionModule::new(1)));
    server.qos_transport().install(Arc::new(EncryptionModule::new(2))); // mismatched
    client
        .qos_transport()
        .bind(BindingKey { peer: None, key: ior.key.clone() }, ENCRYPTION_MODULE)
        .unwrap();
    let client2 = Orb::start_with(
        &net,
        "client2",
        orb::OrbConfig {
            request_timeout: std::time::Duration::from_millis(300),
            ..Default::default()
        },
    );
    client2.qos_transport().install(Arc::new(EncryptionModule::new(1)));
    client2
        .qos_transport()
        .bind(BindingKey { peer: None, key: ior.key.clone() }, ENCRYPTION_MODULE)
        .unwrap();
    let err = client2
        .invoke_qos(&ior, "echo", &[Any::Long(1)], Some(QosContext::new("Encryption")))
        .unwrap_err();
    assert!(matches!(err, OrbError::Timeout(_)));
    // The server counted the undecryptable packet as dropped.
    assert!(server.stats().packets_dropped >= 1);
    server.shutdown();
    client.shutdown();
    client2.shutdown();
}

#[test]
fn stacked_modules_binding_replacement() {
    // Rebinding a relationship switches the transform on the fly.
    let (_net, server, client, ior) = pair();
    client.qos_transport().install(Arc::new(CompressionModule::new()));
    server.qos_transport().install(Arc::new(CompressionModule::new()));
    client.qos_transport().install(Arc::new(EncryptionModule::new(7)));
    server.qos_transport().install(Arc::new(EncryptionModule::new(7)));

    let key = BindingKey { peer: None, key: ior.key.clone() };
    client.qos_transport().bind(key.clone(), COMPRESSION_MODULE).unwrap();
    let r1 = client
        .invoke_qos(&ior, "echo", &[Any::Long(1)], Some(QosContext::new("Compression")))
        .unwrap();
    assert_eq!(r1, Any::Long(1));

    client.qos_transport().bind(key.clone(), ENCRYPTION_MODULE).unwrap();
    let r2 = client
        .invoke_qos(&ior, "echo", &[Any::Long(2)], Some(QosContext::new("Encryption")))
        .unwrap();
    assert_eq!(r2, Any::Long(2));

    client.qos_transport().unbind(&key);
    let r3 = client
        .invoke_qos(&ior, "echo", &[Any::Long(3)], Some(QosContext::new("Encryption")))
        .unwrap();
    assert_eq!(r3, Any::Long(3)); // plain fallback again
    server.shutdown();
    client.shutdown();
}

#[test]
fn dii_requests_compose_with_qos_contexts() {
    let (_net, server, client, ior) = pair();
    let reply = DynamicRequest::new(&ior, "echo")
        .arg(Any::from("dyn"))
        .qos(QosContext::new("Compression").with_param("level", Any::Octet(9)))
        .invoke(&client)
        .unwrap();
    assert_eq!(reply, Any::Str("dyn".into()));
    server.shutdown();
    client.shutdown();
}
