//! Cluster telemetry plane scenario: an aggregator scrapes an 8-worker
//! fleet over GIOP, derives SLO objectives from the negotiated deadline
//! agreements, and fires a burn-rate alert that singles out the one
//! node violating its deadline — within bounded virtual time, without
//! alerting on any healthy node, deterministically under the netsim
//! seed.
//!
//! The fleet-merge golden (`tests/golden/fleet_quantiles.txt`)
//! additionally freezes the merged-histogram quantiles against a
//! single-registry reference observing the same samples; regenerate
//! with `BLESS=1 cargo test --test cluster_telemetry`.

use maqs::prelude::*;
use netsim::{NodeId, VirtualDuration};
use orb::export::quantile_line;
use orb::MetricsRegistry;
use services::{SloAlert, SloConfig, TelemetryAggregator, TelemetryConfig};
use std::path::PathBuf;
use std::sync::Arc;

const SPEC: &str = r#"
    interface Kv with qos Replication {
        void put(in long long v);
        long long get();
    };
"#;

/// Echo-style servant; `delay_ms > 0` makes it a deadline violator.
struct Kv {
    cell: parking_lot::Mutex<i64>,
    delay_ms: u64,
}

impl Servant for Kv {
    fn interface_id(&self) -> &str {
        "IDL:Kv:1.0"
    }
    fn dispatch(&self, op: &str, args: &[Any]) -> Result<Any, OrbError> {
        if self.delay_ms > 0 {
            std::thread::sleep(std::time::Duration::from_millis(self.delay_ms));
        }
        match op {
            "put" => {
                *self.cell.lock() = args.first().and_then(Any::as_i64).unwrap_or(0);
                Ok(Any::Void)
            }
            "get" => Ok(Any::LongLong(*self.cell.lock())),
            _ => Err(OrbError::BadOperation(op.to_string())),
        }
    }
}

const WORKERS: usize = 8;
const VICTIM: usize = 5;
const ROUNDS: usize = 4;
const CALLS_PER_ROUND: i64 = 4;

struct ScenarioOutcome {
    /// Alert transitions in firing order, with virtual timestamps.
    alerts: Vec<SloAlert>,
    /// `(worker index, agreement id, node id)` per worker.
    agreements: Vec<(usize, u64, NodeId)>,
    /// Fleet-merged per-object latency count after the last scrape.
    fleet_latency_count: u64,
}

/// Run the whole scenario on `seed`: build the fleet, negotiate a 5 ms
/// deadline everywhere, make one worker sleep past it, scrape each
/// round under virtual time.
fn run_scenario(seed: u64) -> ScenarioOutcome {
    let net = Network::new(seed);
    let mut workers = Vec::new();
    for i in 0..WORKERS {
        let node =
            MaqsNode::builder(&net, &format!("w{i}")).spec(SPEC).build().expect("build worker");
        let delay_ms = if i == VICTIM { 8 } else { 0 };
        let ior = node
            .serve(
                "svc",
                Arc::new(Kv { cell: parking_lot::Mutex::new(0), delay_ms }),
                ServeOptions::interface("Kv")
                    .qos_impl(Arc::new(qosmech::replication::ReplicationQosImpl::new()))
                    .capacity("Replication", 4),
            )
            .expect("serve svc");
        workers.push((node, ior));
    }
    let ops = MaqsNode::builder(&net, "ops").build().expect("build ops");

    // One 5 ms deadline agreement per worker. 5 ms is the top of the
    // bucket ladder, so "good" is bucket-exact: only overflow misses.
    let mut agreements = Vec::new();
    for (i, (node, _)) in workers.iter().enumerate() {
        let agreement = ops
            .negotiator()
            .negotiate_offer(
                node.orb().node(),
                "svc",
                &Offer::new("Replication", 1.0).with_param("deadline_ms", Any::ULongLong(5)),
            )
            .expect("negotiate deadline");
        agreements.push((i, agreement.id, node.orb().node()));
    }

    let clock_net = net.clone();
    let agg = TelemetryAggregator::new(
        ops.orb().clone(),
        TelemetryConfig {
            scrape_interval_ms: 0, // the test drives scrapes explicitly
            slo: SloConfig { min_samples: 4, ..SloConfig::default() },
            ..TelemetryConfig::default()
        },
    )
    .with_clock(Arc::new(move || clock_net.fault_now().0 / 1_000));
    let fleet: Vec<NodeId> = workers.iter().map(|(n, _)| n.orb().node()).collect();
    agg.watch_all(&fleet);

    let mut alerts = Vec::new();
    for _round in 0..ROUNDS {
        for (_, ior) in &workers {
            let stub = ops.stub(ior);
            for v in 0..CALLS_PER_ROUND {
                stub.invoke("put", &[Any::LongLong(v)]).expect("put");
            }
        }
        net.tick(VirtualDuration::from_secs(15));
        alerts.extend(agg.scrape_once());
    }

    let fleet_latency_count =
        agg.fleet_histogram("object.svc.latency_us").map_or(0, |h| h.count);
    for (node, _) in &workers {
        node.shutdown();
    }
    ops.shutdown();
    ScenarioOutcome { alerts, agreements, fleet_latency_count }
}

#[test]
fn burn_rate_alert_singles_out_the_violating_node() {
    let outcome = run_scenario(42);
    let (_, victim_agreement, victim_node) = outcome.agreements[VICTIM];

    let firing: Vec<&SloAlert> = outcome.alerts.iter().filter(|a| !a.resolved).collect();
    assert!(!firing.is_empty(), "the violated deadline never produced an alert");
    for alert in &firing {
        assert_eq!(alert.node, victim_node, "alert on a healthy node: {alert}");
        assert_eq!(alert.agreement_id, victim_agreement, "alert names wrong agreement: {alert}");
        assert_eq!(alert.node_name, format!("w{VICTIM}"));
        assert_eq!(alert.object, "svc");
        assert_eq!(alert.param, "deadline_ms");
        assert!(
            alert.burn_short >= 10.0,
            "a 100% miss rate must burn far beyond threshold: {alert}"
        );
    }
    // Bounded detection time: every call the victim answered missed the
    // deadline, so the very first scrape with min_samples of traffic —
    // 15 virtual seconds in — must already fire.
    assert_eq!(
        firing[0].at_us, 15_000_000,
        "alert must fire at the first scrape after the violation"
    );

    // Every observation from every node landed in the fleet merge.
    assert_eq!(
        outcome.fleet_latency_count,
        (WORKERS * ROUNDS * CALLS_PER_ROUND as usize) as u64
    );
}

#[test]
fn scenario_is_deterministic_under_the_seed() {
    let a = run_scenario(42);
    let b = run_scenario(42);
    let shape = |o: &ScenarioOutcome| {
        o.alerts
            .iter()
            .map(|al| {
                (al.at_us, al.node.0, al.agreement_id, al.param.clone(), al.resolved)
            })
            .collect::<Vec<_>>()
    };
    assert_eq!(shape(&a), shape(&b), "alert stream must be identical run-to-run");
    assert_eq!(a.agreements, b.agreements);
    assert_eq!(a.fleet_latency_count, b.fleet_latency_count);
}

/// Resolve `tests/golden/` from the workspace root or the maqs crate
/// directory, like the other golden tests.
fn golden_path() -> PathBuf {
    for base in ["tests/golden", "../../tests/golden"] {
        let dir = PathBuf::from(base);
        if dir.is_dir() {
            return dir.join("fleet_quantiles.txt");
        }
    }
    PathBuf::from("tests/golden/fleet_quantiles.txt")
}

#[test]
fn fleet_merge_matches_single_registry_reference() {
    // Four per-node registries plus one reference registry observing
    // every sample; values are spread across the whole bucket ladder
    // (including overflow) and are disjoint per node.
    let nodes: Vec<MetricsRegistry> = (0..4).map(|_| MetricsRegistry::new()).collect();
    let reference = MetricsRegistry::new();
    for (i, registry) in nodes.iter().enumerate() {
        for k in 0..64u64 {
            // Deterministic spread: node i sees 64 samples scattered
            // over [i*37 .. i*37 + 63*97] µs.
            let us = (i as u64) * 37 + k * 97;
            registry.observe_us("object.svc.latency_us", us);
            reference.observe_us("object.svc.latency_us", us);
        }
    }

    let mut merged = MetricsSnapshot::default();
    for registry in &nodes {
        merged.merge(&registry.snapshot());
    }
    let fleet = merged.histogram("object.svc.latency_us").expect("merged histogram");
    let single = reference.snapshot();
    let single = single.histogram("object.svc.latency_us").expect("reference histogram");

    // Same ladder + same samples ⇒ the merge must be bucket-exact, so
    // every quantile agrees with the single-registry reference (well
    // within the one-bucket-boundary tolerance the plane promises).
    assert_eq!(fleet, single, "fleet merge must be bucket-exact");
    let mut actual = String::new();
    actual.push_str(&format!("count={} sum_us={} overflow={}\n", fleet.count, fleet.sum_us, fleet.overflow));
    actual.push_str(&format!("merged    {}\n", quantile_line(fleet)));
    actual.push_str(&format!("reference {}\n", quantile_line(single)));
    for &(bound, count) in &fleet.buckets {
        actual.push_str(&format!("le={bound} {count}\n"));
    }

    let path = golden_path();
    if std::env::var_os("BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden file {} ({e}); run with BLESS=1", path.display())
    });
    assert_eq!(actual, expected, "fleet quantiles drifted; if intentional, re-bless with BLESS=1");
}
