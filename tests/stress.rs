//! Integration: concurrency and volume stress on the ORB stack.

use maqs::prelude::*;
use orb::giop::QosContext;
use orb::qos_binding::BindingKey;
use qosmech::compress::{CompressionModule, COMPRESSION_MODULE};
use std::sync::Arc;
use std::time::Duration;

struct Echo;
impl Servant for Echo {
    fn interface_id(&self) -> &str {
        "IDL:Echo:1.0"
    }
    fn dispatch(&self, op: &str, args: &[Any]) -> Result<Any, OrbError> {
        match op {
            "echo" => Ok(args.first().cloned().unwrap_or(Any::Void)),
            "sum" => Ok(Any::LongLong(args.iter().filter_map(Any::as_i64).sum())),
            _ => Err(OrbError::BadOperation(op.to_string())),
        }
    }
}

#[test]
fn many_concurrent_clients_one_server() {
    let net = Network::new(61);
    let server = Orb::start(&net, "server");
    let ior = server.activate("echo", Box::new(Echo));
    let clients: Vec<Orb> = (0..8).map(|i| Orb::start(&net, &format!("c{i}"))).collect();

    let handles: Vec<_> = clients
        .iter()
        .enumerate()
        .map(|(i, client)| {
            let client = client.clone();
            let ior = ior.clone();
            std::thread::spawn(move || {
                for j in 0..100i64 {
                    let v = (i as i64) * 1000 + j;
                    let r = client.invoke(&ior, "echo", &[Any::LongLong(v)]).unwrap();
                    assert_eq!(r, Any::LongLong(v));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(server.stats().requests_handled, 800);
    server.shutdown();
    for c in clients {
        c.shutdown();
    }
}

#[test]
fn one_client_many_threads_shared_orb() {
    // A single client ORB used from several threads: correlation ids
    // must never cross replies.
    let net = Network::new(62);
    let server = Orb::start(&net, "server");
    let client = Orb::start(&net, "client");
    let ior = server.activate("echo", Box::new(Echo));
    let handles: Vec<_> = (0..6)
        .map(|t| {
            let client = client.clone();
            let ior = ior.clone();
            std::thread::spawn(move || {
                for j in 0..150i64 {
                    let v = (t as i64) << 32 | j;
                    let r = client.invoke(&ior, "echo", &[Any::LongLong(v)]).unwrap();
                    assert_eq!(r, Any::LongLong(v), "cross-talk on thread {t}");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(client.stats().replies_matched, 900);
    server.shutdown();
    client.shutdown();
}

#[test]
fn large_payload_roundtrips_plain_and_compressed() {
    let net = Network::new(63);
    let server = Orb::start(&net, "server");
    let client = Orb::start(&net, "client");
    let ior = server.activate_with_tags("echo", Box::new(Echo), &["Compression"]);

    let blob = Any::Bytes((0..1_000_000u32).map(|i| (i % 251) as u8).collect());
    let r = client.invoke(&ior, "echo", &[blob.clone()]).unwrap();
    assert_eq!(r, blob);

    client.qos_transport().install(Arc::new(CompressionModule::new()));
    server.qos_transport().install(Arc::new(CompressionModule::new()));
    client
        .qos_transport()
        .bind(BindingKey { peer: None, key: ior.key.clone() }, COMPRESSION_MODULE)
        .unwrap();
    let r = client
        .invoke_qos(&ior, "echo", &[blob.clone()], Some(QosContext::new("Compression")))
        .unwrap();
    assert_eq!(r, blob);
    server.shutdown();
    client.shutdown();
}

#[test]
fn many_objects_on_one_adapter() {
    let net = Network::new(64);
    let server = Orb::start(&net, "server");
    let client = Orb::start(&net, "client");
    let iors: Vec<Ior> =
        (0..200).map(|i| server.activate(&format!("obj-{i}"), Box::new(Echo))).collect();
    assert_eq!(server.adapter().len(), 200);
    for (i, ior) in iors.iter().enumerate() {
        let r = client.invoke(ior, "echo", &[Any::Long(i as i32)]).unwrap();
        assert_eq!(r, Any::Long(i as i32));
    }
    // Deactivate half; they must disappear, the rest must still work.
    for i in (0..200).step_by(2) {
        server.deactivate(&format!("obj-{i}"));
    }
    assert_eq!(server.adapter().len(), 100);
    assert!(client.invoke(&iors[0], "echo", &[Any::Void]).is_err());
    assert!(client.invoke(&iors[1], "echo", &[Any::Void]).is_ok());
    server.shutdown();
    client.shutdown();
}

#[test]
fn deep_argument_lists_and_wide_sequences() {
    let net = Network::new(65);
    let server = Orb::start(&net, "server");
    let client = Orb::start(&net, "client");
    let ior = server.activate("echo", Box::new(Echo));
    // 200 arguments summed server-side.
    let args: Vec<Any> = (1..=200i64).map(Any::LongLong).collect();
    let r = client.invoke(&ior, "sum", &args).unwrap();
    assert_eq!(r, Any::LongLong(20_100));
    // Deeply nested sequence round-trip.
    let mut nested = Any::Long(7);
    for _ in 0..64 {
        nested = Any::Sequence(vec![nested]);
    }
    let r = client.invoke(&ior, "echo", &[nested.clone()]).unwrap();
    assert_eq!(r, nested);
    server.shutdown();
    client.shutdown();
}

#[test]
fn binding_context_applies_to_every_call() {
    // apply_binding wires the negotiated agreement into the stub so each
    // call carries the wire context — checked via the server seeing the
    // QoS path (module transform) only after the binding is applied.
    let net = Network::new(66);
    let server = Orb::start(&net, "server");
    let client = Orb::start(&net, "client");
    let ior = server.activate_with_tags("echo", Box::new(Echo), &["Compression"]);
    let tx = Arc::new(CompressionModule::new());
    client.qos_transport().install(tx.clone());
    server.qos_transport().install(Arc::new(CompressionModule::new()));
    client
        .qos_transport()
        .bind(BindingKey { peer: None, key: ior.key.clone() }, COMPRESSION_MODULE)
        .unwrap();

    let registry = weaver::QosBindingRegistry::new();
    let binding = registry.bind(ior.key.0.clone(), "Compression", vec![]);
    let stub = weaver::ClientStub::new(client.clone(), ior.clone());

    // Without the context the call takes the plain path (module idle).
    stub.invoke("echo", &[Any::Bytes(vec![9; 512])]).unwrap();
    assert_eq!(tx.bytes_in(), 0);

    stub.apply_binding(&binding);
    stub.invoke("echo", &[Any::Bytes(vec![9; 512])]).unwrap();
    assert!(tx.bytes_in() > 0, "binding context must route through the module");
    server.shutdown();
    client.shutdown();
}

#[test]
fn collect_with_short_timeout_under_load() {
    let net = Network::new(67);
    let server = Orb::start(&net, "server");
    let client = Orb::start(&net, "client");
    let ior = server.activate("echo", Box::new(Echo));
    for _ in 0..50 {
        let replies = client
            .invoke_collect(&ior, "echo", &[Any::Long(1)], None, 1, Duration::from_secs(1))
            .unwrap();
        assert_eq!(replies.len(), 1);
    }
    // Pending map must be clean afterwards (no leaked correlations):
    // further calls still work and match.
    assert_eq!(client.invoke(&ior, "echo", &[Any::Long(2)]).unwrap(), Any::Long(2));
    server.shutdown();
    client.shutdown();
}

#[test]
fn metrics_snapshots_are_monotone_under_concurrency() {
    // Snapshots taken while traffic is in flight must never go
    // backwards: counters and histogram counts only grow.
    let net = Network::new(68);
    let server = Orb::start(&net, "server");
    let client = Orb::start(&net, "client");
    let ior = server.activate("echo", Box::new(Echo));

    let handles: Vec<_> = (0..4)
        .map(|i| {
            let client = client.clone();
            let ior = ior.clone();
            std::thread::spawn(move || {
                for j in 0..50i64 {
                    client.invoke(&ior, "echo", &[Any::LongLong(i * 100 + j)]).unwrap();
                }
            })
        })
        .collect();

    let mut prev_client = client.metrics().snapshot();
    let mut prev_server = server.metrics().snapshot();
    for _ in 0..20 {
        let next_client = client.metrics().snapshot();
        let next_server = server.metrics().snapshot();
        assert!(next_client.dominates(&prev_client), "client snapshot regressed");
        assert!(next_server.dominates(&prev_server), "server snapshot regressed");
        prev_client = next_client;
        prev_server = next_server;
        std::thread::sleep(Duration::from_millis(1));
    }
    for h in handles {
        h.join().unwrap();
    }
    let final_client = client.metrics().snapshot();
    assert!(final_client.dominates(&prev_client));
    assert_eq!(final_client.counter("orb.requests_sent"), 200);
    assert_eq!(server.metrics().snapshot().counter("orb.requests_handled"), 200);
    server.shutdown();
    client.shutdown();
}
