//! Golden test: the telemetry exporters are wire formats.
//!
//! Prometheus scrapers and Perfetto both parse what these functions
//! emit, so the output is an interface: this test freezes the full
//! Prometheus text exposition for a deterministic snapshot, and checks
//! the Chrome `trace_event` document produced from a *real* traced
//! roundtrip against its schema (a JSON object with a `traceEvents`
//! array whose complete-spans nest). If you change an exporter on
//! purpose, regenerate the golden file with:
//!
//! ```sh
//! BLESS=1 cargo test --test export_golden
//! ```

use maqs::prelude::*;
use orb::export::{chrome_trace_json, prometheus_text, prometheus_text_labeled};
use orb::MetricsRegistry;
use std::path::PathBuf;
use std::sync::Arc;

/// Resolve `tests/golden/` whether the test runs from the workspace
/// root or from a crate directory (same idiom as `metrics_golden`).
fn golden_path(file: &str) -> PathBuf {
    for base in ["tests/golden", "../../tests/golden"] {
        let dir = PathBuf::from(base);
        if dir.is_dir() {
            return dir.join(file);
        }
    }
    PathBuf::from("tests/golden").join(file)
}

fn check_golden(actual: &str, file: &str) {
    let path = golden_path(file);
    if std::env::var_os("BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {} ({e}); run with BLESS=1", path.display()));
    assert_eq!(actual, expected, "{file} changed; if intentional, regenerate with BLESS=1");
}

#[test]
fn prometheus_exposition_is_stable() {
    // Deterministic inputs covering every rendering path: plain
    // counters, an interpolated-quantile histogram, and a histogram
    // whose p99 rank falls in the overflow bucket (rendered `>=5000`).
    let m = MetricsRegistry::new();
    m.incr("orb.requests_sent");
    m.incr("orb.requests_sent");
    m.incr("orb.requests_sent");
    m.add("wire.bytes_received", 4096);
    // Telemetry-plane series render like any other metric.
    m.add("telemetry.scrapes", 2);
    m.add("slo.alerts", 1);
    for us in [30, 40, 60, 80, 120] {
        m.observe_us("orb.roundtrip_us", us);
    }
    for us in [100, 200, 9_000] {
        m.observe_us("orb.dispatch_us", us);
    }
    m.observe_us("slo.burn_x100", 1_500);
    // The fleet view renders the same snapshot with node/object labels
    // on every series (including bucket lines); freeze both forms.
    let snapshot = m.snapshot();
    let mut actual = prometheus_text(&snapshot);
    actual.push_str("# --- labeled (fleet) form ---\n");
    actual.push_str(&prometheus_text_labeled(&snapshot, &[("node", "w0"), ("object", "kv")]));
    check_golden(&actual, "prometheus_exposition.txt");
}

#[test]
fn chrome_trace_from_a_real_roundtrip_matches_the_schema() {
    let net = Network::new(11);
    let server = MaqsNode::builder(&net, "server")
        .spec("interface Echo { long long echo(in long long v); };")
        .build()
        .unwrap();
    let client = MaqsNode::builder(&net, "client").build().unwrap();

    struct Echo;
    impl Servant for Echo {
        fn interface_id(&self) -> &str {
            "IDL:Echo:1.0"
        }
        fn dispatch(&self, op: &str, args: &[Any]) -> Result<Any, OrbError> {
            match op {
                "echo" => Ok(args.first().cloned().unwrap_or(Any::Void)),
                _ => Err(OrbError::BadOperation(op.to_string())),
            }
        }
    }

    let ior = server.serve("echo", Arc::new(Echo), ServeOptions::interface("Echo")).unwrap();
    let stub = client.stub(&ior);
    let reply = stub.invoke("echo", &[Any::LongLong(5)]).unwrap();
    assert_eq!(reply, Any::LongLong(5));
    let trace = reply.trace.clone().expect("default config samples every call");

    client.orb().flight().flush();
    let flight = client.orb().flight().snapshot();
    let json = chrome_trace_json(&[trace.clone()], &flight);
    server.shutdown();
    client.shutdown();

    // Document shape (hand-rolled JSON, so assert on the text).
    assert!(json.starts_with("{\"traceEvents\":["), "{json}");
    assert!(json.trim_end().ends_with('}'), "{json}");
    assert!(json.contains("\"displayTimeUnit\":\"ms\""), "{json}");

    // Every span of the trace appears as a complete ('X') event, and
    // the client's wire events appear as instants ('i').
    for span in &trace.spans {
        assert!(
            json.contains(&format!("\"name\":\"{}\"", span.layer)),
            "span `{}` missing from {json}",
            span.layer
        );
    }
    assert!(json.contains("\"ph\":\"X\""), "{json}");
    assert!(json.contains("\"ph\":\"i\""), "{json}");

    // The nesting invariant that makes the flame view readable: the
    // stub span starts at 0 and every other span fits inside it.
    let events = orb::export::chrome_events(&[trace]);
    let stub_ev = events.iter().find(|e| e.name == "stub").expect("stub event");
    assert_eq!(stub_ev.ts, 0);
    for e in &events {
        assert!(
            e.ts >= stub_ev.ts && e.ts + e.dur <= stub_ev.ts + stub_ev.dur,
            "span {} [{}, {}] escapes stub [0, {}]",
            e.name,
            e.ts,
            e.ts + e.dur,
            stub_ev.dur
        );
    }
}
