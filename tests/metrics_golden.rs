//! Golden test: the set of per-layer metric names a plain request emits.
//!
//! The observability plane is an interface: dashboards and the
//! monitoring wiring key on metric *names*. This test freezes the names
//! a canonical client/server exchange produces on both planes. If you
//! add or rename instrumentation, regenerate with:
//!
//! ```sh
//! BLESS=1 cargo test --test metrics_golden
//! ```

use maqs::prelude::*;
use services::{SloConfig, SloKind, SloObjective, TelemetryAggregator, TelemetryConfig};
use std::path::PathBuf;
use std::sync::Arc;

struct Echo;
impl Servant for Echo {
    fn interface_id(&self) -> &str {
        "IDL:Echo:1.0"
    }
    fn dispatch(&self, op: &str, args: &[Any]) -> Result<Any, OrbError> {
        match op {
            "echo" => Ok(args.first().cloned().unwrap_or(Any::Void)),
            _ => Err(OrbError::BadOperation(op.to_string())),
        }
    }
}

/// The golden file lives at `tests/golden/` relative to the workspace
/// root; resolve it whether the test runs from the root or from the
/// `maqs` crate directory.
fn golden_path() -> PathBuf {
    for base in ["tests/golden", "../../tests/golden"] {
        let dir = PathBuf::from(base);
        if dir.is_dir() {
            return dir.join("metrics_names.txt");
        }
    }
    PathBuf::from("tests/golden/metrics_names.txt")
}

fn names_of(snapshot: &MetricsSnapshot, plane: &str, out: &mut String) {
    out.push_str(&format!("[{plane} counters]\n"));
    for (name, _) in &snapshot.counters {
        out.push_str(name);
        out.push('\n');
    }
    out.push_str(&format!("[{plane} histograms]\n"));
    for (name, _) in &snapshot.histograms {
        out.push_str(name);
        out.push('\n');
    }
}

#[test]
fn request_path_metric_names_are_stable() {
    let net = Network::new(80);
    let server = MaqsNode::builder(&net, "server")
        .spec("interface Echo { long long echo(in long long v); };")
        .build()
        .unwrap();
    let client = MaqsNode::builder(&net, "client").build().unwrap();
    let ior = server.serve("echo", Arc::new(Echo), ServeOptions::interface("Echo")).unwrap();
    let stub = client.stub(&ior);
    for i in 0..3 {
        assert_eq!(stub.invoke("echo", &[Any::LongLong(i)]).unwrap(), Any::LongLong(i));
    }

    // The telemetry plane rides on the client node: one fleet scrape of
    // the server plus one evaluated objective, so every `telemetry.*`
    // and `slo.*` series the aggregator emits is frozen here too.
    let agg = TelemetryAggregator::new(
        client.orb().clone(),
        TelemetryConfig { slo: SloConfig { min_samples: 1, ..SloConfig::default() }, ..TelemetryConfig::default() },
    );
    agg.watch(server.orb().node());
    agg.add_objective(SloObjective {
        node: server.orb().node(),
        object: "echo".to_string(),
        agreement_id: 0,
        characteristic: "Static".to_string(),
        param: "deadline_ms".to_string(),
        target: 0.99,
        kind: SloKind::Latency {
            histogram: "object.echo.latency_us".to_string(),
            threshold_us: 5_000,
        },
    });
    agg.scrape_once();

    let mut actual = String::new();
    names_of(&client.metrics_snapshot(), "client", &mut actual);
    names_of(&server.metrics_snapshot(), "server", &mut actual);
    server.shutdown();
    client.shutdown();

    let path = golden_path();
    if std::env::var_os("BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {} ({e}); run with BLESS=1", path.display()));
    assert_eq!(
        actual, expected,
        "metric names changed; if intentional, regenerate with BLESS=1"
    );
}
