//! Contention stress for the sharded request hot path.
//!
//! Eight client threads hammer one shared client ORB against a server
//! running four dispatcher threads, mixing null and 1 KiB payloads.
//! The rendezvous rework (sharded pending table, per-thread reply
//! slots, take-then-send lock discipline) must hold three properties
//! under this load:
//!
//! 1. **No lost or orphaned replies** — every reply matches a waiter.
//! 2. **Monotone counters** — a watcher thread snapshots [`Orb::stats`]
//!    concurrently and every counter only ever grows.
//! 3. **Same answers as a single-threaded run** — the identical
//!    workload partitioned over one worker produces the identical
//!    result sum.

use netsim::Network;
use orb::{Any, Orb, OrbConfig, OrbError, Servant};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

struct Echo;
impl Servant for Echo {
    fn interface_id(&self) -> &str {
        "IDL:Echo:1.0"
    }
    fn dispatch(&self, op: &str, args: &[Any]) -> Result<Any, OrbError> {
        match op {
            "echo" => Ok(args.first().cloned().unwrap_or(Any::Void)),
            _ => Err(OrbError::BadOperation(op.to_string())),
        }
    }
}

const LANES: u64 = 8;
const CALLS_PER_LANE: u64 = 150;

/// The deterministic workload for one lane: echo a tagged Long, every
/// fourth call a 1 KiB blob, and fold the responses into a
/// commutative-safe per-lane sum (lane order is fixed, lanes combine
/// by addition, so worker interleaving cannot change the total).
fn run_lane(client: &Orb, ior: &orb::Ior, lane: u64) -> u64 {
    let mut sum = 0u64;
    for i in 0..CALLS_PER_LANE {
        let v = lane * 1_000_000 + i;
        let arg = if i % 4 == 3 {
            Any::Bytes(vec![(v % 251) as u8; 1024])
        } else {
            Any::Long(v as i32)
        };
        let r = client.invoke(ior, "echo", &[arg.clone()]).expect("echo under load");
        assert_eq!(r, arg, "lane {lane} call {i}: reply must echo the request");
        sum = sum.wrapping_add(v).wrapping_add(match r {
            Any::Long(x) => x as u32 as u64,
            Any::Bytes(b) => u64::from(b[0]) + b.len() as u64,
            other => panic!("unexpected reply {other:?}"),
        });
    }
    sum
}

/// Run the full workload with `workers` client threads sharing one ORB
/// against a server with `dispatch_threads`. Returns the combined
/// result sum and the final (client, server) stats.
fn run_workload(
    workers: usize,
    dispatch_threads: usize,
) -> (u64, orb::core::OrbStats, orb::core::OrbStats) {
    let net = Network::new(42);
    let server = Orb::start_with(
        &net,
        "server",
        OrbConfig { dispatch_threads, ..OrbConfig::default() },
    );
    let client = Orb::start(&net, "client");
    let ior = server.activate("echo", Box::new(Echo));

    // Watcher: stats snapshots taken mid-flight must be monotone.
    let stop = Arc::new(AtomicBool::new(false));
    let watcher = {
        let client = client.clone();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut last = client.stats();
            while !stop.load(Ordering::Relaxed) {
                let s = client.stats();
                assert!(s.replies_matched >= last.replies_matched, "matched went backwards");
                assert!(s.replies_orphaned >= last.replies_orphaned, "orphaned went backwards");
                assert!(s.packets_dropped >= last.packets_dropped, "dropped went backwards");
                assert_eq!(s.replies_orphaned, 0, "no reply may be orphaned mid-run");
                last = s;
                std::thread::sleep(Duration::from_millis(1));
            }
        })
    };

    let total: u64 = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let client = &client;
                let ior = &ior;
                scope.spawn(move || {
                    // Lanes are statically partitioned over workers, so
                    // any worker count sees the same input set.
                    (0..LANES)
                        .filter(|lane| lane % workers as u64 == w as u64)
                        .map(|lane| run_lane(client, ior, lane))
                        .fold(0u64, u64::wrapping_add)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker panicked")).sum()
    });

    stop.store(true, Ordering::Relaxed);
    watcher.join().expect("watcher saw a non-monotone snapshot");

    let stats = (client.stats(), server.stats());
    server.shutdown();
    client.shutdown();
    (total, stats.0, stats.1)
}

/// One client thread keeps ≥32 calls in flight via [`Orb::invoke_async`]
/// (GIOP reply pipelining). Every reply must match the request it
/// answers — the sharded pending table may not misdeliver or orphan
/// under a deep window — and the folded result must equal a serial
/// one-at-a-time run of the identical workload.
#[test]
fn pipelined_client_holds_32_in_flight_without_orphans() {
    const IN_FLIGHT: usize = 32;
    const CALLS: u64 = 256;

    let net = Network::new(7);
    let server =
        Orb::start_with(&net, "server", OrbConfig { dispatch_threads: 4, ..OrbConfig::default() });
    let client = Orb::start(&net, "client");
    let ior = server.activate("echo", Box::new(Echo));

    let fold = |r: Any, v: u64| -> u64 {
        match r {
            Any::Long(x) => {
                assert_eq!(x as u32 as u64, v, "reply answered a different request");
                v.wrapping_mul(31).wrapping_add(x as u32 as u64)
            }
            other => panic!("unexpected reply {other:?}"),
        }
    };

    // Serial reference: the same workload one call at a time.
    let mut serial_sum = 0u64;
    for i in 0..CALLS {
        let r = client.invoke(&ior, "echo", &[Any::Long(i as i32)]).expect("serial echo");
        serial_sum = serial_sum.wrapping_add(fold(r, i));
    }

    // Pipelined run: issue ahead through a window of 32 pending calls,
    // harvesting the oldest once the window is full.
    let mut window: std::collections::VecDeque<(u64, orb::PendingCall)> =
        std::collections::VecDeque::new();
    let mut pipelined_sum = 0u64;
    let harvest = |(v, pending): (u64, orb::PendingCall)| -> u64 {
        fold(pending.wait().expect("pipelined echo"), v)
    };
    for i in 0..CALLS {
        if window.len() == IN_FLIGHT {
            let oldest = window.pop_front().unwrap();
            pipelined_sum = pipelined_sum.wrapping_add(harvest(oldest));
        }
        let pending =
            client.invoke_async(&ior, "echo", &[Any::Long(i as i32)], None).expect("issue");
        window.push_back((i, pending));
    }
    assert_eq!(window.len(), IN_FLIGHT, "window must be saturated at the end");
    for entry in window.drain(..) {
        pipelined_sum = pipelined_sum.wrapping_add(harvest(entry));
    }

    assert_eq!(pipelined_sum, serial_sum, "pipelined result must equal serial result");
    let stats = client.stats();
    assert_eq!(stats.replies_orphaned, 0, "no reply may be orphaned");
    assert_eq!(stats.packets_dropped, 0, "no packet may be dropped");
    assert_eq!(stats.replies_matched, 2 * CALLS, "every call (both runs) got its reply");
    assert_eq!(server.stats().requests_handled, 2 * CALLS);
    server.shutdown();
    client.shutdown();
}

#[test]
fn contended_hot_path_loses_nothing_and_matches_single_threaded() {
    let calls = LANES * CALLS_PER_LANE;
    let (sum_mt, client_mt, server_mt) = run_workload(8, 4);
    assert_eq!(client_mt.replies_orphaned, 0, "no orphans under contention");
    assert_eq!(client_mt.packets_dropped, 0, "no drops under contention");
    assert_eq!(client_mt.replies_matched, calls, "every call got its reply");
    assert_eq!(server_mt.requests_handled, calls, "server saw every request once");

    let (sum_st, client_st, server_st) = run_workload(1, 1);
    assert_eq!(client_st.replies_matched, calls);
    assert_eq!(server_st.requests_handled, calls);
    assert_eq!(
        sum_mt, sum_st,
        "8 workers / 4 dispatchers must compute exactly what 1/1 computes"
    );
}
