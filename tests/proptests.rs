//! Property-based tests on the stack's core invariants.

use proptest::prelude::*;

use orb::cdr::{CdrDecoder, CdrEncoder};
use orb::{Any, Ior};

// ---------------------------------------------------------------------
// Arbitrary Any values (bounded depth).
// ---------------------------------------------------------------------

fn arb_any() -> impl Strategy<Value = Any> {
    let leaf = prop_oneof![
        Just(Any::Void),
        any::<bool>().prop_map(Any::Bool),
        any::<u8>().prop_map(Any::Octet),
        any::<i32>().prop_map(Any::Long),
        any::<u32>().prop_map(Any::ULong),
        any::<i64>().prop_map(Any::LongLong),
        any::<u64>().prop_map(Any::ULongLong),
        // Avoid NaN: PartialEq-based roundtrip checks.
        (-1e15f64..1e15).prop_map(Any::Double),
        "[a-zA-Z0-9 _:/.-]{0,24}".prop_map(Any::Str),
        proptest::collection::vec(any::<u8>(), 0..64).prop_map(Any::Bytes),
    ];
    leaf.prop_recursive(3, 24, 6, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..4).prop_map(Any::Sequence),
            ("[a-zA-Z][a-zA-Z0-9]{0,8}", proptest::collection::vec(("[a-z][a-z0-9]{0,6}", inner), 0..4))
                .prop_map(|(name, fields)| Any::Struct(name, fields)),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn any_cdr_roundtrip(value in arb_any()) {
        let bytes = value.to_bytes();
        let back = Any::from_bytes(&bytes).unwrap();
        prop_assert_eq!(back, value);
    }

    #[test]
    fn any_decoding_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = Any::from_bytes(&bytes); // must not panic
    }

    #[test]
    fn giop_and_packet_decoding_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = orb::giop::GiopMessage::from_bytes(&bytes);
        let _ = orb::giop::Packet::from_bytes(&bytes);
    }

    #[test]
    fn giop_request_roundtrip(
        request_id in any::<u64>(),
        node in 0u32..100,
        key in "[a-z]{1,12}",
        op in "[a-z_]{1,16}",
        args in proptest::collection::vec(any::<i64>(), 0..8),
        oneway in any::<bool>(),
    ) {
        use orb::giop::{GiopMessage, RequestKind, RequestMessage};
        let msg = GiopMessage::Request(RequestMessage {
            request_id,
            reply_to: netsim::NodeId(node),
            object_key: orb::ObjectKey(key),
            operation: op,
            args: args.into_iter().map(Any::LongLong).collect(),
            response_expected: !oneway,
            kind: RequestKind::ServiceRequest,
            qos: None,
        });
        prop_assert_eq!(GiopMessage::from_bytes(&msg.to_bytes()).unwrap(), msg);
    }

    #[test]
    fn cdr_primitive_sequences_roundtrip(
        bools in proptest::collection::vec(any::<bool>(), 0..8),
        longs in proptest::collection::vec(any::<i64>(), 0..8),
        strings in proptest::collection::vec("[a-z]{0,12}", 0..8),
    ) {
        let mut enc = CdrEncoder::new();
        for b in &bools { enc.put_bool(*b); }
        for l in &longs { enc.put_i64(*l); }
        for s in &strings { enc.put_string(s); }
        let buf = enc.into_bytes();
        let mut dec = CdrDecoder::new(&buf);
        for b in &bools { prop_assert_eq!(dec.get_bool().unwrap(), *b); }
        for l in &longs { prop_assert_eq!(dec.get_i64().unwrap(), *l); }
        for s in &strings { prop_assert_eq!(&dec.get_string().unwrap(), s); }
    }

    #[test]
    fn ior_uri_roundtrip(
        node in 0u32..1000,
        key in "[a-zA-Z0-9_-]{1,16}",
        tags in proptest::collection::vec("[A-Z][a-z]{0,8}", 0..4),
    ) {
        let mut ior = Ior::new("IDL:X:1.0", netsim::NodeId(node), key.as_str());
        for t in &tags {
            ior = ior.with_qos_tag(t.clone());
        }
        prop_assert_eq!(Ior::from_uri(&ior.to_uri()).unwrap(), ior);
    }

    // -----------------------------------------------------------------
    // Codec invariants.
    // -----------------------------------------------------------------

    #[test]
    fn lz_codec_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let compressed = qosmech::compress::codec::compress(&data);
        let back = qosmech::compress::codec::decompress(&compressed).unwrap();
        prop_assert_eq!(back, data);
    }

    #[test]
    fn lz_codec_roundtrip_repetitive(
        unit in proptest::collection::vec(any::<u8>(), 1..16),
        reps in 1usize..256,
    ) {
        let data: Vec<u8> = unit.iter().copied().cycle().take(unit.len() * reps).collect();
        let compressed = qosmech::compress::codec::compress(&data);
        let back = qosmech::compress::codec::decompress(&compressed).unwrap();
        prop_assert_eq!(back, data);
    }

    #[test]
    fn lz_decompress_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = qosmech::compress::codec::decompress(&bytes);
    }

    #[test]
    fn cipher_roundtrip(key in any::<u64>(), nonce in any::<u64>(), data in proptest::collection::vec(any::<u8>(), 0..1024)) {
        let frame = qosmech::crypt::seal(key, nonce, &data);
        prop_assert_eq!(qosmech::crypt::open(key, &frame).unwrap(), data);
    }

    #[test]
    fn cipher_rejects_wrong_key(key in any::<u64>(), other in any::<u64>(), data in proptest::collection::vec(any::<u8>(), 1..256)) {
        prop_assume!(key != other);
        let frame = qosmech::crypt::seal(key, 1, &data);
        // Wrong key must never silently yield the plaintext.
        match qosmech::crypt::open(other, &frame) {
            Ok(recovered) => prop_assert_ne!(recovered, data),
            Err(_) => {}
        }
    }

    #[test]
    fn key_exchange_always_agrees(a in 1u64..u64::MAX, b in 1u64..u64::MAX) {
        let shared_a = qosmech::crypt::keyex::shared(a, qosmech::crypt::keyex::public(b));
        let shared_b = qosmech::crypt::keyex::shared(b, qosmech::crypt::keyex::public(a));
        prop_assert_eq!(shared_a, shared_b);
    }

    // -----------------------------------------------------------------
    // QIDL pipeline invariants.
    // -----------------------------------------------------------------

    #[test]
    fn qidl_lexer_never_panics(src in "\\PC{0,128}") {
        let _ = qidl::lexer::lex(&src);
    }

    #[test]
    fn qidl_parser_never_panics(src in "[a-z{}();,<> ]{0,128}") {
        if let Ok(tokens) = qidl::lexer::lex(&src) {
            let _ = qidl::parser::parse(&tokens);
        }
    }

    #[test]
    fn qidl_pretty_print_roundtrip(
        iface in "[A-Z][a-zA-Z]{0,8}",
        ops in proptest::collection::vec(("[a-z][a-z0-9_]{0,8}", 0usize..3), 0..4),
    ) {
        // Build a small spec programmatically through source text.
        let mut src = format!("interface {iface} {{\n");
        let mut seen = std::collections::HashSet::new();
        for (name, arity) in &ops {
            if !seen.insert(name.clone()) || qidl_keyword(name) {
                continue;
            }
            let params: Vec<String> =
                (0..*arity).map(|i| format!("in long p{i}")).collect();
            src.push_str(&format!("    long {name}({});\n", params.join(", ")));
        }
        src.push_str("};\n");
        if let Ok(spec) = qidl::compile(&src) {
            let printed = qidl::pretty::pretty(&spec);
            let reparsed = qidl::compile(&printed).unwrap();
            prop_assert_eq!(reparsed, spec);
        }
    }

    // -----------------------------------------------------------------
    // Group view invariants.
    // -----------------------------------------------------------------

    #[test]
    fn view_tracker_invariants(ops in proptest::collection::vec((any::<bool>(), 0u32..16), 0..64)) {
        let mut tracker = groupcomm::ViewTracker::new("g");
        let mut last_view = tracker.view().view_id;
        for (join, node) in ops {
            let changed = if join {
                tracker.join(netsim::NodeId(node))
            } else {
                tracker.leave(netsim::NodeId(node))
            };
            let view = tracker.view();
            // View ids are monotone and bump exactly on change.
            if changed {
                prop_assert_eq!(view.view_id, last_view + 1);
            } else {
                prop_assert_eq!(view.view_id, last_view);
            }
            last_view = view.view_id;
            // Membership stays sorted and unique.
            let mut sorted = view.members.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(&sorted, &view.members);
            // Quorum is a majority.
            if !view.is_empty() {
                prop_assert!(view.quorum() * 2 > view.len());
                prop_assert!((view.quorum() - 1) * 2 <= view.len());
            }
        }
    }

    // -----------------------------------------------------------------
    // Majority vote invariants.
    // -----------------------------------------------------------------

    #[test]
    fn majority_vote_winner_really_has_quorum(values in proptest::collection::vec(0i64..4, 1..12)) {
        let replies: Vec<(netsim::NodeId, Result<Any, orb::OrbError>)> = values
            .iter()
            .enumerate()
            .map(|(i, v)| (netsim::NodeId(i as u32), Ok(Any::LongLong(*v))))
            .collect();
        let quorum = values.len() / 2 + 1;
        match qosmech::replication::majority_vote(&replies, quorum) {
            Ok(winner) => {
                let count = values
                    .iter()
                    .filter(|v| Any::LongLong(**v) == winner)
                    .count();
                prop_assert!(count >= quorum);
            }
            Err(_) => {
                // No value may actually hold a quorum.
                for v in 0..4 {
                    let count = values.iter().filter(|x| **x == v).count();
                    prop_assert!(count < quorum);
                }
            }
        }
    }

    // -----------------------------------------------------------------
    // Contract resolution invariants.
    // -----------------------------------------------------------------

    #[test]
    fn contract_resolution_respects_feasibility(depth in 1usize..4, branching in 1usize..4, mask in any::<u32>()) {
        let h = services::contract::synthetic_hierarchy(depth, branching);
        let feasible = move |o: &services::contract::Offer| {
            let idx: u32 = o.characteristic[4..].parse().unwrap_or(0);
            mask & (1 << (idx % 32)) != 0
        };
        if let Some((offers, utility)) = h.resolve(&feasible) {
            prop_assert!(!offers.is_empty());
            for o in &offers {
                prop_assert!(feasible(o), "infeasible offer accepted: {}", o.characteristic);
            }
            let sum: f64 = offers.iter().map(|o| o.utility).sum();
            prop_assert!((sum - utility).abs() < 1e-9);
        }
    }
}

fn qidl_keyword(s: &str) -> bool {
    matches!(
        s,
        "struct" | "qos" | "interface" | "with" | "category" | "param" | "management"
            | "peer" | "integration" | "oneway" | "raises" | "readonly" | "attribute"
            | "in" | "out" | "inout" | "void" | "boolean" | "octet" | "long" | "unsigned"
            | "double" | "string" | "any" | "sequence"
    )
}
