//! Integration: the fault-tolerance characteristic under injected faults.
//!
//! Crashes, partitions and message loss from `netsim` against the
//! replication mediator and group-communication substrate (experiment
//! E4's correctness side).

use groupcomm::{FailureDetector, GroupService, MulticastModule};
use maqs::prelude::*;
use netsim::Partition;
use parking_lot::Mutex;
use qosmech::replication::{
    deploy_replicas, majority_vote, ReplicationMediator, ReplicationStrategy,
};
use std::sync::Arc;
use std::time::Duration;

struct Register(Mutex<i64>);
impl Register {
    fn boxed(v: i64) -> Box<dyn Servant> {
        Box::new(Register(Mutex::new(v)))
    }
}
impl Servant for Register {
    fn interface_id(&self) -> &str {
        "IDL:Register:1.0"
    }
    fn dispatch(&self, op: &str, args: &[Any]) -> Result<Any, OrbError> {
        match op {
            "get" => Ok(Any::LongLong(*self.0.lock())),
            "set" => {
                *self.0.lock() = args[0].as_i64().unwrap_or(0);
                Ok(Any::Void)
            }
            _ => Err(OrbError::BadOperation(op.to_string())),
        }
    }
    fn get_state(&self) -> Result<Any, OrbError> {
        Ok(Any::LongLong(*self.0.lock()))
    }
    fn set_state(&self, state: &Any) -> Result<(), OrbError> {
        *self.0.lock() = state.as_i64().unwrap_or(0);
        Ok(())
    }
}

fn fast_client(net: &Network) -> Orb {
    Orb::start_with(
        net,
        "client",
        orb::OrbConfig { request_timeout: Duration::from_millis(400), ..Default::default() },
    )
}

#[test]
fn failover_survives_sequential_crashes_until_last_replica() {
    let net = Network::new(21);
    let (orbs, iors) = deploy_replicas(&net, 4, "reg", |_| Register::boxed(7));
    let client = fast_client(&net);
    let mediator = Arc::new(ReplicationMediator::new(
        client.clone(),
        iors.clone(),
        ReplicationStrategy::Failover,
    ));
    let stub = ClientStub::new(client.clone(), iors[0].clone());
    stub.set_mediator(mediator.clone());

    for killed in 0..orbs.len() {
        assert_eq!(
            stub.invoke("get", &[]).unwrap(),
            Any::LongLong(7),
            "after {killed} crashes"
        );
        net.crash(orbs[killed].node());
    }
    // All dead: now it must fail.
    assert!(stub.invoke("get", &[]).is_err());
    for o in &orbs {
        o.shutdown();
    }
    client.shutdown();
}

#[test]
fn partition_isolates_then_heals() {
    let net = Network::new(22);
    let (orbs, iors) = deploy_replicas(&net, 2, "reg", |_| Register::boxed(1));
    let client = fast_client(&net);
    let mediator = Arc::new(ReplicationMediator::new(
        client.clone(),
        iors.clone(),
        ReplicationStrategy::Failover,
    ));
    let stub = ClientStub::new(client.clone(), iors[0].clone());
    stub.set_mediator(mediator.clone());

    // Put the client alone in a partition: nothing reachable.
    net.partition(Partition::new([
        vec![client.node()],
        vec![orbs[0].node(), orbs[1].node()],
    ]));
    assert!(stub.invoke("get", &[]).is_err());

    // Heal: service resumes without any reconfiguration.
    net.heal();
    assert_eq!(stub.invoke("get", &[]).unwrap(), Any::LongLong(1));

    // Partition that keeps one replica with the client: failover inside
    // the client's side of the partition succeeds.
    net.partition(Partition::new([
        vec![client.node(), orbs[1].node()],
        vec![orbs[0].node()],
    ]));
    assert_eq!(stub.invoke("get", &[]).unwrap(), Any::LongLong(1));
    assert!(mediator.stats().failovers >= 1);
    for o in &orbs {
        o.shutdown();
    }
    client.shutdown();
}

#[test]
fn majority_vote_tolerates_minority_value_corruption() {
    let net = Network::new(23);
    // One replica holds a corrupted value.
    let values = [5i64, 5, 99];
    let (orbs, iors) = deploy_replicas(&net, 3, "reg", |i| Register::boxed(values[i]));
    let client = fast_client(&net);
    let mediator = Arc::new(ReplicationMediator::new(
        client.clone(),
        iors.clone(),
        ReplicationStrategy::MajorityVote,
    ));
    let stub = ClientStub::new(client.clone(), iors[0].clone());
    stub.set_mediator(mediator);
    assert_eq!(stub.invoke("get", &[]).unwrap(), Any::LongLong(5));
    for o in &orbs {
        o.shutdown();
    }
    client.shutdown();
}

#[test]
fn majority_vote_with_loss_still_reaches_quorum() {
    let net = Network::new(24);
    let (orbs, iors) = deploy_replicas(&net, 5, "reg", |_| Register::boxed(3));
    let client = fast_client(&net);
    // 20% loss on the link to one replica: the other four carry quorum.
    net.set_link_directed(
        client.node(),
        orbs[0].node(),
        netsim::LinkModel::perfect().with_loss(1.0),
    );
    let mediator = Arc::new(ReplicationMediator::new(
        client.clone(),
        iors.clone(),
        ReplicationStrategy::MajorityVote,
    ));
    let stub = ClientStub::new(client.clone(), iors[0].clone());
    stub.set_mediator(mediator);
    assert_eq!(stub.invoke("get", &[]).unwrap(), Any::LongLong(3));
    for o in &orbs {
        o.shutdown();
    }
    client.shutdown();
}

#[test]
fn group_service_view_tracks_crash_evictions() {
    let net = Network::new(25);
    let host = Orb::start(&net, "group-host");
    let client = fast_client(&net);
    let svc_ior = host.activate("groups", Box::new(GroupService::new()));
    let (orbs, iors) = deploy_replicas(&net, 3, "reg", |_| Register::boxed(0));
    for ior in &iors {
        client
            .invoke(&svc_ior, "join", &[Any::from("regs"), Any::Str(ior.to_uri())])
            .unwrap();
    }
    let members = groupcomm::fetch_members(&client, &svc_ior, "regs").unwrap();
    assert_eq!(members.len(), 3);

    // Crash one; a failure-detector sweep reports it and we evict it
    // from the membership service.
    net.crash(orbs[1].node());
    let detector = FailureDetector::new(client.clone(), Duration::from_millis(300));
    let (_, dead) = detector.sweep(&members);
    assert_eq!(dead.len(), 1);
    for d in dead {
        client
            .invoke(
                &svc_ior,
                "remove_node",
                &[Any::from("regs"), Any::ULong(d.node.0)],
            )
            .unwrap();
    }
    let members = groupcomm::fetch_members(&client, &svc_ior, "regs").unwrap();
    assert_eq!(members.len(), 2);
    assert!(members.iter().all(|m| m.node != orbs[1].node()));
    for o in &orbs {
        o.shutdown();
    }
    host.shutdown();
    client.shutdown();
}

#[test]
fn transport_multicast_fans_out_under_crash() {
    let net = Network::new(26);
    let (orbs, iors) = deploy_replicas(&net, 3, "reg", |_| Register::boxed(4));
    let client = fast_client(&net);
    let nodes: Vec<netsim::NodeId> = iors.iter().map(|i| i.node).collect();
    client.qos_transport().install(Arc::new(MulticastModule::new("multicast", nodes)));
    for orb in &orbs {
        orb.qos_transport().install(Arc::new(MulticastModule::new("multicast", [])));
    }
    client
        .qos_transport()
        .bind(
            orb::qos_binding::BindingKey { peer: None, key: iors[0].key.clone() },
            "multicast",
        )
        .unwrap();
    net.crash(orbs[1].node());
    // invoke_collect through the fan-out still reaches 2 of 3.
    let replies = client
        .invoke_collect(
            &iors[0],
            "get",
            &[],
            Some(orb::giop::QosContext::new("Replication")),
            2,
            Duration::from_millis(500),
        )
        .unwrap();
    assert!(replies.len() >= 2);
    assert_eq!(majority_vote(&replies, 2).unwrap(), Any::LongLong(4));
    for o in &orbs {
        o.shutdown();
    }
    client.shutdown();
}

/// The chaos scenario from experiment E4's robustness side: a scripted
/// fault plan — a 150 ms latency spike, a 20 % lossy window, then a hard
/// crash of the bound replica — against a self-healing client.
///
/// The seed is fixed (override with `MAQS_CHAOS_SEED`) so the run is
/// reproducible; the assertions are written to hold under *any* seed:
/// no panics, every reply Ok or a typed error, the circuit breaker
/// opened at least once, at least one adaptation event, ladder steps
/// taken strictly in declared order, and post-heal calls succeeding.
#[test]
fn chaos_script_heals_binding_through_degradation_ladder() {
    let seed = std::env::var("MAQS_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(7u64);
    let ms = netsim::VirtualDuration::from_millis;
    let net = Network::new(seed);

    const SPEC: &str = r#"
        interface Register with qos Replication, Actuality {
            long long get();
            void set(in long long v);
        };
    "#;
    let serve = |node: &MaqsNode| {
        node.serve(
            "reg",
            Arc::new(Register(Mutex::new(40))),
            ServeOptions::interface("Register")
                .qos_impl(Arc::new(qosmech::replication::ReplicationQosImpl::new()))
                .qos_impl(Arc::new(qosmech::actuality::FreshnessStampQosImpl::new()))
                .capacity("Replication", 4),
        )
        .unwrap()
    };
    let s1 = MaqsNode::builder(&net, "s1").spec(SPEC).build().unwrap();
    let s2 = MaqsNode::builder(&net, "s2").spec(SPEC).build().unwrap();
    let client = MaqsNode::builder(&net, "client")
        .orb_config(orb::OrbConfig {
            request_timeout: Duration::from_millis(250),
            ..Default::default()
        })
        .build()
        .unwrap();
    let ior1 = serve(&s1);
    let ior2 = serve(&s2);

    // An agreement strict enough that the first failed call violates it
    // (one failure in a 64-sample window pulls the mean under 0.99).
    let offer = Offer::new("Replication", 1.0).with_param("availability", Any::Double(0.99));
    let agreement =
        client.negotiator().negotiate_offer(s1.orb().node(), "reg", &offer).unwrap();

    let engine = client.enable_self_healing(
        SelfHealingPolicy::new(
            DegradationLadder::new()
                .then(LadderStep::Renegotiate { relax_factor: 1.2 })
                .then(LadderStep::Rebind)
                .then(LadderStep::FailStatic { read_ops: vec!["get".to_string()] }),
        )
        .with_replicas(vec![ior1.clone(), ior2.clone()])
        .with_probe_timeout(Duration::from_millis(200))
        .with_retry(orb::retry::RetryPolicy::immediate(1))
        .with_breaker(BreakerConfig { consecutive_failures: 1, ..Default::default() }),
    );
    let stub = client.stub(&ior1);
    let _mediator = engine.guard(&stub, s1.orb().node(), &agreement);

    // The scripted plan, all on the virtual fault clock: spike the
    // client<->s1 link to 150 ms for 30 ms, leave it 20% lossy for the
    // next 30 ms, then crash s1 outright.
    net.schedule(
        FaultScript::new()
            .latency_spike(
                ms(30),
                ms(60),
                client.orb().node(),
                s1.orb().node(),
                LinkModel::perfect().with_latency(ms(150)),
                LinkModel::perfect().with_loss(0.2),
            )
            .crash_at(ms(90), s1.orb().node()),
    );

    // Drive the fault clock and keep calling through the chaos. Every
    // reply must be Ok or a *typed* error; a panic fails the test.
    let (mut ok, mut failed) = (0u32, 0u32);
    for round in 0..14i64 {
        net.tick(ms(10));
        match stub.invoke("set", &[Any::LongLong(round)]) {
            Ok(_) => ok += 1,
            Err(e) => {
                assert!(!e.to_string().is_empty());
                failed += 1;
            }
        }
        match stub.invoke("get", &[]) {
            Ok(v) => {
                assert!(v.as_i64().is_some(), "typed reply expected, got {v:?}");
                ok += 1;
            }
            Err(e) => {
                assert!(!e.to_string().is_empty());
                failed += 1;
            }
        }
    }
    assert_eq!(net.pending_faults(), 0, "the whole script ran");
    assert!(ok > 0, "some calls must survive the chaos");
    assert!(failed > 0, "the crash must cost at least one call");

    // The breaker opened (metrics count every transition) ...
    let snapshot = client.metrics_snapshot();
    let opened = snapshot
        .counters
        .iter()
        .find(|(name, _)| name == "resilience.circuit.open")
        .map(|(_, n)| *n)
        .unwrap_or(0);
    assert!(opened >= 1, "circuit never opened: {:?}", snapshot.counters);

    // ... and the flight recorder black-boxed the incident: opening the
    // circuit freezes the ring into a dump whose timeline carries the
    // open transition, so the failed run is debuggable after the fact.
    let dumps = client.orb().flight().dumps();
    assert!(
        dumps.iter().any(|d| d.reason == "circuit-open"
            && d.contains(orb::FlightEventKind::CircuitTransition, "->open")),
        "no circuit-open flight dump with the transition: {:?}",
        dumps.iter().map(|d| &d.reason).collect::<Vec<_>>()
    );
    assert!(
        client.orb().flight().count(orb::FlightEventKind::AdaptationRung) >= 1,
        "ladder rungs must reach the flight timeline"
    );

    // ... the ladder ran, in declared order, and ended in a live rung.
    let events = engine.events();
    assert!(!events.is_empty(), "healing must have produced events");
    let rung = |step: &str| match step {
        "renegotiate" => 0,
        "rebind" => 1,
        "fail_static" => 2,
        other => panic!("unexpected ladder step `{other}`"),
    };
    for pair in events.windows(2) {
        assert!(pair[0].seq < pair[1].seq);
        assert!(
            rung(&pair[0].step) <= rung(&pair[1].step),
            "ladder steps out of order: {events:?}"
        );
    }
    assert!(
        events.iter().any(|e| e.outcome.is_success()),
        "at least one rung must heal the binding: {events:?}"
    );

    // Post-heal, the binding serves again (from the surviving replica).
    for _ in 0..3 {
        assert!(stub.invoke("get", &[]).unwrap().as_i64().is_some());
    }
    s1.shutdown();
    s2.shutdown();
    client.shutdown();
}

#[test]
fn crashed_node_recovers_and_catches_up_via_state_transfer() {
    let net = Network::new(27);
    let (orbs, iors) = deploy_replicas(&net, 2, "reg", |_| Register::boxed(0));
    let client = fast_client(&net);
    client.invoke(&iors[0], "set", &[Any::LongLong(11)]).unwrap();
    client.invoke(&iors[1], "set", &[Any::LongLong(11)]).unwrap();

    net.crash(orbs[1].node());
    client.invoke(&iors[0], "set", &[Any::LongLong(22)]).unwrap();

    // Recover and resynchronize.
    net.revive(orbs[1].node());
    assert_eq!(client.invoke(&iors[1], "get", &[]).unwrap(), Any::LongLong(11)); // stale
    groupcomm::transfer_state(&client, &iors[0], &iors[1]).unwrap();
    assert_eq!(client.invoke(&iors[1], "get", &[]).unwrap(), Any::LongLong(22));
    for o in &orbs {
        o.shutdown();
    }
    client.shutdown();
}
