//! Integration: the request-path observability plane.
//!
//! One trace id must follow a call from the client stub across the wire
//! into the woven skeleton and back into the reply; per-layer metrics
//! must make agreed-QoS violations detectable without any cooperation
//! from the application code.

use maqs::prelude::*;
use qosmech::actuality::FreshnessStampQosImpl;
use std::sync::Arc;
use std::time::Duration;

const SPEC: &str = r#"
    interface Echo with qos Actuality {
        long long echo(in long long v);
    };
"#;

struct Echo;
impl Servant for Echo {
    fn interface_id(&self) -> &str {
        "IDL:Echo:1.0"
    }
    fn dispatch(&self, op: &str, args: &[Any]) -> Result<Any, OrbError> {
        match op {
            "echo" => Ok(args.first().cloned().unwrap_or(Any::Void)),
            _ => Err(OrbError::BadOperation(op.to_string())),
        }
    }
}

/// A servant that misses any reasonable deadline.
struct SlowEcho;
impl Servant for SlowEcho {
    fn interface_id(&self) -> &str {
        "IDL:Echo:1.0"
    }
    fn dispatch(&self, op: &str, args: &[Any]) -> Result<Any, OrbError> {
        std::thread::sleep(Duration::from_millis(5));
        Echo.dispatch(op, args)
    }
}

fn span_layers(trace: &TraceContext) -> Vec<&str> {
    trace.spans.iter().map(|s| s.layer.as_str()).collect()
}

#[test]
fn one_trace_id_spans_client_server_and_reply_across_renegotiation() {
    let net = Network::new(71);
    let server = MaqsNode::builder(&net, "server").spec(SPEC).build().unwrap();
    let client = MaqsNode::builder(&net, "client").build().unwrap();
    let ior = server
        .serve(
            "echo",
            Arc::new(Echo),
            ServeOptions::interface("Echo")
                .qos_impl(Arc::new(FreshnessStampQosImpl::new()))
                .capacity("Actuality", 2),
        )
        .unwrap();
    let stub = client.stub(&ior);

    // Unwoven traffic: the trace already crosses every layer.
    let reply = stub.invoke("echo", &[Any::LongLong(1)]).unwrap();
    let trace = maqs::trace_of(&reply).expect("reply carries a trace");
    assert_eq!(reply.trace_id(), Some(trace.trace_id));
    let layers = span_layers(trace);
    for expected in ["stub", "orb.client", "wire", "orb.server", "adapter", "servant", "wire.reply"]
    {
        assert!(layers.contains(&expected), "missing {expected} in {layers:?}");
    }
    // Client- and server-side spans share the one context (and so the
    // one id): the id was propagated, not re-derived.
    let server_span = trace.spans.iter().find(|s| s.layer == "servant").unwrap();
    let client_span = trace.spans.iter().find(|s| s.layer == "stub").unwrap();
    assert_eq!(server_span.node, "server");
    assert_eq!(client_span.node, "client");

    // Negotiate, then renegotiate — tracing must survive the version
    // bump and now show the QoS bracket around the servant.
    let agreement = client
        .negotiator()
        .negotiate_offer(
            server.orb().node(),
            "echo",
            &Offer::new("Actuality", 1.0).with_param("validity_ms", Any::ULongLong(1000)),
        )
        .unwrap();
    let renegotiated = client
        .negotiator()
        .renegotiate(
            server.orb().node(),
            &agreement,
            vec![("validity_ms".to_string(), Any::ULongLong(50))],
        )
        .unwrap();
    assert_eq!(renegotiated.version, 2);

    let woven_reply = stub.invoke("echo", &[Any::LongLong(2)]).unwrap();
    let woven_trace = maqs::trace_of(&woven_reply).expect("woven reply carries a trace");
    assert_ne!(woven_trace.trace_id, trace.trace_id, "each request gets a fresh id");
    let woven_layers = span_layers(woven_trace);
    for expected in ["qos.prolog", "servant", "qos.epilog", "stub"] {
        assert!(woven_layers.contains(&expected), "missing {expected} in {woven_layers:?}");
    }
    assert!(
        woven_trace.spans.iter().all(|s| s.node == "server" || s.node == "client"),
        "spans name only the two participating nodes: {woven_trace:?}"
    );
    server.shutdown();
    client.shutdown();
}

#[test]
fn injected_deadline_violation_is_detected_from_metrics_alone() {
    let net = Network::new(72);
    let server = MaqsNode::builder(&net, "server").spec(SPEC).build().unwrap();
    let client = MaqsNode::builder(&net, "client").build().unwrap();
    let ior = server
        .serve(
            "echo",
            Arc::new(SlowEcho),
            ServeOptions::interface("Echo")
                .qos_impl(Arc::new(FreshnessStampQosImpl::new()))
                .capacity("Actuality", 1),
        )
        .unwrap();

    // The agreement carries a 2 ms deadline; the servant takes ~5 ms.
    // Nothing else is instrumented by hand — detection must come from
    // the latency measurements the woven skeleton feeds the monitor.
    client
        .negotiator()
        .negotiate_offer(
            server.orb().node(),
            "echo",
            &Offer::new("Actuality", 1.0).with_param("deadline_ms", Any::Double(2.0)),
        )
        .unwrap();
    assert_eq!(server.monitor().violations("echo", "latency_us"), 0);

    let stub = client.stub(&ior);
    for i in 0..3 {
        stub.invoke("echo", &[Any::LongLong(i)]).unwrap();
    }

    assert!(
        server.monitor().violations("echo", "latency_us") > 0,
        "deadline misses must surface as monitor violations"
    );
    assert!(
        server.monitor().mean("echo", "latency_us").unwrap() > 2_000.0,
        "observed latency must reflect the injected slowness"
    );
    // The service stayed up the whole time.
    assert_eq!(server.monitor().mean("echo", "availability"), Some(1.0));
    server.shutdown();
    client.shutdown();
}

#[test]
fn per_layer_metrics_cover_client_and_server_planes() {
    let net = Network::new(73);
    let server = MaqsNode::builder(&net, "server").spec(SPEC).build().unwrap();
    let client = MaqsNode::builder(&net, "client").build().unwrap();
    let ior = server.serve("echo", Arc::new(Echo), ServeOptions::interface("Echo")).unwrap();

    let before = client.metrics_snapshot();
    let stub = client.stub(&ior);
    for i in 0..4 {
        stub.invoke("echo", &[Any::LongLong(i)]).unwrap();
    }
    let after = client.metrics_snapshot();
    assert!(after.dominates(&before));
    assert_eq!(after.counter("orb.requests_sent") - before.counter("orb.requests_sent"), 4);
    assert!(after.histogram("orb.roundtrip_us").is_some());

    let server_side = server.metrics_snapshot();
    assert!(server_side.counter("orb.requests_handled") >= 4);
    assert!(server_side.histogram("orb.dispatch_us").is_some());

    // The renderers accept any snapshot the registry produces.
    let human = maqs::report::render_metrics_human(&after);
    assert!(human.contains("orb.requests_sent"), "{human}");
    let json = maqs::report::render_metrics_json(&after);
    assert!(json.starts_with("{\"counters\":{"), "{json}");
    server.shutdown();
    client.shutdown();
}
