//! Integration: deployment-level static analysis across crates.
//!
//! A live client/server deployment — woven servants with installed QoS
//! implementations, negotiation capacities, client-side bindings and
//! mediator chains — is snapshotted into a
//! [`qoslint::deploy::DeploymentView`] and cross-checked against the
//! interface repository by `qoslint`'s `QL1xx` lints.

use maqs::lint::{binding_views, stub_view};
use maqs::prelude::*;
use maqs::qoslint::deploy::lint_deployment;
use maqs::qoslint::render::render_json;
use maqs::qoslint::{codes, Severity};
use std::sync::Arc;
use weaver::QosBindingRegistry;

const SPEC: &str = r#"
    interface Counter with qos Replication, Actuality {
        void bump();
        long long total();
    };
"#;

struct Counter(parking_lot::Mutex<i64>);

impl Servant for Counter {
    fn interface_id(&self) -> &str {
        "IDL:Counter:1.0"
    }
    fn dispatch(&self, op: &str, _args: &[Any]) -> Result<Any, OrbError> {
        match op {
            "bump" => {
                *self.0.lock() += 1;
                Ok(Any::Void)
            }
            "total" => Ok(Any::LongLong(*self.0.lock())),
            _ => Err(OrbError::BadOperation(op.to_string())),
        }
    }
}

fn counter() -> Arc<dyn Servant> {
    Arc::new(Counter(parking_lot::Mutex::new(0)))
}

/// A mediator that only names a characteristic; behaviour is irrelevant
/// to the lints.
struct Named(&'static str);

impl Mediator for Named {
    fn characteristic(&self) -> &str {
        self.0
    }
    fn around(&self, call: Call, next: Next<'_>) -> Result<Any, OrbError> {
        next(call)
    }
}

#[test]
fn healthy_deployment_lints_clean() {
    let net = netsim::Network::new(1);
    let server = MaqsNode::builder(&net, "server").spec(SPEC).build().unwrap();
    let client = MaqsNode::builder(&net, "client").build().unwrap();

    let ior = server
        .serve(
            "counter",
            counter(),
            ServeOptions::interface("Counter")
                .qos_impl(Arc::new(qosmech::replication::ReplicationQosImpl::new()))
                .qos_impl(Arc::new(qosmech::actuality::FreshnessStampQosImpl::new()))
                .capacity("Replication", 2),
        )
        .unwrap();

    // Client side: a binding plus a matching mediator chain.
    let registry = QosBindingRegistry::new();
    let binding = registry.bind("counter", "Replication", vec![("replicas".into(), Any::ULong(3))]);
    let stub = client.stub(&ior);
    stub.push_mediator(Arc::new(Named("Replication")));
    stub.apply_binding(&binding);

    let mut view = server.deployment_view();
    view.bindings = binding_views(&registry);
    view.stubs = vec![stub_view("counter", &stub)];

    let diags = lint_deployment(server.repository(), &view);
    assert!(diags.is_empty(), "{:?}", diags.into_vec());

    // The deployment is not just lint-clean, it works.
    stub.invoke("bump", &[]).unwrap();
    assert_eq!(stub.invoke("total", &[]).unwrap(), Any::LongLong(1));

    server.shutdown();
    client.shutdown();
}

#[test]
fn broken_client_state_is_caught() {
    let net = netsim::Network::new(1);
    let server = MaqsNode::builder(&net, "server").spec(SPEC).build().unwrap();
    let client = MaqsNode::builder(&net, "client").build().unwrap();

    // Server installs only Replication; Actuality stays un-negotiable.
    let ior = server
        .serve(
            "counter",
            counter(),
            ServeOptions::interface("Counter")
                .qos_impl(Arc::new(qosmech::replication::ReplicationQosImpl::new())),
        )
        .unwrap();

    let registry = QosBindingRegistry::new();
    // Unknown characteristic, and a param Replication does not declare.
    registry.bind("counter", "Teleportation", vec![]);
    let stub = client.stub(&ior);
    stub.push_mediator(Arc::new(Named("Actuality")));

    let mut view = server.deployment_view();
    view.bindings = binding_views(&registry);
    view.bindings.push(maqs::qoslint::deploy::BindingView {
        object_key: "counter".into(),
        characteristic: "Replication".into(),
        params: vec!["voters".into()],
    });
    view.stubs = vec![stub_view("counter", &stub)];

    let diags = lint_deployment(server.repository(), &view);
    let codes_seen: Vec<&str> = diags.iter().map(|d| d.code.0).collect();
    assert!(codes_seen.contains(&codes::BINDING_UNKNOWN.0), "{codes_seen:?}");
    assert!(codes_seen.contains(&codes::BINDING_PARAM_UNKNOWN.0), "{codes_seen:?}");
    assert!(codes_seen.contains(&codes::NOT_NEGOTIABLE.0), "{codes_seen:?}");
    assert!(codes_seen.contains(&codes::MISSING_QOS_IMPL.0), "{codes_seen:?}");
    assert!(diags.has_errors());
    assert!(diags.count(Severity::Warn) >= 2);

    // The JSON rendering is what an operator tool would consume.
    let json = render_json(None, &diags);
    assert!(json.contains("\"code\":\"QL105\""), "{json}");
    assert!(json.contains("\"severity\":\"warning\""), "{json}");

    server.shutdown();
    client.shutdown();
}

#[test]
fn node_level_lint_tracks_serving_state() {
    let net = netsim::Network::new(1);
    let server = MaqsNode::builder(&net, "server").spec(SPEC).build().unwrap();
    assert!(server.lint_deployment().is_empty(), "nothing served, nothing to lint");

    server.serve("counter", counter(), ServeOptions::interface("Counter")).unwrap();
    let diags = server.lint_deployment();
    assert_eq!(diags.len(), 2, "both assigned characteristics lack implementations");
    assert!(diags.iter().all(|d| d.code == codes::MISSING_QOS_IMPL));
    assert!(diags.iter().all(|d| d.severity == Severity::Warn));

    server.shutdown();
}
