//! Integration: the full weaving pipeline across crates.
//!
//! QIDL source → compiler → interface repository → woven servant on a
//! server node → typed/dynamic stubs with mediators on a client node,
//! exercising the Fig. 2 semantics over the simulated network.

use maqs::prelude::*;
use orb::giop::QosContext;
use parking_lot::Mutex;
use qosmech::actuality::FreshnessStampQosImpl;
use qosmech::replication::ReplicationQosImpl;
use std::collections::HashMap;
use std::sync::Arc;

const SPEC: &str = r#"
    struct Item {
        string name;
        long long amount;
    };
    interface Inventory with qos Replication, Actuality {
        void add(in Item item);
        long long count(in string name);
        sequence<Item> all();
    };
"#;

struct Inventory {
    items: Mutex<HashMap<String, i64>>,
}

impl Inventory {
    fn new() -> Arc<dyn Servant> {
        Arc::new(Inventory { items: Mutex::new(HashMap::new()) })
    }
}

impl Servant for Inventory {
    fn interface_id(&self) -> &str {
        "IDL:Inventory:1.0"
    }
    fn dispatch(&self, op: &str, args: &[Any]) -> Result<Any, OrbError> {
        match op {
            "add" => {
                let name = args[0].field("name").and_then(Any::as_str).unwrap_or("").to_string();
                let amount = args[0].field("amount").and_then(Any::as_i64).unwrap_or(0);
                *self.items.lock().entry(name).or_insert(0) += amount;
                Ok(Any::Void)
            }
            "count" => {
                let name = args[0].as_str().unwrap_or("");
                Ok(Any::LongLong(self.items.lock().get(name).copied().unwrap_or(0)))
            }
            "all" => Ok(Any::Sequence(
                self.items
                    .lock()
                    .iter()
                    .map(|(name, amount)| {
                        Any::Struct(
                            "Item".to_string(),
                            vec![
                                ("name".to_string(), Any::Str(name.clone())),
                                ("amount".to_string(), Any::LongLong(*amount)),
                            ],
                        )
                    })
                    .collect(),
            )),
            _ => Err(OrbError::BadOperation(op.to_string())),
        }
    }
    fn get_state(&self) -> Result<Any, OrbError> {
        self.dispatch("all", &[])
    }
    fn set_state(&self, state: &Any) -> Result<(), OrbError> {
        let mut items = self.items.lock();
        items.clear();
        for entry in state.as_sequence().unwrap_or(&[]) {
            let name = entry.field("name").and_then(Any::as_str).unwrap_or("").to_string();
            let amount = entry.field("amount").and_then(Any::as_i64).unwrap_or(0);
            items.insert(name, amount);
        }
        Ok(())
    }
}

fn item(name: &str, amount: i64) -> Any {
    Any::Struct(
        "Item".to_string(),
        vec![
            ("name".to_string(), Any::Str(name.to_string())),
            ("amount".to_string(), Any::LongLong(amount)),
        ],
    )
}

fn setup() -> (Network, MaqsNode, MaqsNode, Ior) {
    let net = Network::new(5);
    let server = MaqsNode::builder(&net, "server").spec(SPEC).build().unwrap();
    let client = MaqsNode::builder(&net, "client").build().unwrap();
    let ior = server
        .serve(
            "inv",
            Inventory::new(),
            ServeOptions::interface("Inventory")
                .qos_impl(Arc::new(ReplicationQosImpl::new()))
                .qos_impl(Arc::new(FreshnessStampQosImpl::new())),
        )
        .unwrap();
    (net, server, client, ior)
}

#[test]
fn ior_carries_assigned_characteristics_as_tags() {
    let (_net, server, client, ior) = setup();
    assert!(ior.is_qos_aware());
    assert!(ior.offers("Replication"));
    assert!(ior.offers("Actuality"));
    assert!(!ior.offers("Compression"));
    // The reference survives stringification (out-of-band hand-off).
    let reparsed = Ior::from_uri(&ior.to_uri()).unwrap();
    assert_eq!(reparsed, ior);
    server.shutdown();
    client.shutdown();
}

#[test]
fn application_traffic_is_unaffected_by_weaving() {
    let (_net, server, client, ior) = setup();
    let orb = client.orb();
    orb.invoke(&ior, "add", &[item("bolts", 40)]).unwrap();
    orb.invoke(&ior, "add", &[item("bolts", 2)]).unwrap();
    assert_eq!(orb.invoke(&ior, "count", &[Any::from("bolts")]).unwrap(), Any::LongLong(42));
    server.shutdown();
    client.shutdown();
}

#[test]
fn qos_operations_follow_negotiation_lifecycle() {
    let (_net, server, client, ior) = setup();
    let orb = client.orb();
    // Before negotiation every QoS op raises QosNotNegotiated.
    for op in ["export_state", "set_validity_ms"] {
        assert!(matches!(
            orb.invoke(&ior, op, &[]),
            Err(OrbError::QosNotNegotiated(_))
        ));
    }
    // Unknown ops are BadOperation, not QosNotNegotiated.
    assert!(matches!(orb.invoke(&ior, "warp", &[]), Err(OrbError::BadOperation(_))));

    // Negotiate Replication: its ops open up, Actuality's stay shut.
    let agreement = client
        .negotiator()
        .negotiate_offer(server.orb().node(), "inv", &Offer::new("Replication", 1.0))
        .unwrap();
    orb.invoke(&ior, "add", &[item("nuts", 7)]).unwrap();
    let state = orb.invoke(&ior, "export_state", &[]).unwrap();
    assert_eq!(state.as_sequence().unwrap().len(), 1);
    assert!(matches!(
        orb.invoke(&ior, "invalidate", &[]),
        Err(OrbError::QosNotNegotiated(_))
    ));

    // Release: back to locked.
    client.negotiator().release(server.orb().node(), &agreement).unwrap();
    assert!(matches!(
        orb.invoke(&ior, "export_state", &[]),
        Err(OrbError::QosNotNegotiated(_))
    ));
    server.shutdown();
    client.shutdown();
}

#[test]
fn delegate_exchange_switches_characteristics_at_runtime() {
    let (_net, server, client, ior) = setup();
    let orb = client.orb();
    let negotiator = client.negotiator();
    let node = server.orb().node();

    let a1 = negotiator.negotiate_offer(node, "inv", &Offer::new("Replication", 1.0)).unwrap();
    assert!(orb.invoke(&ior, "export_state", &[]).is_ok());
    negotiator.release(node, &a1).unwrap();

    let _a2 = negotiator.negotiate_offer(node, "inv", &Offer::new("Actuality", 1.0)).unwrap();
    assert!(orb.invoke(&ior, "export_state", &[]).is_err());
    // `now_us`/`stamped` are the Actuality ops implemented server-side;
    // `invalidate` lives in the client mediator and stays BadOperation here.
    assert!(orb.invoke(&ior, "now_us", &[]).is_ok());
    assert!(matches!(orb.invoke(&ior, "invalidate", &[]), Err(OrbError::BadOperation(_))));

    // Under Actuality, replies get freshness stamps via the epilog.
    orb.invoke(&ior, "add", &[item("screws", 1)]).unwrap();
    let all = orb
        .invoke_qos(&ior, "all", &[], Some(QosContext::new("Actuality")))
        .unwrap();
    assert!(all.as_sequence().is_some());
    server.shutdown();
    client.shutdown();
}

#[test]
fn mediator_chain_composes_over_the_woven_service() {
    let (_net, server, client, ior) = setup();
    // Negotiate Actuality and install the matching mediator.
    client
        .negotiator()
        .negotiate_offer(server.orb().node(), "inv", &Offer::new("Actuality", 1.0))
        .unwrap();
    let stub = client.stub(&ior);
    let mediator = Arc::new(qosmech::actuality::ActualityMediator::new(
        std::time::Duration::from_secs(60),
        vec!["count".to_string(), "all".to_string()],
    ));
    stub.set_mediator(mediator.clone());

    stub.invoke("add", &[item("x", 1)]).unwrap();
    let c1 = stub.invoke("count", &[Any::from("x")]).unwrap();
    let c2 = stub.invoke("count", &[Any::from("x")]).unwrap();
    assert_eq!(c1.value, c2.value);
    assert_eq!(mediator.stats().hits, 1);
    // A write invalidates; next read refetches.
    stub.invoke("add", &[item("x", 1)]).unwrap();
    assert_eq!(stub.invoke("count", &[Any::from("x")]).unwrap(), Any::LongLong(2));
    server.shutdown();
    client.shutdown();
}

#[test]
fn trading_discovers_the_woven_service_by_qos() {
    let (_net, server, client, ior) = setup();
    // Export to the server's own trader via the wire interface.
    let trader_ior = Ior::new(
        services::trading::TRADER_INTERFACE,
        server.orb().node(),
        services::trading::TRADER_KEY,
    );
    client.orb().invoke(&trader_ior, "export", &[Any::Str(ior.to_uri())]).unwrap();
    let found = services::trading::query_trader(
        client.orb(),
        server.orb().node(),
        "IDL:Inventory:1.0",
        &["Replication", "Actuality"],
    )
    .unwrap();
    assert_eq!(found.len(), 1);
    assert_eq!(found[0], ior);
    let none = services::trading::query_trader(
        client.orb(),
        server.orb().node(),
        "IDL:Inventory:1.0",
        &["Encryption"],
    )
    .unwrap();
    assert!(none.is_empty());
    server.shutdown();
    client.shutdown();
}

#[test]
fn state_transfer_round_trips_complex_state() {
    let (_net, server, client, ior) = setup();
    let net2_server = MaqsNode::builder(&Network::new(9), "other").spec(SPEC).build().unwrap();
    drop(net2_server); // unrelated node; just ensure builders are independent

    let orb = client.orb();
    orb.invoke(&ior, "add", &[item("a", 1)]).unwrap();
    orb.invoke(&ior, "add", &[item("b", 2)]).unwrap();
    let state = orb.invoke(&ior, "_get_state", &[]).unwrap();
    assert_eq!(state.as_sequence().unwrap().len(), 2);

    // A second woven inventory on the server node, initialized from it.
    let ior2 = server.serve("inv2", Inventory::new(), ServeOptions::interface("Inventory")).unwrap();
    groupcomm::transfer_state(orb, &ior, &ior2).unwrap();
    assert_eq!(orb.invoke(&ior2, "count", &[Any::from("b")]).unwrap(), Any::LongLong(2));
    server.shutdown();
    client.shutdown();
}
