//! Capstone integration: the complete MAQS story in one test file.
//!
//! Name resolution → trading discovery → preference-driven negotiation →
//! mediator installation via the registry → woven QoS traffic →
//! monitoring → accounting → violation-driven renegotiation → release.
//! Every §2.2 infrastructure service participates.

use maqs::prelude::*;
use parking_lot::Mutex;
use qosmech::actuality::{ActualityMediator, FreshnessStampQosImpl};
use services::accounting::{Accountant, PriceModel};
use services::monitoring::{Bound, Monitor, Statistic};
use services::naming::{bind_name, resolve_name};
use services::trading::query_trader;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;
use weaver::MediatorRegistry;

const SPEC: &str = r#"
    interface Quotes with qos Actuality {
        double price(in string symbol);
        void set_price(in string symbol, in double value);
    };
"#;

struct Quotes(Mutex<HashMap<String, f64>>);
impl Servant for Quotes {
    fn interface_id(&self) -> &str {
        "IDL:Quotes:1.0"
    }
    fn dispatch(&self, op: &str, args: &[Any]) -> Result<Any, OrbError> {
        match op {
            "price" => {
                let sym = args[0].as_str().unwrap_or("");
                Ok(Any::Double(self.0.lock().get(sym).copied().unwrap_or(100.0)))
            }
            "set_price" => {
                let sym = args[0].as_str().unwrap_or("").to_string();
                self.0.lock().insert(sym, args[1].as_double().unwrap_or(0.0));
                Ok(Any::Void)
            }
            _ => Err(OrbError::BadOperation(op.to_string())),
        }
    }
}

#[test]
fn full_qos_lifecycle() {
    let net = Network::new(99);
    let server = MaqsNode::builder(&net, "exchange").spec(SPEC).build().unwrap();
    let client = MaqsNode::builder(&net, "trader-desk").build().unwrap();

    // --- deploy: weave, register for negotiation, advertise ------------
    let ior = server
        .serve(
            "quotes",
            Arc::new(Quotes(Mutex::new(HashMap::new()))),
            ServeOptions::interface("Quotes")
                .qos_impl(Arc::new(FreshnessStampQosImpl::new()))
                .capacity("Actuality", 4),
        )
        .unwrap();
    bind_name(server.orb(), server.orb().node(), "markets/quotes", &ior).unwrap();
    server.trader().export(services::trading::ServiceOffer {
        type_id: ior.type_id.clone(),
        ior: ior.clone(),
        qos: ior.qos_tags.clone(),
    });

    // --- discover: by name and by required QoS --------------------------
    let by_name = resolve_name(client.orb(), server.orb().node(), "markets/quotes").unwrap();
    assert_eq!(by_name, ior);
    let by_qos =
        query_trader(client.orb(), server.orb().node(), "IDL:Quotes:1.0", &["Actuality"]).unwrap();
    assert_eq!(by_qos, vec![ior.clone()]);

    // --- negotiate via preferences --------------------------------------
    let prefs = ContractHierarchy::new(
        "fresh-quotes",
        ContractNode::Leaf(
            Offer::new("Actuality", 8.0).with_param("validity_ms", Any::ULongLong(50)),
        ),
    );
    let (agreements, utility) = client
        .negotiator()
        .negotiate_preferences(server.orb().node(), "quotes", &prefs)
        .unwrap();
    assert_eq!(utility, 8.0);
    let agreement = agreements.into_iter().next().unwrap();
    assert_eq!(agreement.characteristic, "Actuality");

    // --- install the mediator through the registry ----------------------
    let registry = MediatorRegistry::new();
    registry.register(
        "Actuality",
        Arc::new(|params: &[(String, Any)]| {
            let validity_ms = params
                .iter()
                .find(|(n, _)| n == "validity_ms")
                .and_then(|(_, v)| v.as_i64())
                .unwrap_or(1000) as u64;
            Ok(Arc::new(ActualityMediator::new(
                Duration::from_millis(validity_ms),
                vec!["price".to_string()],
            )) as Arc<dyn Mediator>)
        }),
    );
    let stub = client.stub(&ior);
    let mediator = registry.install(&stub, &agreement.characteristic, &agreement.params).unwrap();
    assert_eq!(stub.mediator_chain(), vec!["Actuality"]);

    // --- woven traffic with monitoring and accounting -------------------
    let monitor = Monitor::new(32);
    monitor.add_rule("quotes", "latency_us", Statistic::P95, Bound::Max, 500_000.0);
    let accountant = Accountant::new();
    accountant.set_tariff("Actuality", PriceModel { per_call: 0.01, per_byte: 0.0, per_second: 0.0 });

    for _ in 0..20 {
        let start = std::time::Instant::now();
        let price = stub.invoke("price", &[Any::from("ACME")]).unwrap();
        assert!(price.as_double().is_some());
        monitor.record("quotes", "latency_us", start.elapsed().as_secs_f64() * 1e6);
        accountant.record_call(agreement.id, &agreement.characteristic, 16);
    }
    // The cache must have absorbed most reads (50 ms validity, tight loop).
    let hit_ratio = stub
        .qos_op("Actuality", "hit_ratio", &[])
        .unwrap()
        .as_double()
        .unwrap();
    assert!(hit_ratio > 0.8, "hit ratio {hit_ratio}");
    assert!(monitor.p95("quotes", "latency_us").unwrap() < 500_000.0);
    assert_eq!(accountant.invoice(agreement.id).calls, 20);

    // --- adaptation: staleness demand tightens → renegotiate ------------
    let tightened = client
        .negotiator()
        .renegotiate(
            server.orb().node(),
            &agreement,
            vec![("validity_ms".to_string(), Any::ULongLong(1))],
        )
        .unwrap();
    assert_eq!(tightened.version, 2);
    // Reinstall the mediator from the renegotiated parameters.
    registry.install(&stub, &tightened.characteristic, &tightened.params).unwrap();
    let _ = mediator; // old mediator replaced
    // With 1 ms validity and a write in between, reads hit the server.
    stub.invoke("set_price", &[Any::from("ACME"), Any::Double(42.0)]).unwrap();
    std::thread::sleep(Duration::from_millis(5));
    let price = stub.invoke("price", &[Any::from("ACME")]).unwrap();
    assert_eq!(price, Any::Double(42.0));

    // --- teardown: release + final invoice ------------------------------
    client.negotiator().release(server.orb().node(), &tightened).unwrap();
    assert_eq!(server.woven("quotes").unwrap().active_characteristic(), None);
    let invoice = accountant.close(agreement.id);
    assert!((invoice.total - 0.20).abs() < 1e-9);
    assert_eq!(server.negotiation().live_agreements(), 0);

    // QoS ops are locked again after release.
    assert!(matches!(
        client.orb().invoke(&ior, "now_us", &[]),
        Err(OrbError::QosNotNegotiated(_))
    ));
    server.shutdown();
    client.shutdown();
}

#[test]
fn capacity_full_lifecycle_with_queueing_clients() {
    // Four clients compete for capacity 2; two succeed, two degrade to
    // nothing, then releases free capacity for the waiters.
    let net = Network::new(98);
    let server = MaqsNode::builder(&net, "exchange").spec(SPEC).build().unwrap();
    let client = MaqsNode::builder(&net, "desk").build().unwrap();
    server
        .serve(
            "quotes",
            Arc::new(Quotes(Mutex::new(HashMap::new()))),
            ServeOptions::interface("Quotes")
                .qos_impl(Arc::new(FreshnessStampQosImpl::new()))
                .capacity("Actuality", 2),
        )
        .unwrap();
    let offer = Offer::new("Actuality", 1.0);
    let node = server.orb().node();
    let n = client.negotiator();
    let a1 = n.negotiate_offer(node, "quotes", &offer).unwrap();
    let a2 = n.negotiate_offer(node, "quotes", &offer).unwrap();
    assert!(n.negotiate_offer(node, "quotes", &offer).is_err());
    n.release(node, &a1).unwrap();
    let a3 = n.negotiate_offer(node, "quotes", &offer).unwrap();
    assert!(a3.id > a2.id);
    server.shutdown();
    client.shutdown();
}
