//! tcp-server: the server half of the two-process quickstart.
//!
//! Binds a real loopback TCP listener, runs a full [`MaqsNode`] on it
//! (so negotiation, introspection and the woven Kv servant are all
//! served over actual sockets), and writes the Kv object's IOR URI —
//! endpoint profile included — to a file where the other process can
//! pick it up:
//!
//! ```text
//! cargo run --example tcp_server -- --ior-file /tmp/maqs-kv.ior --ttl 30 &
//! cargo run --example maqs_top  -- --attach @/tmp/maqs-kv.ior
//! ```
//!
//! The server needs no knowledge of its clients: dialers identify
//! themselves in the wire hello, and replies travel back over the
//! pooled connection the request arrived on.

use maqs::prelude::*;
use netsim::NodeId;
use orb::TcpTransport;
use std::sync::Arc;

struct Kv(parking_lot::Mutex<i64>);

impl Servant for Kv {
    fn interface_id(&self) -> &str {
        "IDL:Kv:1.0"
    }
    fn dispatch(&self, op: &str, args: &[Any]) -> Result<Any, OrbError> {
        match op {
            "put" => {
                *self.0.lock() = args.first().and_then(Any::as_i64).unwrap_or(0);
                Ok(Any::Void)
            }
            "get" => Ok(Any::LongLong(*self.0.lock())),
            _ => Err(OrbError::BadOperation(op.to_string())),
        }
    }
}

const KV_SPEC: &str = r#"
    interface Kv with qos Replication {
        void put(in long long v);
        long long get();
    };
"#;

fn main() {
    let mut addr = "127.0.0.1:0".to_string();
    let mut ior_file = "/tmp/maqs-kv.ior".to_string();
    let mut ttl_secs = 30u64;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--addr" => addr = args.next().expect("--addr needs host:port"),
            "--ior-file" => ior_file = args.next().expect("--ior-file needs a path"),
            "--ttl" => {
                ttl_secs = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--ttl needs seconds")
            }
            other => panic!("unknown argument {other:?}"),
        }
    }

    let wire = TcpTransport::bind(NodeId(1), &addr).expect("bind listener");
    println!("tcp-server: listening on {}", wire.local_addr());

    let node = MaqsNode::builder_wire(Arc::new(wire), "tcp-server")
        .spec(KV_SPEC)
        .build()
        .expect("start node");
    let ior = node
        .serve(
            "kv",
            Arc::new(Kv(parking_lot::Mutex::new(0))),
            ServeOptions::interface("Kv")
                .qos_impl(Arc::new(qosmech::replication::ReplicationQosImpl::new())),
        )
        .expect("serve kv");

    // Write-then-rename so a polling client never reads half a URI.
    let tmp = format!("{ior_file}.tmp");
    std::fs::write(&tmp, ior.to_uri()).expect("write ior");
    std::fs::rename(&tmp, &ior_file).expect("publish ior");
    println!("tcp-server: ior written to {ior_file}");
    println!("tcp-server: serving for {ttl_secs}s ({ior})");

    std::thread::sleep(std::time::Duration::from_secs(ttl_secs));
    node.shutdown();
    println!("ok.");
}
