//! Print the QoS characteristic catalog (§6 of the paper).
//!
//! "We think, that a catalog similar to those for design patterns is an
//! appropriate way to document QoS implementations" — this renders the
//! catalog of the five implemented characteristics, then answers the
//! reuse question the paper poses (which characteristics share which
//! mechanisms).
//!
//! Run with: `cargo run --example qos_catalog`

use services::catalog::{standard_catalog, Mechanism};

fn main() {
    let catalog = standard_catalog();
    println!("{}", catalog.to_markdown());

    println!("\n---\nmechanism reuse (the paper's closing observation):\n");
    for name in catalog.names() {
        let sharing = catalog.sharing_mechanisms(name);
        if sharing.is_empty() {
            continue;
        }
        for (other, mechanisms) in sharing {
            let list: Vec<&str> = mechanisms.iter().map(|m| m.name.as_str()).collect();
            println!("  {name} shares [{}] with {other}", list.join(", "));
        }
    }
    println!(
        "\n  users of the transport stream-transform mechanism: {:?}",
        catalog.users_of(&Mechanism::new("stream transform", "transport"))
    );
}
