//! A low-bandwidth "video metadata" channel with stacked transport QoS.
//!
//! The paper's compression characteristic exists for "channels with
//! small bandwidth"; privacy adds encryption. This example pushes frame
//! metadata over a 64 kbit/s narrowband link three ways — plain,
//! compressed, and compressed+encrypted — and compares the modelled
//! (virtual-time) transfer cost, including the QoS-to-QoS key exchange
//! through module commands (Fig. 3's command dispatch).
//!
//! Run with: `cargo run --example video_channel`

use maqs::prelude::*;
use orb::dii::DynamicCommand;
use orb::giop::QosContext;
use orb::qos_binding::BindingKey;
use qosmech::compress::{CompressionModule, COMPRESSION_MODULE};
use qosmech::crypt::{keyex, EncryptionModule, ENCRYPTION_MODULE};
use std::sync::Arc;

/// A sink that stores frame metadata blobs.
struct FrameSink;

impl Servant for FrameSink {
    fn interface_id(&self) -> &str {
        "IDL:FrameSink:1.0"
    }
    fn dispatch(&self, op: &str, args: &[Any]) -> Result<Any, OrbError> {
        match op {
            "push" => {
                let bytes = args[0].as_bytes().map(<[u8]>::len).unwrap_or(0);
                Ok(Any::ULongLong(bytes as u64))
            }
            _ => Err(OrbError::BadOperation(op.to_string())),
        }
    }
}

/// Synthetic frame metadata: structured, repetitive — compressible.
fn frame_payload(frame_no: u32) -> Vec<u8> {
    let mut s = String::new();
    for block in 0..64 {
        s.push_str(&format!(
            "frame={frame_no};block={block};codec=sim264;flags=keyframe=0,inter=1;qp=28;"
        ));
    }
    s.into_bytes()
}

fn main() {
    let net = Network::new(3);
    println!("== video channel: compression + encryption over 64 kbit/s ==\n");

    let server = Orb::start(&net, "sink-host");
    let client = Orb::start(&net, "uplink");
    // The paper's "small bandwidth channel".
    net.set_link(client.node(), server.node(), LinkModel::narrowband(64));

    let ior = server.activate_with_tags(
        "sink",
        Box::new(FrameSink),
        &["Compression", "Encryption"],
    );

    let frames = 5u32;

    // --- 1. plain ---------------------------------------------------------
    let start = client.net_handle().now();
    for f in 0..frames {
        client.invoke(&ior, "push", &[Any::Bytes(frame_payload(f))]).unwrap();
    }
    let plain_vt = client.net_handle().now() - start;
    let plain_bytes = net.stats().link(client.node(), server.node()).bytes_delivered;
    println!("plain      : {frames} frames in {plain_vt} (virtual), {plain_bytes} bytes on wire");

    // --- 2. compressed ----------------------------------------------------
    let cmod_tx = Arc::new(CompressionModule::new());
    client.qos_transport().install(cmod_tx.clone());
    server.qos_transport().install(Arc::new(CompressionModule::new()));
    client
        .qos_transport()
        .bind(BindingKey { peer: None, key: ior.key.clone() }, COMPRESSION_MODULE)
        .unwrap();
    let start = client.net_handle().now();
    for f in 0..frames {
        client
            .invoke_qos(
                &ior,
                "push",
                &[Any::Bytes(frame_payload(f))],
                Some(QosContext::new("Compression")),
            )
            .unwrap();
    }
    let comp_vt = client.net_handle().now() - start;
    println!(
        "compressed : {frames} frames in {comp_vt} (virtual), ratio {:.2} ({} -> {} bytes)",
        cmod_tx.ratio(),
        cmod_tx.bytes_in(),
        cmod_tx.bytes_out()
    );

    // --- 3. compressed + encrypted ----------------------------------------
    // QoS-to-QoS key agreement through the modules' dynamic interfaces.
    let client_secret = 0xC0FFEE_u64;
    let server_secret = 0xB0BA_u64;
    let shared = keyex::shared(client_secret, keyex::public(server_secret));
    client.qos_transport().install(Arc::new(EncryptionModule::new(shared)));
    server.qos_transport().install(Arc::new(EncryptionModule::new(0)));
    // Tell the server-side module the agreed key via a module command
    // (the dual-use request of Fig. 3).
    DynamicCommand::to_module(server.node(), ENCRYPTION_MODULE, "rekey")
        .arg(Any::ULongLong(keyex::shared(server_secret, keyex::public(client_secret))))
        .invoke(&client)
        .unwrap();
    assert_eq!(
        keyex::shared(server_secret, keyex::public(client_secret)),
        shared,
        "DH halves agree"
    );

    // Stack: compress first, then encrypt — rebind to encryption and let
    // the encryption module wrap the already-bound compression? Modules
    // bind one per relationship, so we stack by composing manually:
    // compress the payload at the application layer mediator-style, and
    // encrypt on the transport. (Stacking demo.)
    client
        .qos_transport()
        .bind(BindingKey { peer: None, key: ior.key.clone() }, ENCRYPTION_MODULE)
        .unwrap();
    let start = client.net_handle().now();
    for f in 0..frames {
        let compressed = qosmech::compress::codec::compress(&frame_payload(f));
        client
            .invoke_qos(
                &ior,
                "push",
                &[Any::Bytes(compressed)],
                Some(QosContext::new("Encryption")),
            )
            .unwrap();
    }
    let enc_vt = client.net_handle().now() - start;
    println!("comp+crypt : {frames} frames in {enc_vt} (virtual), key id agreed via module command");

    println!("\nspeedup vs plain: compressed {:.1}x, comp+crypt {:.1}x",
        plain_vt.as_secs_f64() / comp_vt.as_secs_f64().max(1e-9),
        plain_vt.as_secs_f64() / enc_vt.as_secs_f64().max(1e-9));

    server.shutdown();
    client.shutdown();
    println!("\nok.");
}
