//! Quickstart: a request through every layer of Fig. 1.
//!
//! Defines a QIDL interface with an assigned QoS characteristic, weaves
//! a servant, and walks one invocation through client → stub (mediator)
//! → ORB → simulated network → ORB → object adapter → woven skeleton
//! (prolog/epilog) → servant, showing what each layer contributed.
//!
//! Run with: `cargo run --example quickstart`

use maqs::prelude::*;
use qosmech::actuality::FreshnessStampQosImpl;
use std::sync::Arc;

/// Pure application logic: a greeter. Note there is no QoS code here —
/// that is the separation of concerns the paper is about.
struct Greeter;

impl Servant for Greeter {
    fn interface_id(&self) -> &str {
        "IDL:Greeter:1.0"
    }
    fn dispatch(&self, op: &str, args: &[Any]) -> Result<Any, OrbError> {
        match op {
            "greet" => Ok(Any::Struct(
                "Greeting".to_string(),
                vec![(
                    "text".to_string(),
                    Any::Str(format!("hello, {}!", args[0].as_str().unwrap_or("?"))),
                )],
            )),
            _ => Err(OrbError::BadOperation(op.to_string())),
        }
    }
}

const SPEC: &str = r#"
    interface Greeter with qos Actuality {
        any greet(in string who);
    };
"#;

fn main() {
    // A deterministic simulated network with a LAN between two nodes.
    let net = Network::new(42);

    println!("== MAQS quickstart: one request through every Fig. 1 layer ==\n");

    // Server node: ORB + interface repository + negotiation + trader.
    let server = MaqsNode::builder(&net, "server").spec(SPEC).build().expect("spec compiles");
    let client = MaqsNode::builder(&net, "client").build().expect("client node");
    net.set_link(server.orb().node(), client.orb().node(), LinkModel::lan());

    // Weave the servant: the woven skeleton accepts the Actuality QoS
    // operations and brackets application calls with prolog/epilog.
    let ior = server
        .serve(
            "greeter",
            Arc::new(Greeter),
            ServeOptions::interface("Greeter").qos_impl(Arc::new(FreshnessStampQosImpl::new())),
        )
        .expect("weave greeter");
    println!("server activated: {ior}");
    println!("IOR uri          : {}\n", ior.to_uri());

    // 1. A plain, QoS-unaware call (no mediator, no negotiated QoS).
    let stub = client.stub(&ior);
    let reply = stub.invoke("greet", &[Any::from("world")]).expect("greet");
    println!("plain call reply  : {}", reply.value);

    // Every reply carries its request's trace: one trace id, one span
    // per Fig. 1 layer the call crossed, client and server side.
    if let Some(trace) = maqs::trace_of(&reply) {
        println!("\nper-layer cost of that one call (spans include the layers beneath):");
        print!("{}", maqs::report::render_trace_human(trace));
        println!();
    }

    // 2. QoS operations are visible but locked until negotiation
    //    (the Fig. 2 "not negotiated" exception).
    let err = stub.invoke("hit_ratio", &[]).expect_err("not negotiated yet");
    println!("before negotiation: hit_ratio -> {err}");

    // 3. Negotiate the Actuality characteristic.
    let (agreements, utility) = client
        .negotiator()
        .negotiate_preferences(
            server.orb().node(),
            "greeter",
            &ContractHierarchy::new(
                "freshness",
                ContractNode::Leaf(
                    Offer::new("Actuality", 1.0).with_param("validity_ms", Any::ULongLong(1000)),
                ),
            ),
        )
        .expect("negotiate");
    println!(
        "negotiated        : {} v{} (utility {utility})",
        agreements[0].characteristic, agreements[0].version
    );

    // 4. Install the client-side mediator of the negotiated
    //    characteristic: a bounded-staleness cache.
    let mediator = Arc::new(qosmech::actuality::ActualityMediator::new(
        std::time::Duration::from_millis(1000),
        vec!["greet".to_string()],
    ));
    stub.set_mediator(mediator.clone());
    stub.set_qos_context(Some(orb::giop::QosContext::new("Actuality")));

    // 5. Woven traffic: the epilog stamps replies, the mediator caches.
    let first = stub.invoke("greet", &[Any::from("maqs")]).expect("woven call");
    let stamp = qosmech::actuality::stamp_of(&first);
    println!("woven call reply  : {}", first.value);
    println!("freshness stamp   : {stamp:?} µs (added by the server-side epilog)");
    println!("qos tag           : {:?}", first.qos_tag);
    if let Some(trace) = maqs::trace_of(&first) {
        println!("\nper-layer cost of the woven call (note the mediator and qos spans):");
        print!("{}", maqs::report::render_trace_human(trace));
        println!();
    }
    let again = stub.invoke("greet", &[Any::from("maqs")]).expect("cached call");
    assert_eq!(first.value, again.value);
    println!(
        "repeat call       : served from mediator cache (hit ratio {:.2})",
        mediator.hit_ratio()
    );

    // 6. What the layers measured: every counter and latency histogram
    //    the client-side ORB, transport, and mechanisms recorded.
    println!("\nclient metrics:");
    print!("{}", maqs::report::render_metrics_human(&client.metrics_snapshot()));
    println!("\nserver metrics:");
    print!("{}", maqs::report::render_metrics_human(&server.metrics_snapshot()));

    // 7. Remote introspection: the same telemetry, pulled from the
    //    *server* over the ORB. Every node serves its metrics, flight
    //    recorder and deployment under the well-known `introspection`
    //    key, so operators observe peers through GIOP, not side doors.
    let introspector = client.introspector();
    let health = introspector.health(server.orb().node()).expect("health");
    println!(
        "\nremote health     : node={} handled={} dropped={} flight_events={}",
        health.node, health.requests_handled, health.packets_dropped, health.flight_events
    );
    let tail = introspector.flight_tail(server.orb().node(), 3).expect("flight tail");
    println!("server flight tail (fetched over GIOP):");
    print!("{}", maqs::report::render_flight_human(&tail));

    // 8. What the network saw.
    let stats = net.stats();
    println!(
        "\nnetwork           : {} messages, {} bytes total",
        stats.total_msgs(),
        stats.total_bytes()
    );
    println!(
        "virtual time      : client clock at {}",
        client.orb().net_handle().now()
    );

    server.shutdown();
    client.shutdown();
    println!("\nok.");
}
