//! The QIDL compiler as a command-line tool (the §3.3 aspect weaver).
//!
//! Usage:
//!
//! ```text
//! cargo run --example qidl_compiler                 # compile the demo spec
//! cargo run --example qidl_compiler -- file.qidl    # compile a file
//! cargo run --example qidl_compiler -- --check file.qidl   # front-end only
//! ```
//!
//! Prints the woven Rust module (application traits, servant skeletons
//! with typed dispatch, client stubs with mediator delegation, QoS
//! parameter structs) to stdout.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let check_only = args.iter().any(|a| a == "--check");
    let file = args.iter().find(|a| !a.starts_with("--"));

    let (name, source) = match file {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(src) => (path.clone(), src),
            Err(e) => {
                eprintln!("error: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => ("<demo: crates/maqs/src/demo/ticker.qidl>".to_string(),
                 maqs::demo::TICKER_QIDL.to_string()),
    };

    let spec = match qidl::compile(&source) {
        Ok(spec) => spec,
        Err(e) => {
            eprintln!("{name}: {e}");
            return ExitCode::FAILURE;
        }
    };

    eprintln!(
        "// {name}: {} interface(s), {} qos characteristic(s), {} struct(s)",
        spec.interfaces().count(),
        spec.qos_characteristics().count(),
        spec.structs().count()
    );
    for iface in spec.interfaces() {
        eprintln!(
            "//   interface {} ({} ops{})",
            iface.name,
            iface.operations.len(),
            if iface.qos.is_empty() {
                String::new()
            } else {
                format!(", qos: {}", iface.qos.join(", "))
            }
        );
    }

    if check_only {
        eprintln!("// ok (checked only)");
        return ExitCode::SUCCESS;
    }

    print!("{}", qidl::codegen::generate(&spec));
    ExitCode::SUCCESS
}
