//! A fault-tolerant bank built from the Replication characteristic.
//!
//! Deploys a 3-replica bank, routes writes through a failover mediator,
//! crashes replicas mid-run (including a majority), shows availability
//! masking, then heals the group by state transfer into a fresh replica
//! — the exact scenario §3.1 uses to argue that QoS is an aspect.
//!
//! Run with: `cargo run --example replicated_bank`

use maqs::prelude::*;
use groupcomm::FailureDetector;
use parking_lot::Mutex;
use qosmech::replication::{
    deploy_replicas, join_replica, ReplicationMediator, ReplicationStrategy,
};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// The bank servant: accounts and balances, no QoS anywhere.
struct Bank {
    accounts: Mutex<HashMap<String, i64>>,
}

impl Bank {
    fn boxed() -> Box<dyn Servant> {
        Box::new(Bank { accounts: Mutex::new(HashMap::new()) })
    }
}

impl Servant for Bank {
    fn interface_id(&self) -> &str {
        "IDL:Bank:1.0"
    }
    fn dispatch(&self, op: &str, args: &[Any]) -> Result<Any, OrbError> {
        let mut accounts = self.accounts.lock();
        match op {
            "deposit" => {
                let who = args[0].as_str().unwrap_or("").to_string();
                let amount = args[1].as_i64().unwrap_or(0);
                let balance = accounts.entry(who).or_insert(0);
                *balance += amount;
                Ok(Any::LongLong(*balance))
            }
            "balance" => {
                let who = args[0].as_str().unwrap_or("");
                Ok(Any::LongLong(accounts.get(who).copied().unwrap_or(0)))
            }
            _ => Err(OrbError::BadOperation(op.to_string())),
        }
    }
    fn get_state(&self) -> Result<Any, OrbError> {
        let accounts = self.accounts.lock();
        Ok(Any::Sequence(
            accounts
                .iter()
                .map(|(k, v)| {
                    Any::Struct(
                        "Entry".to_string(),
                        vec![
                            ("who".to_string(), Any::Str(k.clone())),
                            ("balance".to_string(), Any::LongLong(*v)),
                        ],
                    )
                })
                .collect(),
        ))
    }
    fn set_state(&self, state: &Any) -> Result<(), OrbError> {
        let mut accounts = self.accounts.lock();
        accounts.clear();
        for entry in state.as_sequence().unwrap_or(&[]) {
            let who = entry.field("who").and_then(Any::as_str).unwrap_or("").to_string();
            let balance = entry.field("balance").and_then(Any::as_i64).unwrap_or(0);
            accounts.insert(who, balance);
        }
        Ok(())
    }
}

fn main() {
    let net = Network::new(7);
    println!("== replicated bank: crash-masking through a replica group ==\n");

    // Three replicas of the same bank object, each on its own node.
    let (orbs, iors) = deploy_replicas(&net, 3, "bank", |_| Bank::boxed());
    for ior in &iors {
        println!("replica: {ior}");
    }

    // The client goes through a failover replication mediator.
    let client = Orb::start_with(
        &net,
        "client",
        orb::OrbConfig { request_timeout: Duration::from_millis(500), ..Default::default() },
    );
    let mediator = Arc::new(ReplicationMediator::new(
        client.clone(),
        iors.clone(),
        ReplicationStrategy::Failover,
    ));
    let stub = ClientStub::new(client.clone(), iors[0].clone());
    stub.set_mediator(mediator.clone());

    // Writes replicate by writing through, then syncing state to peers
    // (simplified primary-copy: deposit on primary, state-transfer out).
    let sync_all = |primary_idx: usize| {
        for (i, target) in iors.iter().enumerate() {
            if i != primary_idx && !net.is_crashed(target.node) {
                let _ = groupcomm::transfer_state(&client, &iors[primary_idx], target);
            }
        }
    };

    println!("\nalice deposits 100, 50:");
    stub.invoke("deposit", &[Any::from("alice"), Any::LongLong(100)]).unwrap();
    stub.invoke("deposit", &[Any::from("alice"), Any::LongLong(50)]).unwrap();
    sync_all(0);
    println!("  balance = {}", stub.invoke("balance", &[Any::from("alice")]).unwrap());

    println!("\n!! crashing replica 0 (the primary)");
    net.crash(orbs[0].node());
    let balance = stub.invoke("balance", &[Any::from("alice")]).unwrap();
    println!("  balance  = {balance}  (answered by a surviving replica)");
    println!("  failovers so far: {}", mediator.stats().failovers);

    println!("\n!! crashing replica 1 as well (majority gone)");
    net.crash(orbs[1].node());
    let balance = stub.invoke("balance", &[Any::from("alice")]).unwrap();
    println!("  balance  = {balance}  (one replica left — service still up)");

    // Failure detection evicts the dead members from the group.
    let detector = FailureDetector::new(client.clone(), Duration::from_millis(300));
    let evicted = mediator.evict_dead(&detector);
    println!("\nfailure detector evicted {evicted} dead replicas; group = {}", mediator.replicas().len());

    // A fresh replica joins and is initialized via state transfer.
    let new_orb = Orb::start(&net, "replica-new");
    let new_ior = new_orb.activate_with_tags("bank", Bank::boxed(), &["Replication"]);
    join_replica(&mediator, &detector, new_ior.clone()).unwrap();
    println!("new replica joined: {new_ior}");
    println!(
        "  its transferred balance(alice) = {}",
        client.invoke(&new_ior, "balance", &[Any::from("alice")]).unwrap()
    );

    println!("\nmediator stats: {:?}", mediator.stats());

    for o in &orbs {
        o.shutdown();
    }
    new_orb.shutdown();
    client.shutdown();
    println!("\nok.");
}
