//! Bounded-staleness stock quotes with monitoring and renegotiation.
//!
//! The Actuality characteristic end to end: a ticker servant is woven
//! with a freshness-stamping QoS implementation; the client negotiates a
//! validity interval, installs the caching mediator, and a QoS monitor
//! watches observed staleness. When the monitor reports violations, the
//! client renegotiates a longer validity interval — the paper's
//! "renegotiations if the resource availability … decreases".
//!
//! Run with: `cargo run --example stock_ticker`

use maqs::prelude::*;
use parking_lot::Mutex;
use qosmech::actuality::{stamp_of, ActualityMediator, FreshnessStampQosImpl};
use services::monitoring::{Bound, Monitor, Statistic};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

struct Ticker {
    prices: Mutex<HashMap<String, f64>>,
}

impl Servant for Ticker {
    fn interface_id(&self) -> &str {
        "IDL:Ticker:1.0"
    }
    fn dispatch(&self, op: &str, args: &[Any]) -> Result<Any, OrbError> {
        match op {
            "quote" => {
                let symbol = args[0].as_str().unwrap_or("").to_string();
                let price = *self.prices.lock().entry(symbol.clone()).or_insert(100.0);
                Ok(Any::Struct(
                    "Quote".to_string(),
                    vec![
                        ("symbol".to_string(), Any::Str(symbol)),
                        ("price".to_string(), Any::Double(price)),
                    ],
                ))
            }
            "tick" => {
                let symbol = args[0].as_str().unwrap_or("").to_string();
                let delta = args[1].as_double().unwrap_or(0.0);
                let mut prices = self.prices.lock();
                let p = prices.entry(symbol).or_insert(100.0);
                *p += delta;
                Ok(Any::Double(*p))
            }
            _ => Err(OrbError::BadOperation(op.to_string())),
        }
    }
}

const SPEC: &str = r#"
    interface Ticker with qos Actuality {
        any quote(in string symbol);
        double tick(in string symbol, in double delta);
    };
"#;

fn main() {
    let net = Network::new(11);
    println!("== stock ticker: actuality + monitoring + renegotiation ==\n");

    let server = MaqsNode::builder(&net, "exchange").spec(SPEC).build().unwrap();
    let client = MaqsNode::builder(&net, "trader").build().unwrap();

    let stamper = Arc::new(FreshnessStampQosImpl::new());
    let ior = server
        .serve(
            "ticker",
            Arc::new(Ticker { prices: Mutex::new(HashMap::new()) }),
            ServeOptions::interface("Ticker").qos_impl(stamper.clone()),
        )
        .unwrap();

    // Negotiate Actuality with a tight validity interval.
    let negotiator = client.negotiator();
    let agreement = negotiator
        .negotiate_offer(
            server.orb().node(),
            "ticker",
            &Offer::new("Actuality", 3.0).with_param("validity_ms", Any::ULongLong(40)),
        )
        .unwrap();
    println!(
        "agreement v{}: Actuality validity_ms={}",
        agreement.version,
        agreement.params[0].1
    );

    // Client-side mediator enforcing the agreed bound.
    let stub = client.stub(&ior);
    let mediator =
        Arc::new(ActualityMediator::new(Duration::from_millis(40), vec!["quote".to_string()]));
    stub.set_mediator(mediator.clone());

    // Monitor observed staleness against the agreement.
    let monitor = Arc::new(Monitor::new(16));
    monitor.add_rule("ticker", "staleness_ms", Statistic::Mean, Bound::Max, 40.0);
    monitor.on_violation(Arc::new(|event| {
        println!("  !! violation: {event}");
    }));

    // Trading loop: read quotes; the market ticks underneath.
    println!("\nphase 1: validity 40ms, market ticking every ~25ms");
    for round in 0..8 {
        let reply = stub.invoke("quote", &[Any::from("ACME")]).unwrap();
        let produced = stamp_of(&reply).unwrap_or(0);
        let staleness_ms = (stamper.now_us().saturating_sub(produced)) as f64 / 1000.0;
        monitor.record("ticker", "staleness_ms", staleness_ms);
        println!(
            "  round {round}: price={:.2} staleness={staleness_ms:.1}ms (cache hit ratio {:.2})",
            reply.field("price").and_then(Any::as_double).unwrap_or(0.0),
            mediator.hit_ratio()
        );
        server.orb().invoke(&ior, "tick", &[Any::from("ACME"), Any::Double(0.5)]).unwrap();
        std::thread::sleep(Duration::from_millis(25));
    }
    println!(
        "phase 1 staleness: mean={:.1}ms p95={:.1}ms violations={}",
        monitor.mean("ticker", "staleness_ms").unwrap_or(0.0),
        monitor.p95("ticker", "staleness_ms").unwrap_or(0.0),
        monitor.violations("ticker", "staleness_ms"),
    );

    // Adaptation: loosen the agreement and the mediator accordingly.
    let relaxed = negotiator
        .renegotiate(
            server.orb().node(),
            &agreement,
            vec![("validity_ms".to_string(), Any::ULongLong(200))],
        )
        .unwrap();
    mediator.set_validity(Duration::from_millis(200));
    mediator.invalidate();
    println!(
        "\nrenegotiated to v{}: validity_ms={} (fewer fetches, more staleness allowed)",
        relaxed.version, relaxed.params[0].1
    );

    println!("\nphase 2: validity 200ms");
    for round in 0..8 {
        let reply = stub.invoke("quote", &[Any::from("ACME")]).unwrap();
        println!(
            "  round {round}: price={:.2} (cache hit ratio {:.2})",
            reply.field("price").and_then(Any::as_double).unwrap_or(0.0),
            mediator.hit_ratio()
        );
        std::thread::sleep(Duration::from_millis(25));
    }
    println!(
        "\nserver handled {} requests for 16 client reads — the cache absorbed the rest",
        server.orb().stats().requests_handled
    );

    server.shutdown();
    client.shutdown();
    println!("\nok.");
}
