//! maqs-top: a live dashboard over ORB-served remote introspection.
//!
//! Every [`MaqsNode`] activates an introspection servant under the
//! well-known `introspection` key, so any peer can pull metrics
//! snapshots, flight-recorder tails, health counters and the woven
//! deployment over plain GIOP — the dashboard below is an ordinary
//! client of that interface, not a privileged observer. It drives load
//! at two server nodes, then renders a few refresh frames the way `top`
//! would: one row per node (requests, drops, p50/p95/p99 dispatch
//! latency), the served bindings, and the tail of the busiest node's
//! flight timeline.
//!
//! Run with: `cargo run --example maqs_top`
//!
//! With `--attach <ior|@file>` the dashboard skips the simulated
//! cluster and attaches to a *live server in another process* over the
//! IOR's endpoint profile (see `examples/tcp_server.rs`): it drives a
//! little load at the served object, then renders the same panes from
//! introspection pulled over real loopback TCP.
//!
//! With `--cluster` it renders the fleet view instead: a
//! [`services::TelemetryAggregator`] scrapes a simulated 4-worker
//! cluster, merges per-node histograms into fleet distributions, and
//! evaluates SLO burn rates derived from the negotiated deadline
//! agreements — one worker is deliberately slow, so the alert pane has
//! something to fire about.

use maqs::prelude::*;
use maqs::report::render_flight_human;
use netsim::NodeId;
use orb::export::{prometheus_text, quantile_line};
use orb::TcpTransport;
use std::sync::Arc;

struct Kv(parking_lot::Mutex<i64>);

impl Servant for Kv {
    fn interface_id(&self) -> &str {
        "IDL:Kv:1.0"
    }
    fn dispatch(&self, op: &str, args: &[Any]) -> Result<Any, OrbError> {
        match op {
            "put" => {
                *self.0.lock() = args.first().and_then(Any::as_i64).unwrap_or(0);
                Ok(Any::Void)
            }
            "get" => Ok(Any::LongLong(*self.0.lock())),
            _ => Err(OrbError::BadOperation(op.to_string())),
        }
    }
}

/// A `Kv` that burns ~8ms per request — the cluster view's victim,
/// comfortably past the 5ms deadline its agreement promises.
struct SlowKv(parking_lot::Mutex<i64>);

impl Servant for SlowKv {
    fn interface_id(&self) -> &str {
        "IDL:Kv:1.0"
    }
    fn dispatch(&self, op: &str, args: &[Any]) -> Result<Any, OrbError> {
        std::thread::sleep(std::time::Duration::from_millis(8));
        match op {
            "put" => {
                *self.0.lock() = args.first().and_then(Any::as_i64).unwrap_or(0);
                Ok(Any::Void)
            }
            "get" => Ok(Any::LongLong(*self.0.lock())),
            _ => Err(OrbError::BadOperation(op.to_string())),
        }
    }
}

struct Echo;

impl Servant for Echo {
    fn interface_id(&self) -> &str {
        "IDL:Echo:1.0"
    }
    fn dispatch(&self, op: &str, args: &[Any]) -> Result<Any, OrbError> {
        match op {
            "echo" => Ok(args.first().cloned().unwrap_or(Any::Void)),
            _ => Err(OrbError::BadOperation(op.to_string())),
        }
    }
}

const KV_SPEC: &str = r#"
    interface Kv with qos Replication {
        void put(in long long v);
        long long get();
    };
"#;
const ECHO_SPEC: &str = "interface Echo { long long echo(in long long v); };";

/// Resolve `--attach`'s argument: a literal `maqs-ior:` URI, or
/// `@path` to poll a file the server publishes (tcp_server writes it
/// atomically, so a complete URI or nothing).
fn resolve_ior(target: &str) -> Ior {
    let uri = if let Some(path) = target.strip_prefix('@') {
        let mut tries = 0;
        loop {
            match std::fs::read_to_string(path) {
                Ok(s) if !s.trim().is_empty() => break s.trim().to_string(),
                _ if tries < 100 => {
                    tries += 1;
                    std::thread::sleep(std::time::Duration::from_millis(100));
                }
                _ => panic!("no IOR appeared at {path}"),
            }
        }
    } else {
        target.to_string()
    };
    Ior::from_uri(&uri).expect("parse IOR URI")
}

/// The `--attach` mode: a real client of a server in another process.
fn attach(target: &str) {
    let ior = resolve_ior(target);
    let endpoint = ior.endpoint().expect("IOR carries no endpoint profile").clone();
    println!("== maqs-top: attaching to {} at {endpoint} ==", ior.key);

    let wire = TcpTransport::bind(NodeId(1000), "127.0.0.1:0").expect("bind client socket");
    let ops = MaqsNode::builder_wire(Arc::new(wire), "ops").build().expect("ops node");
    // Invocations register endpoint profiles on their own; doing it up
    // front just surfaces a bad address before any traffic.
    ops.orb().register_endpoints(&ior).expect("register server endpoint");

    // Drive some load so the panes have something to show.
    let kv = ops.stub(&ior);
    for i in 0..16i64 {
        kv.invoke("put", &[Any::LongLong(i)]).expect("put");
        kv.invoke("get", &[]).expect("get");
    }

    // Every pane below crosses the process boundary over loopback TCP.
    let introspector = ops.introspector();
    let health = introspector.health(ior.node).expect("health");
    let snapshot = introspector.metrics_snapshot(ior.node).expect("snapshot");
    let latency = snapshot
        .histograms
        .iter()
        .find(|(n, _)| n == "orb.dispatch_us")
        .map_or_else(|| "n/a".to_string(), |(_, h)| quantile_line(h));
    println!(
        "{:<8} {:>9} {:>8} {:>7}  {}",
        "node", "handled", "dropped", "events", "dispatch latency"
    );
    println!(
        "{:<8} {:>9} {:>8} {:>7}  {}",
        "remote", health.requests_handled, health.packets_dropped, health.flight_events, latency
    );
    for b in introspector.bindings(ior.node).expect("bindings") {
        println!("  {} ({}) qos=[{}]", b.object, b.interface, b.characteristics.join(", "));
    }
    let tail = introspector.flight_tail(ior.node, 4).expect("flight tail");
    println!("remote flight tail (last {} events):", tail.len());
    print!("{}", render_flight_human(&tail));

    assert!(health.requests_handled >= 32, "server must have seen our traffic");
    ops.shutdown();
    println!("\nok.");
}

/// The `--cluster` mode: the fleet dashboard over the telemetry plane.
fn cluster() {
    use netsim::VirtualDuration;
    use services::{SloConfig, TelemetryAggregator, TelemetryConfig};

    let net = Network::new(29);
    let mut workers = Vec::new();
    for i in 0..4u32 {
        let node =
            MaqsNode::builder(&net, &format!("w{i}")).spec(KV_SPEC).build().expect("worker");
        let servant: Arc<dyn Servant> = if i == 2 {
            Arc::new(SlowKv(parking_lot::Mutex::new(0)))
        } else {
            Arc::new(Kv(parking_lot::Mutex::new(0)))
        };
        let ior = node
            .serve(
                "kv",
                servant,
                ServeOptions::interface("Kv")
                    .qos_impl(Arc::new(qosmech::replication::ReplicationQosImpl::new()))
                    .capacity("Replication", 4),
            )
            .expect("serve kv");
        workers.push((node, ior));
    }
    let ops = MaqsNode::builder(&net, "ops").build().expect("ops");

    // Negotiate a 5ms deadline with every worker. Those agreements —
    // scraped back over introspection — are what the aggregator turns
    // into SLO objectives; nothing below names the victim explicitly.
    for (node, _) in &workers {
        ops.negotiator()
            .negotiate_offer(
                node.orb().node(),
                "kv",
                &Offer::new("Replication", 1.0).with_param("deadline_ms", Any::ULongLong(5)),
            )
            .expect("negotiate deadline");
    }

    let clock_net = net.clone();
    let agg = TelemetryAggregator::new(
        ops.orb().clone(),
        TelemetryConfig {
            scrape_interval_ms: 0, // frames drive scrapes: deterministic
            slo: SloConfig { min_samples: 4, ..SloConfig::default() },
            ..TelemetryConfig::default()
        },
    )
    // Ring timestamps and burn windows run on netsim virtual time.
    .with_clock(Arc::new(move || clock_net.fault_now().0 / 1_000));
    let fleet: Vec<NodeId> = workers.iter().map(|(n, _)| n.orb().node()).collect();
    agg.watch_all(&fleet);

    println!("== maqs-top --cluster: fleet telemetry plane ==");
    for frame in 1..=4u32 {
        for (_, ior) in &workers {
            let stub = ops.stub(ior);
            for i in 0..6i64 {
                stub.invoke("put", &[Any::LongLong(i)]).expect("put");
            }
        }
        net.tick(VirtualDuration::from_secs(15));
        let alerts = agg.scrape_once();

        println!("\n--- frame {frame}/4 (virtual t+{}s) ---", net.fault_now().0 / 1_000_000_000);
        println!("{:<6} {:>3} {:>9} {:>6}  latency (delta)", "node", "up", "requests", "errs");
        if let Some(sample) = agg.samples().last() {
            for ns in &sample.nodes {
                let latency = ns
                    .delta
                    .histogram("object.kv.latency_us")
                    .map_or_else(|| "n/a".to_string(), quantile_line);
                println!(
                    "{:<6} {:>3} {:>9} {:>6}  {}",
                    ns.name,
                    if ns.up { "yes" } else { "NO" },
                    ns.delta.counter("object.kv.requests"),
                    ns.delta.counter("object.kv.errors"),
                    latency
                );
            }
        }
        for alert in &alerts {
            println!("  !! {alert}");
        }
    }

    // Fleet-level panes: the merged latency distribution (bucket-exact
    // across nodes), every objective's burn state, and the labeled
    // exposition a fleet Prometheus endpoint would serve.
    if let Some(h) = agg.fleet_histogram("object.kv.latency_us") {
        println!("\nfleet object.kv.latency_us ({} obs): {}", h.count, quantile_line(&h));
    }
    println!("slo objectives:");
    for status in agg.slo_status() {
        println!(
            "  node{} agreement#{} {}: burn short={} long={} {}",
            status.objective.node.0,
            status.objective.agreement_id,
            status.objective.param,
            status.burn_short.map_or_else(|| "n/a".to_string(), |b| format!("{b:.1}")),
            status.burn_long.map_or_else(|| "n/a".to_string(), |b| format!("{b:.1}")),
            if status.firing { "FIRING" } else { "ok" }
        );
    }
    println!("\nfleet Prometheus exposition (object series):");
    for line in agg.prometheus_fleet().lines().filter(|l| l.contains("object_kv")).take(8) {
        println!("  {line}");
    }

    assert!(
        agg.slo_status().iter().any(|s| s.firing),
        "the slow worker must be burning its deadline budget"
    );
    for (node, _) in &workers {
        node.shutdown();
    }
    ops.shutdown();
    println!("\nok.");
}

fn main() {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--attach" {
            return attach(&args.next().expect("--attach needs <maqs-ior:..|@file>"));
        }
        if a == "--cluster" {
            return cluster();
        }
    }

    let net = Network::new(13);
    let alpha = MaqsNode::builder(&net, "alpha").spec(KV_SPEC).build().expect("alpha");
    let beta = MaqsNode::builder(&net, "beta").spec(ECHO_SPEC).build().expect("beta");
    let ops = MaqsNode::builder(&net, "ops").build().expect("ops");

    let kv_ior = alpha
        .serve(
            "kv",
            Arc::new(Kv(parking_lot::Mutex::new(0))),
            ServeOptions::interface("Kv")
                .qos_impl(Arc::new(qosmech::replication::ReplicationQosImpl::new())),
        )
        .expect("serve kv");
    let echo_ior =
        beta.serve("echo", Arc::new(Echo), ServeOptions::interface("Echo")).expect("serve echo");

    let kv = ops.stub(&kv_ior);
    let echo = ops.stub(&echo_ior);
    let introspector = ops.introspector();
    let servers = [("alpha", alpha.orb().node()), ("beta", beta.orb().node())];
    // Flight pane cursor: each frame asks alpha only for events it has
    // not shipped yet (`flight_since`), instead of re-pulling a tail
    // and deduplicating sequence numbers client-side.
    let mut flight_cursor = 0u64;

    println!("== maqs-top: remote introspection dashboard ==");
    for frame in 1..=3u32 {
        // The load this frame: uneven on purpose, so the panes differ.
        for i in 0..(8 * frame as i64) {
            kv.invoke("put", &[Any::LongLong(i)]).expect("put");
            kv.invoke("get", &[]).expect("get");
        }
        for i in 0..4i64 {
            echo.invoke("echo", &[Any::LongLong(i)]).expect("echo");
        }

        println!("\n--- frame {frame}/3 ---");
        println!(
            "{:<6} {:>9} {:>8} {:>7} {:>7}  {}",
            "node", "handled", "dropped", "events", "dumps", "dispatch latency"
        );
        for (name, node) in servers {
            // All three panes come over the wire: GIOP request in, Any out.
            let health = introspector.health(node).expect("health");
            let snapshot = introspector.metrics_snapshot(node).expect("snapshot");
            let latency = snapshot
                .histograms
                .iter()
                .find(|(n, _)| n == "orb.dispatch_us")
                .map_or_else(|| "n/a".to_string(), |(_, h)| quantile_line(h));
            println!(
                "{:<6} {:>9} {:>8} {:>7} {:>7}  {}",
                name,
                health.requests_handled,
                health.packets_dropped,
                health.flight_events,
                health.flight_dumps,
                latency
            );
        }
        for (name, node) in servers {
            for b in introspector.bindings(node).expect("bindings") {
                println!(
                    "  {name}/{} ({}) qos=[{}]",
                    b.object,
                    b.interface,
                    b.characteristics.join(", ")
                );
            }
        }

        // The flight pane: only what happened since the last frame.
        let fresh =
            introspector.flight_since(alpha.orb().node(), flight_cursor).expect("flight since");
        if let Some(last) = fresh.last() {
            flight_cursor = last.seq + 1;
        }
        println!("alpha flight (+{} events since last frame, tail):", fresh.len());
        print!("{}", render_flight_human(&fresh[fresh.len().saturating_sub(4)..]));
    }

    // And the scrape view: what a Prometheus endpoint for `alpha` would
    // serve, rendered from the same remote snapshot.
    let snapshot = introspector.metrics_snapshot(alpha.orb().node()).expect("snapshot");
    let exposition = prometheus_text(&snapshot);
    println!("\nalpha Prometheus exposition (first lines):");
    for line in exposition.lines().take(6) {
        println!("  {line}");
    }

    alpha.shutdown();
    beta.shutdown();
    ops.shutdown();
    println!("\nok.");
}
