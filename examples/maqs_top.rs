//! maqs-top: a live dashboard over ORB-served remote introspection.
//!
//! Every [`MaqsNode`] activates an introspection servant under the
//! well-known `introspection` key, so any peer can pull metrics
//! snapshots, flight-recorder tails, health counters and the woven
//! deployment over plain GIOP — the dashboard below is an ordinary
//! client of that interface, not a privileged observer. It drives load
//! at two server nodes, then renders a few refresh frames the way `top`
//! would: one row per node (requests, drops, p50/p95/p99 dispatch
//! latency), the served bindings, and the tail of the busiest node's
//! flight timeline.
//!
//! Run with: `cargo run --example maqs_top`

use maqs::prelude::*;
use maqs::report::render_flight_human;
use orb::export::{prometheus_text, quantile_line};
use std::sync::Arc;

struct Kv(parking_lot::Mutex<i64>);

impl Servant for Kv {
    fn interface_id(&self) -> &str {
        "IDL:Kv:1.0"
    }
    fn dispatch(&self, op: &str, args: &[Any]) -> Result<Any, OrbError> {
        match op {
            "put" => {
                *self.0.lock() = args.first().and_then(Any::as_i64).unwrap_or(0);
                Ok(Any::Void)
            }
            "get" => Ok(Any::LongLong(*self.0.lock())),
            _ => Err(OrbError::BadOperation(op.to_string())),
        }
    }
}

struct Echo;

impl Servant for Echo {
    fn interface_id(&self) -> &str {
        "IDL:Echo:1.0"
    }
    fn dispatch(&self, op: &str, args: &[Any]) -> Result<Any, OrbError> {
        match op {
            "echo" => Ok(args.first().cloned().unwrap_or(Any::Void)),
            _ => Err(OrbError::BadOperation(op.to_string())),
        }
    }
}

const KV_SPEC: &str = r#"
    interface Kv with qos Replication {
        void put(in long long v);
        long long get();
    };
"#;
const ECHO_SPEC: &str = "interface Echo { long long echo(in long long v); };";

fn main() {
    let net = Network::new(13);
    let alpha = MaqsNode::builder(&net, "alpha").spec(KV_SPEC).build().expect("alpha");
    let beta = MaqsNode::builder(&net, "beta").spec(ECHO_SPEC).build().expect("beta");
    let ops = MaqsNode::builder(&net, "ops").build().expect("ops");

    let kv_ior = alpha
        .serve(
            "kv",
            Arc::new(Kv(parking_lot::Mutex::new(0))),
            ServeOptions::interface("Kv")
                .qos_impl(Arc::new(qosmech::replication::ReplicationQosImpl::new())),
        )
        .expect("serve kv");
    let echo_ior =
        beta.serve("echo", Arc::new(Echo), ServeOptions::interface("Echo")).expect("serve echo");

    let kv = ops.stub(&kv_ior);
    let echo = ops.stub(&echo_ior);
    let introspector = ops.introspector();
    let servers = [("alpha", alpha.orb().node()), ("beta", beta.orb().node())];

    println!("== maqs-top: remote introspection dashboard ==");
    for frame in 1..=3u32 {
        // The load this frame: uneven on purpose, so the panes differ.
        for i in 0..(8 * frame as i64) {
            kv.invoke("put", &[Any::LongLong(i)]).expect("put");
            kv.invoke("get", &[]).expect("get");
        }
        for i in 0..4i64 {
            echo.invoke("echo", &[Any::LongLong(i)]).expect("echo");
        }

        println!("\n--- frame {frame}/3 ---");
        println!(
            "{:<6} {:>9} {:>8} {:>7} {:>7}  {}",
            "node", "handled", "dropped", "events", "dumps", "dispatch latency"
        );
        for (name, node) in servers {
            // All three panes come over the wire: GIOP request in, Any out.
            let health = introspector.health(node).expect("health");
            let snapshot = introspector.metrics_snapshot(node).expect("snapshot");
            let latency = snapshot
                .histograms
                .iter()
                .find(|(n, _)| n == "orb.dispatch_us")
                .map_or_else(|| "n/a".to_string(), |(_, h)| quantile_line(h));
            println!(
                "{:<6} {:>9} {:>8} {:>7} {:>7}  {}",
                name,
                health.requests_handled,
                health.packets_dropped,
                health.flight_events,
                health.flight_dumps,
                latency
            );
        }
        for (name, node) in servers {
            for b in introspector.bindings(node).expect("bindings") {
                println!(
                    "  {name}/{} ({}) qos=[{}]",
                    b.object,
                    b.interface,
                    b.characteristics.join(", ")
                );
            }
        }
    }

    // The flight pane: the busiest node's recent lifecycle events,
    // fetched remotely like everything else.
    let tail = introspector.flight_tail(alpha.orb().node(), 6).expect("flight tail");
    println!("\nalpha flight tail (last {} events):", tail.len());
    print!("{}", render_flight_human(&tail));

    // And the scrape view: what a Prometheus endpoint for `alpha` would
    // serve, rendered from the same remote snapshot.
    let snapshot = introspector.metrics_snapshot(alpha.orb().node()).expect("snapshot");
    let exposition = prometheus_text(&snapshot);
    println!("\nalpha Prometheus exposition (first lines):");
    for line in exposition.lines().take(6) {
        println!("  {line}");
    }

    alpha.shutdown();
    beta.shutdown();
    ops.shutdown();
    println!("\nok.");
}
